"""Privacy metrics: attribute-inference accuracy (§6.1.2).

Inference accuracy above the random-guess baseline indicates leakage: "with a
balanced dataset over the gender, an accuracy above 50 % indicates a data
leakage through attribute inference attack".
"""

from __future__ import annotations

__all__ = ["inference_accuracy", "leakage_above_guess"]


def inference_accuracy(predictions: dict[int, int], truth: dict[int, int]) -> float:
    """Fraction of participants whose sensitive attribute was inferred."""
    common = [p for p in predictions if p in truth]
    if not common:
        raise ValueError("no participants in common between predictions and truth")
    return sum(predictions[p] == truth[p] for p in common) / len(common)


def leakage_above_guess(accuracy: float, random_guess: float) -> float:
    """Leakage margin: inference accuracy minus the blind-guess baseline.

    Zero or negative means the adversary learned nothing; the paper's MixNN
    results sit at ≈0 while classical FL reaches ``1 − random_guess``.
    """
    return accuracy - random_guess
