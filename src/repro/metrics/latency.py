"""Latency summaries for the systems evaluation (§6.5) and the virtual-time
round engine's measured wall-clock statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencySummary",
    "summarize_latencies",
    "RoundTimingSummary",
    "summarize_round_timing",
    "arrival_latencies",
]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics over per-update processing times (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    def as_row(self) -> dict:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 4),
            "p50_s": round(self.p50, 4),
            "p95_s": round(self.p95, 4),
            "max_s": round(self.maximum, 4),
        }


def summarize_latencies(samples) -> LatencySummary:
    """Summarize a sequence of latency samples."""
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    return LatencySummary(
        count=int(values.size),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        maximum=float(values.max()),
    )


# ----------------------------------------------------------------------
# Virtual-time round engine statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundTimingSummary:
    """Measured wall-clock profile of a scenario run's event stream.

    Everything here comes from timestamps the engine actually replayed
    (:class:`~repro.federated.simulation.RoundRecord.arrival_times`, round
    close events) — not from bookkeeping formulas.
    """

    rounds: int
    #: virtual seconds from the first broadcast to the last round close
    total_seconds: float
    mean_round_seconds: float
    p95_round_seconds: float
    #: merged updates per virtual second over the whole run
    effective_throughput: float
    #: mean fraction of a round the average participant idled after uploading
    mean_idle_fraction: float
    #: fault-plane profile (all zero for fault-free runs)
    total_faults: int = 0
    total_retries: int = 0
    total_recovery_seconds: float = 0.0
    #: percentiles over individual non-zero recovery delays (backoffs,
    #: failover setup) — how long one fault takes to recover from
    recovery_p50_seconds: float = 0.0
    recovery_p99_seconds: float = 0.0

    def as_row(self) -> dict:
        return {
            "rounds": self.rounds,
            "total_s": round(self.total_seconds, 4),
            "mean_round_s": round(self.mean_round_seconds, 4),
            "p95_round_s": round(self.p95_round_seconds, 4),
            "merged_per_s": round(self.effective_throughput, 4),
            "idle_fraction": round(self.mean_idle_fraction, 4),
            "faults": self.total_faults,
            "retries": self.total_retries,
            "recovery_s": round(self.total_recovery_seconds, 4),
            "recovery_p50_s": round(self.recovery_p50_seconds, 4),
            "recovery_p99_s": round(self.recovery_p99_seconds, 4),
        }


def summarize_round_timing(records) -> RoundTimingSummary:
    """Profile a run's :class:`~repro.federated.simulation.RoundRecord` list."""
    records = list(records)
    if not records:
        raise ValueError("cannot summarize an empty round list")
    durations = np.asarray([r.simulated_duration for r in records], dtype=np.float64)
    total = float(durations.sum())
    merged = float(sum(r.num_aggregated for r in records))
    timed = [r.idle_fraction for r in records if r.simulated_duration > 0.0]
    # getattr with defaults: pre-fault-plane records (or mocks) summarize as
    # fault-free rather than erroring.
    recovery = [
        float(delay)
        for r in records
        for delay in getattr(r, "recovery_latencies", [])
    ]
    return RoundTimingSummary(
        rounds=len(records),
        total_seconds=total,
        mean_round_seconds=float(durations.mean()),
        p95_round_seconds=float(np.percentile(durations, 95)),
        effective_throughput=merged / total if total > 0.0 else 0.0,
        mean_idle_fraction=float(np.mean(timed)) if timed else 0.0,
        total_faults=int(sum(getattr(r, "num_faults", 0) for r in records)),
        total_retries=int(sum(getattr(r, "num_retries", 0) for r in records)),
        total_recovery_seconds=float(
            sum(getattr(r, "recovery_seconds", 0.0) for r in records)
        ),
        recovery_p50_seconds=float(np.percentile(recovery, 50)) if recovery else 0.0,
        recovery_p99_seconds=float(np.percentile(recovery, 99)) if recovery else 0.0,
    )


def arrival_latencies(records) -> list[float]:
    """Per-merged-update round-trip latencies observed on the event stream.

    Reads ``RoundRecord.merged_latencies`` — each update's true
    dispatch→arrival span, so a stale buffered-async straggler contributes
    its full transit time, not just the residual wait in the round that
    finally merged it.  Suitable input for :func:`summarize_latencies` —
    e.g. the measured broadcast-to-arrival distribution of a
    deadline-vs-throughput study.
    """
    return [float(latency) for record in records for latency in record.merged_latencies]
