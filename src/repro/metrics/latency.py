"""Latency summaries for the systems evaluation (§6.5)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics over per-update processing times (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    def as_row(self) -> dict:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 4),
            "p50_s": round(self.p50, 4),
            "p95_s": round(self.p95, 4),
            "max_s": round(self.maximum, 4),
        }


def summarize_latencies(samples) -> LatencySummary:
    """Summarize a sequence of latency samples."""
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    return LatencySummary(
        count=int(values.size),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        maximum=float(values.max()),
    )
