"""Empirical CDFs for the distributional figures (Figures 6 and 9)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf"]


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probability)``.

    ``cumulative_probability[i]`` is the fraction of observations ≤
    ``sorted_values[i]`` — the series plotted in Figures 6 and 9.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute the CDF of an empty sample")
    ordered = np.sort(values)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities
