"""Byzantine-robustness metrics: poison penetration and filter quality.

Everything here is computed from artifacts the pipeline already produces —
the per-round :class:`~repro.federated.simulation.RoundRecord` counters and
the run's :class:`~repro.federated.adversary.AdversaryLedger` — so the
metrics are exact accounting, not estimates, *except* where MixNN mixing
makes attribution genuinely ambiguous: a chimera update blends layers from
several senders, so "a poisoned update was filtered" becomes "every update
carrying this attacker's layers was filtered", and precision/recall under
mixing should be read as contributor-level approximations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RobustnessSummary",
    "attack_success_rate",
    "filter_precision",
    "filter_recall",
    "summarize_robustness",
]


def attack_success_rate(ledger) -> float:
    """Fraction of injected poison that reached the global model.

    ``merged / (merged + filtered)`` over the adversary ledger's poison
    entries (replay rejections are a transport-level attack and excluded).
    0.0 when nothing was injected.
    """
    poisons = [e for e in ledger.entries if e.kind != "replay"]
    if not poisons:
        return 0.0
    merged = sum(1 for e in poisons if e.resolution == "merged")
    return merged / len(poisons)


def filter_precision(rounds) -> float:
    """Of the updates the policy dropped, the fraction that carried poison.

    ``Σ num_poison_filtered / Σ num_filtered`` over the round records; 1.0
    (vacuously perfect) when the policy never dropped anything.  Under MixNN
    mixing one filtered chimera can resolve several pending poisons, so the
    ratio is clamped to 1.
    """
    dropped = sum(r.num_filtered for r in rounds)
    if dropped == 0:
        return 1.0
    caught = sum(r.num_poison_filtered for r in rounds)
    return min(1.0, caught / dropped)


def filter_recall(ledger) -> float:
    """Of the injected poison, the fraction the pipeline kept out.

    ``filtered / (merged + filtered)`` over the ledger's poison entries —
    the complement of :func:`attack_success_rate`.  1.0 when nothing was
    injected (nothing slipped through).
    """
    poisons = [e for e in ledger.entries if e.kind != "replay"]
    if not poisons:
        return 1.0
    filtered = sum(1 for e in poisons if e.resolution == "filtered")
    return filtered / len(poisons)


@dataclass
class RobustnessSummary:
    """One run's Byzantine-robustness scorecard."""

    #: attacks injected / merged / filtered / rejected (ledger tallies)
    injected: int
    merged: int
    filtered: int
    rejected: int
    #: fraction of injected poison that reached the model
    attack_success_rate: float
    #: of what the policy dropped, how much was actually poison
    filter_precision: float
    #: of the injected poison, how much was kept out
    filter_recall: float
    #: final-round main-task accuracy
    final_accuracy: float
    #: accuracy lost against a poison-free baseline (0 when no baseline given)
    accuracy_drop: float


def summarize_robustness(result, baseline_accuracy: float | None = None) -> RobustnessSummary:
    """Score one :class:`~repro.federated.simulation.SimulationResult`.

    Validates the adversary ledger first (the ``injected == merged +
    filtered + rejected`` invariant), so a summary is also an audit.
    """
    ledger = result.adversary_ledger
    ledger.validate()
    final_accuracy = result.rounds[-1].global_accuracy if result.rounds else float("nan")
    drop = 0.0 if baseline_accuracy is None else baseline_accuracy - final_accuracy
    return RobustnessSummary(
        injected=ledger.injected,
        merged=ledger.merged,
        filtered=ledger.filtered,
        rejected=ledger.rejected,
        attack_success_rate=attack_success_rate(ledger),
        filter_precision=filter_precision(result.rounds),
        filter_recall=filter_recall(ledger),
        final_accuracy=final_accuracy,
        accuracy_drop=drop,
    )
