"""Utility metrics: main-task model accuracy (§6.1.2)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.base import ArrayDataset, ClientDataset
from ..federated.client import evaluate_accuracy
from ..nn import Module
from ..utils.rng import rng_from_seed

__all__ = ["model_accuracy", "per_client_accuracies"]


def model_accuracy(
    state: dict,
    dataset: ArrayDataset,
    model_fn: Callable[[np.random.Generator], Module],
    model: Module | None = None,
) -> float:
    """Accuracy of a model *state* on a dataset.

    Pass a reusable ``model`` replica to skip the scratch-model construction;
    its weights are overwritten by ``state``.  Without one, a fresh replica is
    built from ``model_fn`` (the original per-call behaviour).
    """
    if model is None:
        model = model_fn(rng_from_seed(0))
    model.load_state_dict(state)
    return evaluate_accuracy(model, dataset)


def per_client_accuracies(
    state: dict,
    clients: list[ClientDataset],
    model_fn: Callable[[np.random.Generator], Module],
    model: Module | None = None,
) -> dict[int, float]:
    """Global-model accuracy on each client's local test data (Figure 6).

    Like :func:`model_accuracy`, accepts a reusable evaluation ``model``.
    """
    if model is None:
        model = model_fn(rng_from_seed(0))
    model.load_state_dict(state)
    return {client.client_id: evaluate_accuracy(model, client.test) for client in clients}
