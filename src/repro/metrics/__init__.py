"""``repro.metrics`` — utility, privacy and systems metrics (§6.1.2)."""

from .accuracy import model_accuracy, per_client_accuracies
from .cdf import empirical_cdf
from .privacy import inference_accuracy, leakage_above_guess
from .latency import (
    LatencySummary,
    RoundTimingSummary,
    arrival_latencies,
    summarize_latencies,
    summarize_round_timing,
)
from .robustness import (
    RobustnessSummary,
    attack_success_rate,
    filter_precision,
    filter_recall,
    summarize_robustness,
)

__all__ = [
    "model_accuracy",
    "per_client_accuracies",
    "inference_accuracy",
    "leakage_above_guess",
    "empirical_cdf",
    "LatencySummary",
    "summarize_latencies",
    "RoundTimingSummary",
    "summarize_round_timing",
    "arrival_latencies",
    "RobustnessSummary",
    "attack_success_rate",
    "filter_precision",
    "filter_recall",
    "summarize_robustness",
]
