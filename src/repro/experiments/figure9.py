"""Figure 9 — CDF of the number of close-gradient neighbors (§6.4).

Paper claim: "All participants have at least a few other alter egos with very
close gradients", which is what makes re-assembling mixed layers infeasible.
The paper measures a euclidean radius of 0.5 on its TensorFlow-scale
gradients; at our model scale the radius is the 30th percentile of the
pairwise-distance distribution, a scale-free rendering of the same "very
close" notion (a fixed absolute radius is meaningless across parameter
counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.reconstruction import neighbor_counts, pairwise_distances
from ..metrics.cdf import empirical_cdf
from .common import run_scheme
from .reporting import format_table

__all__ = ["Figure9Result", "run_figure9", "shape_checks"]


@dataclass
class Figure9Result:
    """Neighbor counts per participant and the radius used."""

    dataset: str
    counts: np.ndarray
    radius: float
    median_distance: float

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        return empirical_cdf(self.counts)

    def render(self) -> str:
        values, probs = self.cdf()
        lines = [
            f"Figure 9 ({self.dataset}): neighbors within radius {self.radius:.4f} "
            f"(median pairwise distance {self.median_distance:.4f})"
        ]
        rows = [[int(v), round(float(p), 3)] for v, p in zip(values, probs)]
        lines.append(format_table(["#neighbors <= x", "CDF"], rows))
        return "\n".join(lines)


def run_figure9(
    dataset_name: str,
    scale: str = "ci",
    seed: int = 0,
    rounds: int | None = 3,
    radius_quantile: float = 0.3,
) -> Figure9Result:
    """Regenerate one dataset's series of Figure 9.

    Runs classical FL (the census is about raw participant updates) and
    analyses the final round's updates against the final broadcast.
    """
    result, _, _ = run_scheme(dataset_name, "classical-fl", scale=scale, seed=seed, rounds=rounds)
    updates = result.received_updates[-1]
    # The broadcast that produced these updates is the previous round's
    # aggregate; recover it from the server log structure: updates hold the
    # refined states, so measure distances between update *directions* using
    # the mean state as reference (translation-invariant for distances).
    reference = {
        name: np.mean([u.state[name] for u in updates], axis=0) for name in updates[0].state
    }
    distances = pairwise_distances(updates, reference)
    off_diagonal = distances[~np.eye(len(updates), dtype=bool)]
    median = float(np.median(off_diagonal))
    radius = float(np.quantile(off_diagonal, radius_quantile))
    counts = neighbor_counts(updates, reference, radius=radius)
    return Figure9Result(
        dataset=dataset_name, counts=counts, radius=radius, median_distance=median
    )


def shape_checks(result: Figure9Result) -> dict[str, bool]:
    return {
        # Our synthetic MobiAct cohort has a heavier heterogeneity tail than
        # the paper's: a minority of subjects can be isolated at the strict
        # radius.  The robust form of the claim — most participants have
        # close alter egos, the typical one several — is what re-linking
        # hardness rests on.
        "most_participants_have_a_neighbor": bool((result.counts >= 1).mean() >= 0.7),
        "typical_participant_has_several": bool(np.median(result.counts) >= 2),
    }
