"""Figure 6 — CDF over participants of model accuracy at learning round 6.

Paper claim (§6.2): "most of the participants have an accuracy with noisy
gradient smaller than MixNN for all datasets (on average 0.56 for noisy
gradient against 0.68 for MixNN)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.cdf import empirical_cdf
from .figure5 import Figure5Result, run_figure5
from .reporting import format_table

__all__ = ["Figure6Result", "run_figure6", "shape_checks"]


@dataclass
class Figure6Result:
    """Per-scheme participant-accuracy samples and their CDFs."""

    dataset: str
    round_index: int
    samples: dict[str, np.ndarray]

    def cdfs(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        return {scheme: empirical_cdf(values) for scheme, values in self.samples.items()}

    def means(self) -> dict[str, float]:
        return {scheme: float(values.mean()) for scheme, values in self.samples.items()}

    def render(self) -> str:
        lines = [
            f"Figure 6 ({self.dataset}): per-participant accuracy CDF at round {self.round_index}"
        ]
        rows = [
            [scheme, round(float(v.mean()), 3), round(float(np.median(v)), 3), round(float(v.min()), 3)]
            for scheme, v in self.samples.items()
        ]
        lines.append(format_table(["scheme", "mean", "median", "min"], rows))
        return "\n".join(lines)


def run_figure6(
    dataset_name: str,
    scale: str = "ci",
    seed: int = 0,
    figure5: Figure5Result | None = None,
) -> Figure6Result:
    """Regenerate one panel of Figure 6 (reuses Figure 5 runs when given)."""
    base = figure5 if figure5 is not None else run_figure5(dataset_name, scale=scale, seed=seed)
    round_index = base.fig6_round
    samples = {
        scheme: np.array(sorted(records[round_index].values()))
        for scheme, records in base.per_client.items()
    }
    return Figure6Result(dataset=dataset_name, round_index=round_index, samples=samples)


def shape_checks(result: Figure6Result) -> dict[str, bool]:
    means = result.means()
    return {
        "noisy_mean_below_mixnn_mean": means["noisy-gradient"] < means["mixnn"],
        "mixnn_matches_fl_mean": abs(means["mixnn"] - means["classical-fl"]) < 0.02,
    }
