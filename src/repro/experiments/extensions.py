"""Extension experiments beyond the paper's figures.

Three studies DESIGN.md §6 commits to:

* :func:`run_defense_comparison` — all five defenses (classical FL, noisy
  gradient, MixNN, secure aggregation, DP clip-and-noise) on one dataset,
  scoring utility and active-∇Sim privacy side by side.  This renders the
  paper's §1 argument ("secure aggregation protects but needs the server's
  cooperation; perturbation protects but costs utility; MixNN costs neither")
  as a measured table.
* :func:`run_passive_vs_active` — §5's two adversary modes head-to-head.
* :func:`run_relink_robustness` — §6.4 as an *attack* rather than a census: a
  malicious server tries to re-link mixed layer pieces using its reference
  models; near-chance piece accuracy confirms the paper's robustness claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks import GradSimAttack, RelinkAttack, build_reference_states
from ..defenses import (
    ClipAndNoiseDefense,
    GaussianNoiseDefense,
    MixNNDefense,
    NoDefense,
    SecureAggregationDefense,
)
from ..federated import FederatedSimulation
from ..utils.rng import rng_from_seed, stable_seed
from .config import build_experiment
from .models import model_fn_for
from .reporting import format_table

__all__ = [
    "DefenseComparisonRow",
    "run_defense_comparison",
    "run_passive_vs_active",
    "run_relink_robustness",
]

#: The extended defense roster (name -> factory taking the params object).
EXTENDED_DEFENSES = {
    "classical-fl": lambda params, seed: NoDefense(),
    "noisy-gradient": lambda params, seed: GaussianNoiseDefense(sigma=params.noise_sigma),
    "mixnn": lambda params, seed: MixNNDefense(
        rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))
    ),
    "secure-aggregation": lambda params, seed: SecureAggregationDefense(),
    # clip_norm is chosen to actually bind on these models' update deltas so
    # the defense is a distinct point from the plain noisy-gradient baseline.
    "dp-clip-noise": lambda params, seed: ClipAndNoiseDefense(clip_norm=0.2, noise_multiplier=0.3),
}


@dataclass
class DefenseComparisonRow:
    """One defense's (utility, privacy) outcome."""

    defense: str
    final_accuracy: float
    mean_inference: float
    random_guess: float

    @property
    def leakage(self) -> float:
        return self.mean_inference - self.random_guess


def _attacked_run(dataset_name, defense_factory, scale, seed, rounds, mode="active"):
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(stable_seed(seed, "attack")),
        mode=mode,
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=defense_factory(params, seed),
        attack=attack,
    )
    return simulation.run(), dataset


def run_defense_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> list[DefenseComparisonRow]:
    """Score every defense on (final accuracy, mean inference accuracy)."""
    rows: list[DefenseComparisonRow] = []
    for name, factory in EXTENDED_DEFENSES.items():
        result, dataset = _attacked_run(dataset_name, factory, scale, seed, rounds)
        rows.append(
            DefenseComparisonRow(
                defense=name,
                final_accuracy=result.accuracy_curve()[-1],
                mean_inference=float(np.mean(result.inference_curve())),
                random_guess=dataset.random_guess_accuracy,
            )
        )
    return rows


def render_defense_comparison(rows: list[DefenseComparisonRow]) -> str:
    header = ["defense", "final accuracy", "mean inference", "leakage above guess"]
    body = [
        [row.defense, round(row.final_accuracy, 3), round(row.mean_inference, 3), round(row.leakage, 3)]
        for row in rows
    ]
    return format_table(header, body)


def run_passive_vs_active(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> dict[str, list[float]]:
    """∇Sim's two modes on classical FL (the §5 comparison)."""
    curves: dict[str, list[float]] = {}
    for mode in ("passive", "active"):
        result, _ = _attacked_run(dataset_name, EXTENDED_DEFENSES["classical-fl"], scale, seed, rounds, mode=mode)
        curves[mode] = result.inference_curve()
    return curves


def run_relink_robustness(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 2,
):
    """The §6.4 re-linking adversary against actual mixed updates.

    Runs one MixNN round, builds the adversary's reference models from the
    broadcast, and measures how often a per-layer classification of the mixed
    pieces recovers each piece's true source attribute.
    """
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=MixNNDefense(rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))),
    )
    result = simulation.run()
    mixed_updates = result.received_updates[-1]
    # The broadcast those updates refined is the previous round's aggregate;
    # recover it the way the adversary would: re-aggregate the prior round.
    from ..federated.update import aggregate_updates

    previous = result.received_updates[-2] if rounds >= 2 else mixed_updates
    broadcast_state = aggregate_updates(previous)
    references = build_reference_states(
        broadcast_state,
        dataset.background_clients(),
        model_fn,
        params.local_config(),
        rng_from_seed(stable_seed(seed, "relink")),
        attack_epochs=params.attack_epochs,
    )
    truth = {c.client_id: c.attribute for c in dataset.clients()}
    attack = RelinkAttack(references, broadcast_state)
    report = attack.run(mixed_updates, true_attributes=truth)
    return report, dataset
