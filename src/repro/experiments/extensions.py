"""Extension experiments beyond the paper's figures.

Three studies DESIGN.md §6 commits to:

* :func:`run_defense_comparison` — all five defenses (classical FL, noisy
  gradient, MixNN, secure aggregation, DP clip-and-noise) on one dataset,
  scoring utility and active-∇Sim privacy side by side.  This renders the
  paper's §1 argument ("secure aggregation protects but needs the server's
  cooperation; perturbation protects but costs utility; MixNN costs neither")
  as a measured table.
* :func:`run_passive_vs_active` — §5's two adversary modes head-to-head.
* :func:`run_relink_robustness` — §6.4 as an *attack* rather than a census: a
  malicious server tries to re-link mixed layer pieces using its reference
  models; near-chance piece accuracy confirms the paper's robustness claim.

Plus the scenario-engine study this reproduction adds beyond the paper:

* :func:`run_scenario_comparison` — the same dataset under realistic client
  churn (10–30 % per-round dropout) with three round-closure schemes:
  synchronous wait-for-all-survivors, synchronous with a straggler deadline,
  and FedBuff-style staleness-weighted buffered-async aggregation.  Scores
  final utility against wall-clock cost, idle fraction, and throughput as
  *measured* on the virtual-time event stream, and runs the
  :class:`~repro.attacks.timing.TimingSideChannel` adversary on the same
  stream — the attack surface the round-closure policy itself creates.
* :func:`run_deadline_throughput_frontier` — the deadline/buffer knob sweep
  behind the scenario comparison: how much measured wall-clock time does each
  closure policy trade for how much final accuracy.
* :func:`run_dirichlet_churn_matrix` — Dirichlet(α) label skew crossed with
  churn models (random dropout, outage traces): does non-IID data amplify
  the damage of losing clients?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks import GradSimAttack, RelinkAttack, build_reference_states
from ..defenses import (
    ClipAndNoiseDefense,
    GaussianNoiseDefense,
    MixNNDefense,
    NoDefense,
    SecureAggregationDefense,
)
from ..federated import FederatedSimulation
from ..utils.rng import rng_from_seed, stable_seed
from .config import build_experiment
from .models import model_fn_for
from .reporting import format_table

__all__ = [
    "DefenseComparisonRow",
    "run_defense_comparison",
    "run_passive_vs_active",
    "run_relink_robustness",
    "ScenarioComparisonRow",
    "SCENARIO_SCHEMES",
    "make_scenario",
    "run_scenario_comparison",
    "render_scenario_comparison",
    "FrontierRow",
    "FRONTIER_DEADLINES",
    "FRONTIER_BUFFER_FRACTIONS",
    "frontier_points",
    "frontier_row",
    "run_deadline_throughput_frontier",
    "render_frontier",
    "DirichletChurnCell",
    "CHURN_MODES",
    "run_dirichlet_churn_matrix",
    "render_dirichlet_churn_matrix",
    "ChaosRow",
    "CHAOS_PROXY_CRASH_RATES",
    "run_chaos",
    "render_chaos",
    "ByzantineRow",
    "BYZANTINE_FRACTIONS",
    "BYZANTINE_RULES",
    "run_byzantine_comparison",
    "render_byzantine_comparison",
    "PopulationRow",
    "POPULATION_SCALES",
    "run_population_study",
    "render_population",
    "ShardedRow",
    "SHARDED_SHARD_COUNTS",
    "SHARDED_CRASH_RATES",
    "run_sharded_comparison",
    "render_sharded",
    "CohortRow",
    "COHORT_SIZES",
    "run_cohort_study",
    "render_cohort",
]

#: The extended defense roster (name -> factory taking the params object).
EXTENDED_DEFENSES = {
    "classical-fl": lambda params, seed: NoDefense(),
    "noisy-gradient": lambda params, seed: GaussianNoiseDefense(sigma=params.noise_sigma),
    "mixnn": lambda params, seed: MixNNDefense(
        rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))
    ),
    "secure-aggregation": lambda params, seed: SecureAggregationDefense(),
    # clip_norm is chosen to actually bind on these models' update deltas so
    # the defense is a distinct point from the plain noisy-gradient baseline.
    "dp-clip-noise": lambda params, seed: ClipAndNoiseDefense(clip_norm=0.2, noise_multiplier=0.3),
}


@dataclass
class DefenseComparisonRow:
    """One defense's (utility, privacy) outcome."""

    defense: str
    final_accuracy: float
    mean_inference: float
    random_guess: float

    @property
    def leakage(self) -> float:
        return self.mean_inference - self.random_guess


def _attacked_run(dataset_name, defense_factory, scale, seed, rounds, mode="active"):
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(stable_seed(seed, "attack")),
        mode=mode,
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=defense_factory(params, seed),
        attack=attack,
    )
    return simulation.run(), dataset


def run_defense_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> list[DefenseComparisonRow]:
    """Score every defense on (final accuracy, mean inference accuracy)."""
    rows: list[DefenseComparisonRow] = []
    for name, factory in EXTENDED_DEFENSES.items():
        result, dataset = _attacked_run(dataset_name, factory, scale, seed, rounds)
        rows.append(
            DefenseComparisonRow(
                defense=name,
                final_accuracy=result.accuracy_curve()[-1],
                mean_inference=float(np.mean(result.inference_values())),
                random_guess=dataset.random_guess_accuracy,
            )
        )
    return rows


def render_defense_comparison(rows: list[DefenseComparisonRow]) -> str:
    header = ["defense", "final accuracy", "mean inference", "leakage above guess"]
    body = [
        [row.defense, round(row.final_accuracy, 3), round(row.mean_inference, 3), round(row.leakage, 3)]
        for row in rows
    ]
    return format_table(header, body)


def run_passive_vs_active(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> dict[str, list[float]]:
    """∇Sim's two modes on classical FL (the §5 comparison)."""
    curves: dict[str, list[float]] = {}
    for mode in ("passive", "active"):
        result, _ = _attacked_run(dataset_name, EXTENDED_DEFENSES["classical-fl"], scale, seed, rounds, mode=mode)
        curves[mode] = result.inference_values()
    return curves


@dataclass
class ScenarioComparisonRow:
    """One round-closure scheme's outcome under client churn.

    Durations, idle fractions, and throughput are *measured* on the
    virtual-time event stream; ``timing_attack`` is the arrival-order
    re-identification accuracy of the
    :class:`~repro.attacks.timing.TimingSideChannel` adversary on the same
    stream (``nan`` when the run is too short to profile and score).
    """

    scheme: str
    final_accuracy: float
    mean_round_duration: float
    mean_aggregated: float
    total_stale: int
    total_stragglers: int
    total_seconds: float = 0.0
    mean_idle_fraction: float = 0.0
    effective_throughput: float = 0.0
    timing_attack: float = float("nan")
    timing_guess: float = float("nan")

    @property
    def accuracy_per_second(self) -> float:
        """Final accuracy per simulated second of round time (efficiency)."""
        if self.mean_round_duration <= 0:
            return float("inf")
        return self.final_accuracy / self.mean_round_duration

    @property
    def timing_advantage(self) -> float:
        """Timing adversary's lift over random assignment."""
        return self.timing_attack - self.timing_guess


#: The compared round-closure schemes, in presentation order.
SCENARIO_SCHEMES: tuple[str, ...] = ("sync-full", "sync-deadline", "buffered-async")


def make_scenario(
    scheme: str,
    dropout: float,
    cohort: int,
    deadline: float = 2.5,
    staleness_alpha: float = 0.5,
    buffer_fraction: float = 0.6,
    latency_median: float = 1.0,
    straggler_fraction: float = 0.15,
    client_spread: float = 0.35,
):
    """Build the :class:`ScenarioConfig` for one round-closure scheme.

    All three share the same churn (``dropout``) and latency distribution
    (log-normal, median ``latency_median`` s, a ``straggler_fraction`` heavy
    tail, and a systematic per-client speed spread — real fleets mix fast and
    slow devices, which is also what gives the timing side channel its
    signal), so the schemes differ only in *when the server closes the
    round*:

    * ``"sync-full"`` waits for every surviving client (round time = slowest
      survivor — the straggler tail dominates);
    * ``"sync-deadline"`` closes at ``deadline`` simulated seconds whenever a
      straggler is still outstanding;
    * ``"buffered-async"`` closes on the ``buffer_fraction · cohort``-th
      arrival and folds late updates into later rounds, down-weighted by
      ``(1 + staleness) ** -alpha``.
    """
    from ..federated.scenario import LogNormalLatency, RandomDropout, ScenarioConfig

    availability = RandomDropout(dropout) if dropout > 0 else None
    latency = LogNormalLatency(
        median=latency_median,
        sigma=0.5,
        straggler_fraction=straggler_fraction,
        straggler_multiplier=8.0,
        client_spread=client_spread,
    )
    if scheme == "sync-full":
        return ScenarioConfig(availability=availability, latency=latency)
    if scheme == "sync-deadline":
        return ScenarioConfig(availability=availability, latency=latency, deadline=deadline)
    if scheme == "buffered-async":
        return ScenarioConfig(
            availability=availability,
            latency=latency,
            aggregation="buffered-async",
            buffer_size=max(1, int(round(buffer_fraction * cohort))),
            staleness_alpha=staleness_alpha,
        )
    raise KeyError(f"unknown scenario scheme {scheme!r}; choose from {SCENARIO_SCHEMES}")


def _timing_report(result, rounds: int):
    """Run the timing side channel if the run is long enough to warm up."""
    if rounds < 2:
        return None
    from ..attacks.timing import TimingSideChannel

    probe = TimingSideChannel(warmup_rounds=max(1, min(2, rounds - 1)))
    return probe.run(result)


def run_scenario_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
    dropout: float = 0.2,
    deadline: float = 2.5,
    buffer_fraction: float = 0.6,
    staleness_alpha: float = 0.5,
    latency_median: float = 1.0,
    straggler_fraction: float = 0.15,
    schemes: tuple[str, ...] = SCENARIO_SCHEMES,
) -> list[ScenarioComparisonRow]:
    """Compare the three round-closure schemes under client churn.

    ``dropout`` is the per-(client, round) churn probability — the ISSUE's
    operating band is 10–30 %.  Client selection, training RNGs, and the
    churn/latency draws are all shared across schemes (pure functions of
    ``(seed, client_id, round)``), so the rows differ only in round-closure
    policy.  ``schemes`` restricts the comparison (the CLI's ``--scheme``).
    """
    from dataclasses import replace as dc_replace

    rows: list[ScenarioComparisonRow] = []
    for scheme in schemes:
        dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
        model_fn = model_fn_for(dataset)
        cohort = params.clients_per_round or dataset.num_clients
        config = dc_replace(
            params.simulation_config(seed=seed, rounds=rounds),
            scenario=make_scenario(
                scheme,
                dropout,
                cohort,
                deadline=deadline,
                staleness_alpha=staleness_alpha,
                buffer_fraction=buffer_fraction,
                latency_median=latency_median,
                straggler_fraction=straggler_fraction,
            ),
        )
        result = FederatedSimulation(dataset, model_fn, config).run()
        durations = [r.simulated_duration for r in result.rounds]
        timing = _timing_report(result, rounds)
        rows.append(
            ScenarioComparisonRow(
                scheme=scheme,
                final_accuracy=result.accuracy_curve()[-1],
                mean_round_duration=float(np.mean(durations)),
                mean_aggregated=float(np.mean([r.num_aggregated for r in result.rounds])),
                total_stale=int(sum(r.num_stale for r in result.rounds)),
                total_stragglers=int(sum(r.num_stragglers for r in result.rounds)),
                total_seconds=result.total_simulated_seconds(),
                mean_idle_fraction=result.mean_idle_fraction(),
                effective_throughput=result.effective_throughput(),
                timing_attack=timing.accuracy if timing else float("nan"),
                timing_guess=timing.random_guess if timing else float("nan"),
            )
        )
    return rows


def render_scenario_comparison(rows: list[ScenarioComparisonRow]) -> str:
    header = [
        "scheme",
        "final accuracy",
        "mean round secs",
        "mean merged/round",
        "stale",
        "stragglers",
        "idle frac",
        "merged/sec",
        "timing attack",
        "timing guess",
    ]
    body = [
        [
            row.scheme,
            round(row.final_accuracy, 3),
            round(row.mean_round_duration, 2),
            round(row.mean_aggregated, 1),
            row.total_stale,
            row.total_stragglers,
            round(row.mean_idle_fraction, 3),
            round(row.effective_throughput, 2),
            round(row.timing_attack, 3),
            round(row.timing_guess, 3),
        ]
        for row in rows
    ]
    return format_table(header, body)


# ----------------------------------------------------------------------
# Deadline-vs-throughput frontier (measured on the event stream)
# ----------------------------------------------------------------------
#: default knob sweeps, shared with the ``deadline_throughput_frontier``
#: benchmark rows so snapshots and reports never drift apart
FRONTIER_DEADLINES: tuple[float, ...] = (1.5, 2.5, 4.0)
FRONTIER_BUFFER_FRACTIONS: tuple[float, ...] = (0.4, 0.6, 0.8)


@dataclass
class FrontierRow:
    """One (scheme, knob) point on the deadline-vs-throughput frontier."""

    scheme: str
    knob: str
    final_accuracy: float
    total_seconds: float
    effective_throughput: float
    mean_idle_fraction: float

    @property
    def accuracy_per_second(self) -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return self.final_accuracy / self.total_seconds

    def as_row(self) -> dict:
        return {
            "scheme": self.scheme,
            "knob": self.knob,
            "final_accuracy": self.final_accuracy,
            "total_simulated_seconds": self.total_seconds,
            "merged_per_simulated_sec": self.effective_throughput,
            "mean_idle_fraction": self.mean_idle_fraction,
        }


def frontier_points(
    deadlines: tuple[float, ...] = FRONTIER_DEADLINES,
    buffer_fractions: tuple[float, ...] = FRONTIER_BUFFER_FRACTIONS,
) -> list[tuple[str, str, dict]]:
    """The swept ``(scheme, knob label, make_scenario overrides)`` points."""
    points: list[tuple[str, str, dict]] = [("sync-full", "-", {})]
    points += [
        ("sync-deadline", f"deadline={value:g}s", {"deadline": value}) for value in deadlines
    ]
    points += [
        ("buffered-async", f"buffer={value:g}", {"buffer_fraction": value})
        for value in buffer_fractions
    ]
    return points


def frontier_row(scheme: str, knob: str, result) -> FrontierRow:
    """Score one finished scenario run as a frontier point."""
    from ..metrics.latency import summarize_round_timing

    timing = summarize_round_timing(result.rounds)
    return FrontierRow(
        scheme=scheme,
        knob=knob,
        final_accuracy=result.accuracy_curve()[-1],
        total_seconds=timing.total_seconds,
        effective_throughput=timing.effective_throughput,
        mean_idle_fraction=timing.mean_idle_fraction,
    )


def run_deadline_throughput_frontier(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
    dropout: float = 0.2,
    deadlines: tuple[float, ...] = FRONTIER_DEADLINES,
    buffer_fractions: tuple[float, ...] = FRONTIER_BUFFER_FRACTIONS,
    staleness_alpha: float = 0.5,
    latency_median: float = 1.0,
    straggler_fraction: float = 0.15,
) -> list[FrontierRow]:
    """Sweep the round-closure knobs and *measure* the resulting frontier.

    One sync-full anchor, one sync-deadline point per ``deadline``, one
    buffered-async point per ``buffer fraction`` — identical churn/latency
    draws throughout, so every row is the same workload under a different
    closure policy.  Durations and throughput come from the virtual-time
    event stream (flush timestamps), not from analytic formulas: this is the
    deadline-vs-throughput tradeoff the scenario engine previously could
    only infer.
    """
    from dataclasses import replace as dc_replace

    rows: list[FrontierRow] = []
    for scheme, knob, overrides in frontier_points(deadlines, buffer_fractions):
        dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
        model_fn = model_fn_for(dataset)
        cohort = params.clients_per_round or dataset.num_clients
        config = dc_replace(
            params.simulation_config(seed=seed, rounds=rounds),
            scenario=make_scenario(
                scheme,
                dropout,
                cohort,
                staleness_alpha=staleness_alpha,
                latency_median=latency_median,
                straggler_fraction=straggler_fraction,
                **overrides,
            ),
        )
        result = FederatedSimulation(dataset, model_fn, config).run()
        rows.append(frontier_row(scheme, knob, result))
    return rows


def render_frontier(rows: list[FrontierRow]) -> str:
    header = [
        "scheme",
        "knob",
        "final accuracy",
        "total secs",
        "merged/sec",
        "idle frac",
        "acc/sec",
    ]
    body = [
        [
            row.scheme,
            row.knob,
            round(row.final_accuracy, 3),
            round(row.total_seconds, 2),
            round(row.effective_throughput, 2),
            round(row.mean_idle_fraction, 3),
            round(row.accuracy_per_second, 4),
        ]
        for row in rows
    ]
    return format_table(header, body)


# ----------------------------------------------------------------------
# Dirichlet × churn matrix: does non-IID amplify dropout damage?
# ----------------------------------------------------------------------
#: churn models crossed with each Dirichlet α, in presentation order
CHURN_MODES: tuple[str, ...] = ("none", "dropout", "outage-trace")


@dataclass
class DirichletChurnCell:
    """One (α, churn mode) cell of the non-IID × churn matrix."""

    alpha: float
    churn: str
    final_accuracy: float
    mean_aggregated: float

    @property
    def label(self) -> str:
        return f"α={self.alpha:g}/{self.churn}"


def _churn_availability(mode: str, dropout: float, client_ids: list[int], rounds: int):
    """The availability model for one churn mode of the matrix."""
    from ..federated.scenario import ChurnTrace, RandomDropout

    if mode == "none":
        return None
    if mode == "dropout":
        return RandomDropout(dropout)
    if mode == "outage-trace":
        # Deterministic rotating outage: each round a different third of the
        # fleet is offline — the worst case for heavy label skew, where one
        # missing client can remove a class from the round entirely.
        trace = {}
        for round_index in range(rounds):
            trace[round_index] = [
                client_id
                for position, client_id in enumerate(sorted(client_ids))
                if position % 3 != round_index % 3
            ]
        return ChurnTrace(trace)
    raise KeyError(f"unknown churn mode {mode!r}; choose from {CHURN_MODES}")


def run_dirichlet_churn_matrix(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 4,
    alphas: tuple[float, ...] = (10.0, 0.3),
    dropout: float = 0.3,
) -> list[DirichletChurnCell]:
    """Cross Dirichlet(α) label skew with churn models.

    For each ``alpha`` the base dataset is re-partitioned with
    :class:`~repro.data.DirichletReshard` (large α ≈ IID, small α = heavy
    skew) and run under each churn mode of :data:`CHURN_MODES` with identical
    training seeds.  Comparing the per-α accuracy *drop* between the
    ``none`` column and the churn columns answers the ROADMAP question: does
    non-IID data amplify dropout damage?
    """
    from dataclasses import replace as dc_replace

    from ..data import DirichletReshard
    from ..federated.scenario import ScenarioConfig

    cells: list[DirichletChurnCell] = []
    for alpha in alphas:
        base, params = build_experiment(dataset_name, scale=scale, seed=seed)
        dataset = DirichletReshard(base, alpha=alpha, seed=seed)
        model_fn = model_fn_for(dataset)
        client_ids = [c.client_id for c in dataset.clients()]
        for mode in CHURN_MODES:
            availability = _churn_availability(mode, dropout, client_ids, rounds)
            scenario = ScenarioConfig(availability=availability) if availability else None
            config = dc_replace(
                params.simulation_config(seed=seed, rounds=rounds), scenario=scenario
            )
            result = FederatedSimulation(dataset, model_fn, config).run()
            cells.append(
                DirichletChurnCell(
                    alpha=alpha,
                    churn=mode,
                    final_accuracy=result.accuracy_curve()[-1],
                    mean_aggregated=float(
                        np.mean([r.num_aggregated for r in result.rounds])
                    ),
                )
            )
    return cells


def churn_damage(cells: list[DirichletChurnCell]) -> dict[float, dict[str, float]]:
    """Accuracy drop vs the no-churn column, per ``(alpha, churn mode)``."""
    by_alpha: dict[float, dict[str, DirichletChurnCell]] = {}
    for cell in cells:
        by_alpha.setdefault(cell.alpha, {})[cell.churn] = cell
    damage: dict[float, dict[str, float]] = {}
    for alpha, row in by_alpha.items():
        baseline = row["none"].final_accuracy
        damage[alpha] = {
            mode: baseline - cell.final_accuracy
            for mode, cell in row.items()
            if mode != "none"
        }
    return damage


def render_dirichlet_churn_matrix(cells: list[DirichletChurnCell]) -> str:
    header = ["alpha", "churn", "final accuracy", "mean merged/round", "damage vs no-churn"]
    damage = churn_damage(cells)
    body = [
        [
            f"{cell.alpha:g}",
            cell.churn,
            round(cell.final_accuracy, 3),
            round(cell.mean_aggregated, 1),
            "-" if cell.churn == "none" else round(damage[cell.alpha][cell.churn], 3),
        ]
        for cell in cells
    ]
    lines = [format_table(header, body)]
    alphas = sorted(damage)
    if len(alphas) >= 2:
        skewed, iid = alphas[0], alphas[-1]
        worst_skewed = max(damage[skewed].values())
        worst_iid = max(damage[iid].values())
        amplified = worst_skewed > worst_iid
        lines.append(
            f"non-IID (α={skewed:g}) worst-case churn damage {worst_skewed:+.3f} vs "
            f"IID-ish (α={iid:g}) {worst_iid:+.3f} — "
            + ("non-IID amplifies dropout damage" if amplified else "no amplification observed")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chaos study: the round pipeline under seeded fault injection
# ----------------------------------------------------------------------
#: default proxy-crash sweep, shared with the ``fault_recovery`` benchmark
#: rows so snapshots and reports never drift apart
CHAOS_PROXY_CRASH_RATES: tuple[float, ...] = (0.0, 0.05, 0.2)


@dataclass
class ChaosRow:
    """One fault-rate operating point of the chaos sweep.

    ``final_accuracy`` and ``effective_throughput`` say what the faults cost;
    the ledger columns (``injected = retried + failed_over + discarded`` by
    construction) say what the fault plane did about them; the recovery
    percentiles say how long one fault took to absorb.
    """

    proxy_crash_rate: float
    frame_corruption_rate: float
    final_accuracy: float
    mean_aggregated: float
    effective_throughput: float
    total_faults: int
    total_retries: int
    failed_over: int
    discarded: int
    retransmissions: int
    recovery_p50_seconds: float
    recovery_p99_seconds: float
    carried_forward: int

    def as_row(self) -> dict:
        return {
            "proxy_crash_rate": self.proxy_crash_rate,
            "frame_corruption_rate": self.frame_corruption_rate,
            "final_accuracy": round(self.final_accuracy, 4),
            "mean_aggregated": round(self.mean_aggregated, 2),
            "merged_per_s": round(self.effective_throughput, 4),
            "faults": self.total_faults,
            "retries": self.total_retries,
            "failed_over": self.failed_over,
            "discarded": self.discarded,
            "retransmissions": self.retransmissions,
            "recovery_p50_s": round(self.recovery_p50_seconds, 4),
            "recovery_p99_s": round(self.recovery_p99_seconds, 4),
            "carried_forward": self.carried_forward,
        }


def run_chaos(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 4,
    dropout: float = 0.1,
    proxy_crash_rates: tuple[float, ...] = CHAOS_PROXY_CRASH_RATES,
    frame_corruption_rate: float = 0.05,
    client_crash_rate: float = 0.0,
    enclave_failure_rate: float = 0.0,
    quorum_fraction: float = 0.7,
    max_attempts: int = 4,
    hop_timeout: float | None = None,
    latency_median: float = 1.0,
) -> list[ChaosRow]:
    """Sweep proxy-crash rates through a full MixNN round pipeline.

    Every row runs the same seeded workload (selection, training, churn, and
    latency draws are pure functions of ``(seed, client, round)``) under the
    MixNN defense with the fault plane armed, varying only the proxy-crash
    probability — so accuracy/throughput deltas between rows are attributable
    to the faults and their recovery, nothing else.  Frame corruption is held
    at ``frame_corruption_rate`` across all rows (including the 0-crash row:
    that row measures the transport-retry floor, not a fault-free baseline).
    Each run's ledger is validated (injected == retried + failed-over +
    discarded) before its row is emitted.
    """
    from dataclasses import replace as dc_replace

    from ..federated.faults import FaultConfig
    from ..metrics.latency import summarize_round_timing

    rows: list[ChaosRow] = []
    for crash_rate in proxy_crash_rates:
        dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
        model_fn = model_fn_for(dataset)
        cohort = params.clients_per_round or dataset.num_clients
        faults = FaultConfig(
            client_crash_rate=client_crash_rate,
            frame_corruption_rate=frame_corruption_rate,
            enclave_failure_rate=enclave_failure_rate,
            proxy_crash_rate=crash_rate,
            quorum_fraction=quorum_fraction,
            max_attempts=max_attempts,
            hop_timeout=hop_timeout,
        )
        scenario = dc_replace(
            make_scenario("sync-full", dropout, cohort, latency_median=latency_median),
            faults=faults,
        )
        config = dc_replace(
            params.simulation_config(seed=seed, rounds=rounds),
            scenario=scenario,
        )
        result = FederatedSimulation(
            dataset,
            model_fn,
            config,
            defense=MixNNDefense(rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))),
        ).run()
        result.fault_ledger.validate()
        timing = summarize_round_timing(result.rounds)
        ledger = result.fault_ledger
        rows.append(
            ChaosRow(
                proxy_crash_rate=crash_rate,
                frame_corruption_rate=frame_corruption_rate,
                final_accuracy=result.accuracy_curve()[-1],
                mean_aggregated=float(np.mean([r.num_aggregated for r in result.rounds])),
                effective_throughput=timing.effective_throughput,
                total_faults=ledger.injected,
                total_retries=timing.total_retries,
                failed_over=ledger.failed_over,
                discarded=ledger.discarded,
                retransmissions=ledger.retransmissions,
                recovery_p50_seconds=timing.recovery_p50_seconds,
                recovery_p99_seconds=timing.recovery_p99_seconds,
                carried_forward=int(sum(r.num_carried_forward for r in result.rounds)),
            )
        )
    return rows


def render_chaos(rows: list[ChaosRow]) -> str:
    header = [
        "proxy crash",
        "frame corrupt",
        "final accuracy",
        "mean merged/round",
        "merged/sec",
        "faults",
        "retries",
        "failed over",
        "discarded",
        "retransmits",
        "recovery p50 s",
        "recovery p99 s",
        "carried",
    ]
    body = [
        [
            f"{row.proxy_crash_rate:g}",
            f"{row.frame_corruption_rate:g}",
            round(row.final_accuracy, 3),
            round(row.mean_aggregated, 1),
            round(row.effective_throughput, 2),
            row.total_faults,
            row.total_retries,
            row.failed_over,
            row.discarded,
            row.retransmissions,
            round(row.recovery_p50_seconds, 3),
            round(row.recovery_p99_seconds, 3),
            row.carried_forward,
        ]
        for row in rows
    ]
    lines = [format_table(header, body)]
    if len(rows) >= 2:
        base, worst = rows[0], rows[-1]
        if base.effective_throughput > 0:
            slowdown = 1.0 - worst.effective_throughput / base.effective_throughput
            lines.append(
                f"throughput at {worst.proxy_crash_rate:g} proxy-crash is "
                f"{slowdown:+.1%} below the {base.proxy_crash_rate:g}-crash row; "
                f"accuracy delta {worst.final_accuracy - base.final_accuracy:+.3f} "
                "(every ledger balanced: injected == retried + failed-over + discarded)"
            )
    return "\n".join(lines)


#: Attacker fractions the Byzantine comparison sweeps (0 = clean baseline).
BYZANTINE_FRACTIONS: tuple[float, ...] = (0.0, 0.1, 0.3)

#: Aggregation policies the Byzantine comparison scores against plain mean.
BYZANTINE_RULES: tuple[str, ...] = ("mean", "median", "trimmed", "norm_filter", "krum", "multi-krum")


@dataclass
class ByzantineRow:
    """One (rule × attacker-fraction × defense) cell of the Byzantine sweep.

    ``accuracy_drop`` is measured against the same (rule, defense) pair's
    clean (fraction-0) run, so it isolates what the *poison* cost, not what
    the robust rule itself costs on honest updates.  The ledger columns obey
    ``injected == merged + filtered + rejected`` (validated per run), and
    ``transcript_verify_ms`` is the measured cost of re-walking the full
    hash-chained round transcript — the audit overhead the integrity layer
    charges.
    """

    rule: str
    attacker_fraction: float
    defense: str
    final_accuracy: float
    accuracy_drop: float
    injected: int
    merged: int
    filtered: int
    rejected: int
    attack_success_rate: float
    filter_precision: float
    filter_recall: float
    transcript_verify_ms: float

    def as_row(self) -> dict:
        return {
            "rule": self.rule,
            "attacker_fraction": self.attacker_fraction,
            "defense": self.defense,
            "final_accuracy": round(self.final_accuracy, 4),
            "accuracy_drop": round(self.accuracy_drop, 4),
            "injected": self.injected,
            "merged": self.merged,
            "filtered": self.filtered,
            "rejected": self.rejected,
            "attack_success_rate": round(self.attack_success_rate, 4),
            "filter_precision": round(self.filter_precision, 4),
            "filter_recall": round(self.filter_recall, 4),
            "transcript_verify_ms": round(self.transcript_verify_ms, 4),
        }


def run_byzantine_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 3,
    attack: str = "sign-flip",
    attack_scale: float = 100.0,
    fractions: tuple[float, ...] = BYZANTINE_FRACTIONS,
    rules: tuple[str, ...] = BYZANTINE_RULES,
    defenses: tuple[str, ...] = ("none", "mixnn"),
    replay_rate: float = 0.0,
    dropout: float = 0.0,
) -> list[ByzantineRow]:
    """Score every aggregation policy against a poisoning adversary.

    The full cross of ``rules × fractions × defenses``, every cell the same
    seeded workload (selection, training, and attacker activation are pure
    functions of ``(seed, client, round)``) so accuracy deltas between cells
    are attributable to the poison and the policy, nothing else.  Fraction
    ``0.0`` rows are the clean baselines the per-rule ``accuracy_drop``
    is measured against (and double as the zero-adversary bit-identity
    witnesses: their adversary plane is armed but silent).  Each run
    validates its adversary ledger and verifies its round transcript before
    the row is emitted — a row in the output *is* a passed audit.
    """
    import time
    from dataclasses import replace as dc_replace

    from ..federated.adversary import AdversaryConfig
    from ..metrics.robustness import summarize_robustness

    rows: list[ByzantineRow] = []
    baselines: dict[tuple[str, str], float] = {}
    ordered_fractions = sorted(set(fractions))
    for defense_name in defenses:
        for rule in rules:
            for fraction in ordered_fractions:
                dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
                model_fn = model_fn_for(dataset)
                cohort = params.clients_per_round or dataset.num_clients
                adversary = AdversaryConfig(
                    fraction=fraction,
                    kind=attack,
                    scale=attack_scale,
                    replay_rate=replay_rate if fraction > 0 else 0.0,
                )
                scenario = dc_replace(
                    make_scenario("sync-full", dropout, cohort),
                    adversary=adversary,
                )
                config = dc_replace(
                    params.simulation_config(seed=seed, rounds=rounds),
                    scenario=scenario,
                    aggregation=rule,
                )
                defense = (
                    MixNNDefense(rng=rng_from_seed(stable_seed(seed, "mixnn-proxy")))
                    if defense_name == "mixnn"
                    else NoDefense()
                )
                result = FederatedSimulation(dataset, model_fn, config, defense=defense).run()
                baseline = baselines.get((defense_name, rule))
                summary = summarize_robustness(result, baseline_accuracy=baseline)
                start = time.perf_counter()
                result.transcript.verify()
                verify_ms = (time.perf_counter() - start) * 1e3
                if fraction == 0.0:
                    baselines[(defense_name, rule)] = summary.final_accuracy
                rows.append(
                    ByzantineRow(
                        rule=rule,
                        attacker_fraction=fraction,
                        defense=defense_name,
                        final_accuracy=summary.final_accuracy,
                        accuracy_drop=summary.accuracy_drop,
                        injected=summary.injected,
                        merged=summary.merged,
                        filtered=summary.filtered,
                        rejected=summary.rejected,
                        attack_success_rate=summary.attack_success_rate,
                        filter_precision=summary.filter_precision,
                        filter_recall=summary.filter_recall,
                        transcript_verify_ms=verify_ms,
                    )
                )
    return rows


def render_byzantine_comparison(rows: list[ByzantineRow]) -> str:
    header = [
        "rule",
        "attackers",
        "defense",
        "final accuracy",
        "accuracy drop",
        "injected",
        "merged",
        "filtered",
        "rejected",
        "attack success",
        "filter precision",
        "filter recall",
        "verify ms",
    ]
    body = [
        [
            row.rule,
            f"{row.attacker_fraction:g}",
            row.defense,
            round(row.final_accuracy, 3),
            round(row.accuracy_drop, 3),
            row.injected,
            row.merged,
            row.filtered,
            row.rejected,
            round(row.attack_success_rate, 3),
            round(row.filter_precision, 3),
            round(row.filter_recall, 3),
            round(row.transcript_verify_ms, 3),
        ]
        for row in rows
    ]
    lines = [format_table(header, body)]
    worst_fraction = max((r.attacker_fraction for r in rows), default=0.0)
    if worst_fraction > 0:
        at_worst = [r for r in rows if r.attacker_fraction == worst_fraction]
        mean_rows = [r for r in at_worst if r.rule == "mean"]
        robust = [r for r in at_worst if r.rule != "mean"]
        if mean_rows and robust:
            best = max(robust, key=lambda r: r.final_accuracy)
            lines.append(
                f"at {worst_fraction:.0%} attackers, plain mean merges "
                f"{mean_rows[0].merged}/{mean_rows[0].injected} poisons "
                f"(accuracy drop {mean_rows[0].accuracy_drop:+.3f}); best robust rule "
                f"{best.rule!r} holds at accuracy {best.final_accuracy:.3f} "
                f"(attack success {best.attack_success_rate:.0%}); every ledger and "
                "transcript verified"
            )
    return "\n".join(lines)


def run_relink_robustness(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 2,
):
    """The §6.4 re-linking adversary against actual mixed updates.

    Runs one MixNN round, builds the adversary's reference models from the
    broadcast, and measures how often a per-layer classification of the mixed
    pieces recovers each piece's true source attribute.
    """
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=MixNNDefense(rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))),
    )
    result = simulation.run()
    mixed_updates = result.received_updates[-1]
    # The broadcast those updates refined is the previous round's aggregate;
    # recover it the way the adversary would: re-aggregate the prior round.
    from ..federated.update import aggregate_updates

    previous = result.received_updates[-2] if rounds >= 2 else mixed_updates
    broadcast_state = aggregate_updates(previous)
    references = build_reference_states(
        broadcast_state,
        dataset.background_clients(),
        model_fn,
        params.local_config(),
        rng_from_seed(stable_seed(seed, "relink")),
        attack_epochs=params.attack_epochs,
    )
    truth = {c.client_id: c.attribute for c in dataset.clients()}
    attack = RelinkAttack(references, broadcast_state)
    report = attack.run(mixed_updates, true_attributes=truth)
    return report, dataset


# ----------------------------------------------------------------------
# Population-scale engine study (million-client lazy federation)
# ----------------------------------------------------------------------
#: default (population size, clients per round) per runner scale
POPULATION_SCALES = {"ci": (100_000, 1_000), "paper": (1_000_000, 10_000)}


@dataclass
class PopulationRow:
    """One population-scale round measurement."""

    population_size: int
    clients_per_round: int
    rounds: int
    wall_seconds: float
    trained_clients_per_sec: float
    peak_materialized: int
    peak_traced_mb: float
    final_accuracy: float


def run_population_study(
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 1,
    population_size: int | None = None,
    clients_per_round: int | None = None,
    alpha: float | None = None,
) -> PopulationRow:
    """One memory-instrumented run of the population-scale engine.

    A :class:`~repro.data.population.SyntheticPopulation` federation on the
    lazy client plane and the calendar scheduler: clients exist as
    descriptors, the selected cohort materializes for its round and is
    released after the merge.  The row records the tracemalloc peak of the
    whole run next to the population's materialization high-water mark — the
    engine's claim is that both are set by ``clients_per_round``, never by
    ``population_size``.
    """
    import time
    import tracemalloc

    from ..data import SyntheticPopulation
    from ..federated import (
        LocalTrainingConfig,
        LogNormalLatency,
        ScenarioConfig,
        SimulationConfig,
    )

    default_size, default_cohort = POPULATION_SCALES[scale]
    population_size = population_size if population_size is not None else default_size
    clients_per_round = (
        clients_per_round if clients_per_round is not None else default_cohort
    )
    dataset = SyntheticPopulation(population_size=population_size, alpha=alpha, seed=seed)
    config = SimulationConfig(
        rounds=rounds,
        local=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        clients_per_round=clients_per_round,
        seed=seed,
        track_per_client_accuracy=False,
        retain_received_updates=False,
        scenario=ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.5)),
    )
    tracemalloc.start()
    start = time.perf_counter()
    simulation = FederatedSimulation(dataset, model_fn_for(dataset), config)
    result = simulation.run()
    wall = time.perf_counter() - start
    _, peak_traced = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return PopulationRow(
        population_size=population_size,
        clients_per_round=clients_per_round,
        rounds=rounds,
        wall_seconds=wall,
        trained_clients_per_sec=rounds * clients_per_round / wall,
        peak_materialized=simulation.population.peak_materialized,
        peak_traced_mb=peak_traced / 1e6,
        final_accuracy=result.rounds[-1].global_accuracy,
    )


def render_population(row: PopulationRow) -> str:
    header = [
        "population",
        "cohort/round",
        "rounds",
        "wall s",
        "trained clients/s",
        "peak materialized",
        "peak traced MB",
        "final acc",
    ]
    body = [
        [
            row.population_size,
            row.clients_per_round,
            row.rounds,
            round(row.wall_seconds, 2),
            round(row.trained_clients_per_sec, 1),
            row.peak_materialized,
            round(row.peak_traced_mb, 1),
            round(row.final_accuracy, 3),
        ]
    ]
    bound = "cohort-bounded" if row.peak_materialized <= row.clients_per_round else "UNBOUNDED"
    return "\n".join(
        [
            format_table(header, body),
            f"memory: {bound} — {row.peak_materialized} of {row.population_size} "
            f"clients ever materialized at once ({row.peak_traced_mb:.1f} MB traced peak)",
        ]
    )


# ----------------------------------------------------------------------
# Sharded hierarchical aggregation study
# ----------------------------------------------------------------------
#: leaf-shard counts the ``sharded`` command sweeps by default
SHARDED_SHARD_COUNTS = (1, 2, 4)
#: per-(shard, round, attempt) crash probabilities swept by default (0 is the
#: fault-free row; the non-zero row exercises retry/backoff and failover)
SHARDED_CRASH_RATES = (0.0, 0.3)


@dataclass
class ShardedRow:
    """One (shard count × crash rate) cell of the sharded-plane study."""

    num_shards: int
    shard_crash_rate: float
    clients_per_round: int
    wall_seconds: float
    rounds_per_sec: float
    final_accuracy: float
    #: final global state byte-equal to the serial (``shards=0``) run of the
    #: same seeded workload — the plane's bit-identity contract, measured
    byte_identical: bool
    crashes: int
    retried: int
    failed_over: int


def run_sharded_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 3,
    num_shards: tuple[int, ...] = SHARDED_SHARD_COUNTS,
    shard_crash_rates: tuple[float, ...] = SHARDED_CRASH_RATES,
    clients_per_round: int | None = None,
) -> list[ShardedRow]:
    """Sweep shard counts × crash rates; score each cell against serial.

    Every cell runs the same seeded workload (selection, training, and crash
    draws are pure functions of ``(seed, entity, round)``) through the
    sharded data plane, varying only the plan width and the injected
    shard-crash probability.  For each crash rate one serial (``shards=0``)
    reference run anchors the bit-identity check: by the merge-order
    contract, every cell's final state must be byte-equal to it, crashes and
    failovers included.  Each faulted cell's ledger is validated and its
    hierarchical transcript verified before the row is emitted.
    """
    import time
    from dataclasses import replace as dc_replace

    from ..federated import ScenarioConfig
    from ..federated.faults import FaultConfig

    def run_once(shards: int, crash_rate: float):
        dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
        model_fn = model_fn_for(dataset)
        config = params.simulation_config(seed=seed, rounds=rounds)
        overrides: dict = {
            "num_shards": shards,
            "scenario": ScenarioConfig(
                faults=FaultConfig(shard_crash_rate=crash_rate)
            ),
        }
        if clients_per_round is not None:
            overrides["clients_per_round"] = clients_per_round
        config = dc_replace(config, **overrides)
        start = time.perf_counter()
        result = FederatedSimulation(dataset, model_fn, config).run()
        return result, time.perf_counter() - start

    rows: list[ShardedRow] = []
    for crash_rate in shard_crash_rates:
        serial, _ = run_once(0, crash_rate)
        for shards in num_shards:
            result, wall = run_once(shards, crash_rate)
            result.fault_ledger.validate()
            result.shard_transcript.verify()
            identical = all(
                np.array_equal(serial.final_state[name], value)
                for name, value in result.final_state.items()
            )
            crash_entries = [
                entry
                for entry in result.fault_ledger.entries
                if entry.kind == "shard-crash"
            ]
            rows.append(
                ShardedRow(
                    num_shards=shards,
                    shard_crash_rate=crash_rate,
                    clients_per_round=result.rounds[-1].num_selected,
                    wall_seconds=wall,
                    rounds_per_sec=rounds / wall,
                    final_accuracy=result.accuracy_curve()[-1],
                    byte_identical=identical,
                    crashes=len(crash_entries),
                    retried=sum(
                        1 for entry in crash_entries if entry.resolution == "retried"
                    ),
                    failed_over=sum(
                        1 for entry in crash_entries if entry.resolution == "failed-over"
                    ),
                )
            )
    return rows


def render_sharded(rows: list[ShardedRow]) -> str:
    header = [
        "shards",
        "crash rate",
        "wall s",
        "rounds/s",
        "final acc",
        "byte-identical",
        "crashes",
        "retried",
        "failed over",
    ]
    body = [
        [
            row.num_shards,
            row.shard_crash_rate,
            round(row.wall_seconds, 2),
            round(row.rounds_per_sec, 2),
            round(row.final_accuracy, 3),
            "yes" if row.byte_identical else "NO",
            row.crashes,
            row.retried,
            row.failed_over,
        ]
        for row in rows
    ]
    identical = sum(1 for row in rows if row.byte_identical)
    return "\n".join(
        [
            format_table(header, body),
            f"bit-identity: {identical}/{len(rows)} cells byte-equal to the "
            f"serial path (merge-order contract)",
        ]
    )


# ----------------------------------------------------------------------
# Cohort-batched training study: serial loop vs one stacked pass
# ----------------------------------------------------------------------

#: cohort sizes swept by the cohort command (clients per stacked pass)
COHORT_SIZES = (16, 64, 256)


@dataclass
class CohortRow:
    """One cohort size of the serial-vs-batched local-training comparison."""

    cohort_size: int
    local_epochs: int
    serial_seconds: float
    batched_seconds: float
    speedup: float
    serial_clients_per_sec: float
    batched_clients_per_sec: float
    #: refined rows byte-equal to the serial path — the linear-probe
    #: bit-identity contract (conv architectures promise 1e-6 relative
    #: tolerance instead; the synthetic population trains a linear probe)
    bit_identical: bool
    max_abs_deviation: float


def run_cohort_study(
    seed: int = 0,
    cohort_sizes: tuple[int, ...] = COHORT_SIZES,
    local_epochs: int = 1,
    batch_size: int = 8,
    repeats: int = 3,
) -> list[CohortRow]:
    """Time one round's local training serial vs cohort-batched per size.

    Runs on its own synthetic linear-probe population (same workload as the
    ``cohort_train_seconds`` benchmark): for each cohort size the identical
    seeded workload trains once through the serial
    :func:`~repro.federated.client.train_rows_into` loop and once through
    :class:`~repro.federated.cohort.CohortTrainer`'s stacked pass, best-of-
    ``repeats`` each after a shared warm-up.  Every row also *measures* the
    numerical contract: for this architecture the refined ``(M, D)`` rows
    must be byte-equal between the two paths.
    """
    import time

    from ..data import SyntheticPopulation
    from ..federated import LocalTrainingConfig
    from ..federated.client import ClientPopulation, train_rows_into
    from ..federated.cohort import CohortTrainer
    from ..nn.serialization import schema_of

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    local = LocalTrainingConfig(local_epochs=local_epochs, batch_size=batch_size)
    rows: list[CohortRow] = []
    for cohort in cohort_sizes:
        dataset = SyntheticPopulation(population_size=cohort, seed=seed)
        model_fn = model_fn_for(dataset)
        population = ClientPopulation.for_dataset(dataset, model_fn, local, seed=seed)
        broadcast = model_fn(rng_from_seed(seed)).state_dict()
        schema = schema_of(broadcast)
        pairs = list(enumerate(population.client_ids(range(cohort))))
        rows_serial = np.empty((cohort, schema.total_size), dtype=np.float32)
        rows_batched = np.empty_like(rows_serial)
        trainer = CohortTrainer(population, schema)
        train_rows_into(population, pairs, broadcast, 0, schema, rows_serial)  # warm-up
        trainer.train_rows(pairs, broadcast, 0, rows_batched)
        serial = best_of(
            lambda: train_rows_into(population, pairs, broadcast, 1, schema, rows_serial)
        )
        batched = best_of(lambda: trainer.train_rows(pairs, broadcast, 1, rows_batched))
        rows.append(
            CohortRow(
                cohort_size=cohort,
                local_epochs=local_epochs,
                serial_seconds=serial,
                batched_seconds=batched,
                speedup=serial / batched,
                serial_clients_per_sec=cohort / serial,
                batched_clients_per_sec=cohort / batched,
                bit_identical=np.array_equal(rows_serial, rows_batched),
                max_abs_deviation=float(np.abs(rows_serial - rows_batched).max()),
            )
        )
    return rows


def render_cohort(rows: list[CohortRow]) -> str:
    header = [
        "cohort",
        "epochs",
        "serial s",
        "batched s",
        "speedup",
        "serial cl/s",
        "batched cl/s",
        "bit-identical",
        "max |dev|",
    ]
    body = [
        [
            row.cohort_size,
            row.local_epochs,
            round(row.serial_seconds, 4),
            round(row.batched_seconds, 4),
            round(row.speedup, 2),
            round(row.serial_clients_per_sec, 1),
            round(row.batched_clients_per_sec, 1),
            "yes" if row.bit_identical else "NO",
            f"{row.max_abs_deviation:.1e}",
        ]
        for row in rows
    ]
    identical = sum(1 for row in rows if row.bit_identical)
    return "\n".join(
        [
            format_table(header, body),
            f"bit-identity: {identical}/{len(rows)} cohort sizes byte-equal to "
            f"the serial training loop (linear-probe contract)",
        ]
    )
