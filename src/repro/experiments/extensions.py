"""Extension experiments beyond the paper's figures.

Three studies DESIGN.md §6 commits to:

* :func:`run_defense_comparison` — all five defenses (classical FL, noisy
  gradient, MixNN, secure aggregation, DP clip-and-noise) on one dataset,
  scoring utility and active-∇Sim privacy side by side.  This renders the
  paper's §1 argument ("secure aggregation protects but needs the server's
  cooperation; perturbation protects but costs utility; MixNN costs neither")
  as a measured table.
* :func:`run_passive_vs_active` — §5's two adversary modes head-to-head.
* :func:`run_relink_robustness` — §6.4 as an *attack* rather than a census: a
  malicious server tries to re-link mixed layer pieces using its reference
  models; near-chance piece accuracy confirms the paper's robustness claim.

Plus the scenario-engine study this reproduction adds beyond the paper:

* :func:`run_scenario_comparison` — the same dataset under realistic client
  churn (10–30 % per-round dropout) with three round-closure schemes:
  synchronous wait-for-all-survivors, synchronous with a straggler deadline,
  and FedBuff-style staleness-weighted buffered-async aggregation.  Scores
  final utility against the simulated wall-clock cost per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks import GradSimAttack, RelinkAttack, build_reference_states
from ..defenses import (
    ClipAndNoiseDefense,
    GaussianNoiseDefense,
    MixNNDefense,
    NoDefense,
    SecureAggregationDefense,
)
from ..federated import FederatedSimulation
from ..utils.rng import rng_from_seed, stable_seed
from .config import build_experiment
from .models import model_fn_for
from .reporting import format_table

__all__ = [
    "DefenseComparisonRow",
    "run_defense_comparison",
    "run_passive_vs_active",
    "run_relink_robustness",
    "ScenarioComparisonRow",
    "SCENARIO_SCHEMES",
    "make_scenario",
    "run_scenario_comparison",
    "render_scenario_comparison",
]

#: The extended defense roster (name -> factory taking the params object).
EXTENDED_DEFENSES = {
    "classical-fl": lambda params, seed: NoDefense(),
    "noisy-gradient": lambda params, seed: GaussianNoiseDefense(sigma=params.noise_sigma),
    "mixnn": lambda params, seed: MixNNDefense(
        rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))
    ),
    "secure-aggregation": lambda params, seed: SecureAggregationDefense(),
    # clip_norm is chosen to actually bind on these models' update deltas so
    # the defense is a distinct point from the plain noisy-gradient baseline.
    "dp-clip-noise": lambda params, seed: ClipAndNoiseDefense(clip_norm=0.2, noise_multiplier=0.3),
}


@dataclass
class DefenseComparisonRow:
    """One defense's (utility, privacy) outcome."""

    defense: str
    final_accuracy: float
    mean_inference: float
    random_guess: float

    @property
    def leakage(self) -> float:
        return self.mean_inference - self.random_guess


def _attacked_run(dataset_name, defense_factory, scale, seed, rounds, mode="active"):
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(stable_seed(seed, "attack")),
        mode=mode,
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=defense_factory(params, seed),
        attack=attack,
    )
    return simulation.run(), dataset


def run_defense_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> list[DefenseComparisonRow]:
    """Score every defense on (final accuracy, mean inference accuracy)."""
    rows: list[DefenseComparisonRow] = []
    for name, factory in EXTENDED_DEFENSES.items():
        result, dataset = _attacked_run(dataset_name, factory, scale, seed, rounds)
        rows.append(
            DefenseComparisonRow(
                defense=name,
                final_accuracy=result.accuracy_curve()[-1],
                mean_inference=float(np.mean(result.inference_values())),
                random_guess=dataset.random_guess_accuracy,
            )
        )
    return rows


def render_defense_comparison(rows: list[DefenseComparisonRow]) -> str:
    header = ["defense", "final accuracy", "mean inference", "leakage above guess"]
    body = [
        [row.defense, round(row.final_accuracy, 3), round(row.mean_inference, 3), round(row.leakage, 3)]
        for row in rows
    ]
    return format_table(header, body)


def run_passive_vs_active(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
) -> dict[str, list[float]]:
    """∇Sim's two modes on classical FL (the §5 comparison)."""
    curves: dict[str, list[float]] = {}
    for mode in ("passive", "active"):
        result, _ = _attacked_run(dataset_name, EXTENDED_DEFENSES["classical-fl"], scale, seed, rounds, mode=mode)
        curves[mode] = result.inference_values()
    return curves


@dataclass
class ScenarioComparisonRow:
    """One round-closure scheme's outcome under client churn."""

    scheme: str
    final_accuracy: float
    mean_round_duration: float
    mean_aggregated: float
    total_stale: int
    total_stragglers: int

    @property
    def accuracy_per_second(self) -> float:
        """Final accuracy per simulated second of round time (efficiency)."""
        if self.mean_round_duration <= 0:
            return float("inf")
        return self.final_accuracy / self.mean_round_duration


#: The compared round-closure schemes, in presentation order.
SCENARIO_SCHEMES: tuple[str, ...] = ("sync-full", "sync-deadline", "buffered-async")


def make_scenario(
    scheme: str,
    dropout: float,
    cohort: int,
    deadline: float = 2.5,
    staleness_alpha: float = 0.5,
):
    """Build the :class:`ScenarioConfig` for one round-closure scheme.

    All three share the same churn (``dropout``) and latency distribution
    (log-normal, median 1 s, with a 15 % heavy straggler tail), so the
    schemes differ only in *when the server closes the round*:

    * ``"sync-full"`` waits for every surviving client (round time = slowest
      survivor — the straggler tail dominates);
    * ``"sync-deadline"`` cuts stragglers at ``deadline`` simulated seconds;
    * ``"buffered-async"`` aggregates the first ~60 % of the cohort to
      arrive and folds late updates into later rounds, down-weighted by
      ``(1 + staleness) ** -alpha``.
    """
    from ..federated.scenario import LogNormalLatency, RandomDropout, ScenarioConfig

    availability = RandomDropout(dropout) if dropout > 0 else None
    latency = LogNormalLatency(
        median=1.0, sigma=0.5, straggler_fraction=0.15, straggler_multiplier=8.0
    )
    if scheme == "sync-full":
        return ScenarioConfig(availability=availability, latency=latency)
    if scheme == "sync-deadline":
        return ScenarioConfig(availability=availability, latency=latency, deadline=deadline)
    if scheme == "buffered-async":
        return ScenarioConfig(
            availability=availability,
            latency=latency,
            aggregation="buffered-async",
            buffer_size=max(1, int(round(0.6 * cohort))),
            staleness_alpha=staleness_alpha,
        )
    raise KeyError(f"unknown scenario scheme {scheme!r}; choose from {SCENARIO_SCHEMES}")


def run_scenario_comparison(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 5,
    dropout: float = 0.2,
) -> list[ScenarioComparisonRow]:
    """Compare the three round-closure schemes under client churn.

    ``dropout`` is the per-(client, round) churn probability — the ISSUE's
    operating band is 10–30 %.  Client selection, training RNGs, and the
    churn/latency draws are all shared across schemes (pure functions of
    ``(seed, client_id, round)``), so the rows differ only in round-closure
    policy.
    """
    from dataclasses import replace as dc_replace

    rows: list[ScenarioComparisonRow] = []
    for scheme in SCENARIO_SCHEMES:
        dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
        model_fn = model_fn_for(dataset)
        cohort = params.clients_per_round or dataset.num_clients
        config = dc_replace(
            params.simulation_config(seed=seed, rounds=rounds),
            scenario=make_scenario(scheme, dropout, cohort),
        )
        result = FederatedSimulation(dataset, model_fn, config).run()
        durations = [r.simulated_duration for r in result.rounds]
        rows.append(
            ScenarioComparisonRow(
                scheme=scheme,
                final_accuracy=result.accuracy_curve()[-1],
                mean_round_duration=float(np.mean(durations)),
                mean_aggregated=float(np.mean([r.num_aggregated for r in result.rounds])),
                total_stale=int(sum(r.num_stale for r in result.rounds)),
                total_stragglers=int(sum(r.num_stragglers for r in result.rounds)),
            )
        )
    return rows


def render_scenario_comparison(rows: list[ScenarioComparisonRow]) -> str:
    header = [
        "scheme",
        "final accuracy",
        "mean round secs",
        "mean merged/round",
        "stale",
        "stragglers",
    ]
    body = [
        [
            row.scheme,
            round(row.final_accuracy, 3),
            round(row.mean_round_duration, 2),
            round(row.mean_aggregated, 1),
            row.total_stale,
            row.total_stragglers,
        ]
        for row in rows
    ]
    return format_table(header, body)


def run_relink_robustness(
    dataset_name: str = "motionsense",
    scale: str = "ci",
    seed: int = 0,
    rounds: int = 2,
):
    """The §6.4 re-linking adversary against actual mixed updates.

    Runs one MixNN round, builds the adversary's reference models from the
    broadcast, and measures how often a per-layer classification of the mixed
    pieces recovers each piece's true source attribute.
    """
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=MixNNDefense(rng=rng_from_seed(stable_seed(seed, "mixnn-proxy"))),
    )
    result = simulation.run()
    mixed_updates = result.received_updates[-1]
    # The broadcast those updates refined is the previous round's aggregate;
    # recover it the way the adversary would: re-aggregate the prior round.
    from ..federated.update import aggregate_updates

    previous = result.received_updates[-2] if rounds >= 2 else mixed_updates
    broadcast_state = aggregate_updates(previous)
    references = build_reference_states(
        broadcast_state,
        dataset.background_clients(),
        model_fn,
        params.local_config(),
        rng_from_seed(stable_seed(seed, "relink")),
        attack_epochs=params.attack_epochs,
    )
    truth = {c.client_id: c.attribute for c in dataset.clients()}
    attack = RelinkAttack(references, broadcast_state)
    report = attack.run(mixed_updates, true_attributes=truth)
    return report, dataset
