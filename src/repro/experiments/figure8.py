"""Figure 8 — inference accuracy vs background-knowledge ratio.

Paper claims (§6.3): a reference model built from more background knowledge
is more representative, so inference accuracy grows with the ratio for both
classical FL and noisy gradient; MixNN stays protected "regardless the
quantity of background knowledge".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import SCHEMES, run_scheme
from .reporting import format_table

__all__ = ["Figure8Result", "run_figure8", "shape_checks", "DEFAULT_RATIOS"]

DEFAULT_RATIOS: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


@dataclass
class Figure8Result:
    """Final inference accuracy per scheme per background ratio."""

    dataset: str
    ratios: tuple[float, ...]
    accuracy: dict[str, list[float]]  # scheme -> accuracy per ratio
    random_guess: float

    def render(self) -> str:
        lines = [
            f"Figure 8 ({self.dataset}): ∇Sim accuracy vs background-knowledge ratio "
            f"(random guess = {self.random_guess:.2f})"
        ]
        header = ["ratio"] + list(self.accuracy)
        rows = []
        for i, ratio in enumerate(self.ratios):
            rows.append([ratio] + [round(self.accuracy[scheme][i], 3) for scheme in self.accuracy])
        lines.append(format_table(header, rows))
        return "\n".join(lines)


def run_figure8(
    dataset_name: str,
    scale: str = "ci",
    seed: int = 0,
    rounds: int | None = 4,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
) -> Figure8Result:
    """Regenerate one panel of Figure 8 (active ∇Sim, ratio sweep)."""
    accuracy: dict[str, list[float]] = {scheme: [] for scheme in SCHEMES}
    guess = 0.5
    for ratio in ratios:
        for scheme in SCHEMES:
            result, dataset, _ = run_scheme(
                dataset_name,
                scheme,
                scale=scale,
                seed=seed,
                rounds=rounds,
                attack_mode="active",
                background_ratio=ratio,
            )
            # inference_curve yields (round_index, value) pairs; the sweep
            # scores the final measured round's value.
            accuracy[scheme].append(result.inference_curve()[-1][1])
            guess = dataset.random_guess_accuracy
    return Figure8Result(dataset=dataset_name, ratios=tuple(ratios), accuracy=accuracy, random_guess=guess)


def shape_checks(result: Figure8Result) -> dict[str, bool]:
    fl = np.array(result.accuracy["classical-fl"])
    mixnn = np.array(result.accuracy["mixnn"])
    guess = result.random_guess
    return {
        # More knowledge should not hurt the FL adversary (weak monotonicity).
        "fl_grows_or_saturates": bool(fl[-1] >= fl[0] - 0.05),
        "fl_leaks_at_full_knowledge": bool(fl[-1] >= guess + 0.25),
        "mixnn_flat_near_guess": bool(np.all(np.abs(mixnn - guess) <= 0.2)),
    }
