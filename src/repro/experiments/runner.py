"""Command-line experiment runner.

Regenerate any table or figure of the paper::

    python -m repro.experiments.runner figure5 --dataset cifar10
    python -m repro.experiments.runner figure7 --dataset all
    python -m repro.experiments.runner system
    python -m repro.experiments.runner all --dataset all

Each command prints the measured rows/series next to the paper's claims and
the qualitative shape checks.
"""

from __future__ import annotations

import argparse
import sys

from ..data import DATASETS
from . import figure5, figure6, figure7, figure8, figure9, system_perf
from .reporting import PAPER_CLAIMS

__all__ = ["main", "run_experiment"]

EXPERIMENTS = ("figure5", "figure6", "figure7", "figure8", "figure9", "system")


def _render_checks(checks: dict[str, bool]) -> str:
    return "\n".join(f"  [{'ok' if passed else 'FAIL'}] {name}" for name, passed in checks.items())


def run_experiment(name: str, dataset: str, scale: str, seed: int) -> str:
    """Run one experiment for one dataset; return the printed report."""
    lines = [f"== {name} / {dataset} (scale={scale}, seed={seed}) =="]
    if name in PAPER_CLAIMS:
        lines.append(f"paper: {PAPER_CLAIMS[name]['statement']}")
    if name == "figure5":
        result = figure5.run_figure5(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure5.shape_checks(result))]
    elif name == "figure6":
        result = figure6.run_figure6(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure6.shape_checks(result))]
    elif name == "figure7":
        result = figure7.run_figure7(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure7.shape_checks(result))]
    elif name == "figure8":
        result = figure8.run_figure8(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure8.shape_checks(result))]
    elif name == "figure9":
        result = figure9.run_figure9(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure9.shape_checks(result))]
    elif name == "system":
        results = system_perf.run_system_perf(seed=seed)
        lines.append(system_perf.render(results))
    else:
        raise KeyError(f"unknown experiment {name!r}; choose from {EXPERIMENTS} or 'all'")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    # Validating against the registry here turns a typo like "cifr10" into an
    # immediate argparse error instead of a deep KeyError in build_experiment.
    parser.add_argument(
        "--dataset",
        default="motionsense",
        choices=tuple(sorted(DATASETS)) + ("all",),
        help="dataset name or 'all'",
    )
    parser.add_argument("--scale", default="ci", choices=("ci", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    experiments = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    datasets = tuple(DATASETS) if args.dataset == "all" else (args.dataset,)
    for experiment in experiments:
        if experiment == "system":
            print(run_experiment(experiment, "-", args.scale, args.seed))
            print()
            continue
        for dataset in datasets:
            print(run_experiment(experiment, dataset, args.scale, args.seed))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
