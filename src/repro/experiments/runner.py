"""Command-line experiment runner.

Regenerate any table or figure of the paper::

    python -m repro.experiments.runner figure5 --dataset cifar10
    python -m repro.experiments.runner figure7 --dataset all
    python -m repro.experiments.runner system
    python -m repro.experiments.runner all --dataset all

Each command prints the measured rows/series next to the paper's claims and
the qualitative shape checks.

Beyond the paper, the scenario-engine studies run on the virtual-time round
engine::

    python -m repro.experiments.runner scenario --dropout 0.3 --deadline 2.0
    python -m repro.experiments.runner scenario --scheme buffered-async --buffer-fraction 0.5
    python -m repro.experiments.runner frontier --rounds 5
    python -m repro.experiments.runner dirichlet-churn --alphas 10,0.3
    python -m repro.experiments.runner chaos --proxy-crash-rates 0,0.05,0.2 --quorum 0.7
    python -m repro.experiments.runner byzantine --attack sign-flip --attacker-fractions 0,0.1,0.3
    python -m repro.experiments.runner population --population-size 1000000 --cohort 10000

All scenario knobs (churn probability, latency shape, aggregation scheme,
deadline, buffer fraction) are validated at argparse time — a bad value dies
with a usage error before any training starts, exactly like ``--dataset``.
"""

from __future__ import annotations

import argparse
import sys

from ..data import DATASETS
from . import figure5, figure6, figure7, figure8, figure9, system_perf
from .reporting import PAPER_CLAIMS

__all__ = ["main", "run_experiment", "run_scenario_experiment"]

EXPERIMENTS = ("figure5", "figure6", "figure7", "figure8", "figure9", "system")
#: virtual-time scenario studies (not part of ``all``, which regenerates the
#: paper's figures only)
SCENARIO_EXPERIMENTS = (
    "scenario",
    "frontier",
    "dirichlet-churn",
    "chaos",
    "byzantine",
    "population",
    "sharded",
    "cohort",
)


def _render_checks(checks: dict[str, bool]) -> str:
    return "\n".join(f"  [{'ok' if passed else 'FAIL'}] {name}" for name, passed in checks.items())


def run_experiment(name: str, dataset: str, scale: str, seed: int) -> str:
    """Run one experiment for one dataset; return the printed report."""
    lines = [f"== {name} / {dataset} (scale={scale}, seed={seed}) =="]
    if name in PAPER_CLAIMS:
        lines.append(f"paper: {PAPER_CLAIMS[name]['statement']}")
    if name == "figure5":
        result = figure5.run_figure5(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure5.shape_checks(result))]
    elif name == "figure6":
        result = figure6.run_figure6(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure6.shape_checks(result))]
    elif name == "figure7":
        result = figure7.run_figure7(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure7.shape_checks(result))]
    elif name == "figure8":
        result = figure8.run_figure8(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure8.shape_checks(result))]
    elif name == "figure9":
        result = figure9.run_figure9(dataset, scale=scale, seed=seed)
        lines += [result.render(), _render_checks(figure9.shape_checks(result))]
    elif name == "system":
        results = system_perf.run_system_perf(seed=seed)
        lines.append(system_perf.render(results))
    else:
        raise KeyError(f"unknown experiment {name!r}; choose from {EXPERIMENTS} or 'all'")
    return "\n".join(lines)


def run_scenario_experiment(name: str, args: argparse.Namespace) -> str:
    """Run one virtual-time scenario study; return the printed report."""
    from . import extensions

    if name == "population":
        # runs on its own synthetic population, not one of the four datasets
        row = extensions.run_population_study(
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 1,
            population_size=args.population_size,
            clients_per_round=args.cohort,
            alpha=args.alpha,
        )
        return "\n".join(
            [
                f"== population (scale={args.scale}, seed={args.seed}) ==",
                extensions.render_population(row),
            ]
        )
    if name == "cohort":
        # runs on its own synthetic population, not one of the four datasets
        rows = extensions.run_cohort_study(
            seed=args.seed,
            cohort_sizes=args.cohort_sizes,
            local_epochs=args.local_epochs,
        )
        return "\n".join(
            [
                f"== cohort (seed={args.seed}, local_epochs={args.local_epochs}) ==",
                extensions.render_cohort(rows),
            ]
        )
    lines = [
        f"== {name} / {args.dataset} (scale={args.scale}, seed={args.seed}, "
        f"dropout={args.dropout}) =="
    ]
    if name == "scenario":
        schemes = (
            extensions.SCENARIO_SCHEMES if args.scheme == "all" else (args.scheme,)
        )
        rows = extensions.run_scenario_comparison(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 5,
            dropout=args.dropout,
            deadline=args.deadline,
            buffer_fraction=args.buffer_fraction,
            staleness_alpha=args.staleness_alpha,
            latency_median=args.latency_median,
            straggler_fraction=args.straggler_fraction,
            schemes=schemes,
        )
        lines.append(extensions.render_scenario_comparison(rows))
    elif name == "frontier":
        rows = extensions.run_deadline_throughput_frontier(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 5,
            dropout=args.dropout,
            deadlines=args.deadlines,
            buffer_fractions=args.buffer_fractions,
            staleness_alpha=args.staleness_alpha,
            latency_median=args.latency_median,
            straggler_fraction=args.straggler_fraction,
        )
        lines.append(extensions.render_frontier(rows))
    elif name == "dirichlet-churn":
        cells = extensions.run_dirichlet_churn_matrix(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 4,
            alphas=args.alphas,
            dropout=args.dropout,
        )
        lines.append(extensions.render_dirichlet_churn_matrix(cells))
    elif name == "chaos":
        rows = extensions.run_chaos(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 4,
            dropout=args.dropout,
            proxy_crash_rates=args.proxy_crash_rates,
            frame_corruption_rate=args.frame_corruption_rate,
            client_crash_rate=args.client_crash_rate,
            quorum_fraction=args.quorum,
            max_attempts=args.max_attempts,
            hop_timeout=args.hop_timeout,
            latency_median=args.latency_median,
        )
        lines.append(extensions.render_chaos(rows))
    elif name == "sharded":
        rows = extensions.run_sharded_comparison(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 3,
            num_shards=args.num_shards,
            shard_crash_rates=args.shard_crash_rates,
            clients_per_round=args.clients,
        )
        lines.append(extensions.render_sharded(rows))
    elif name == "byzantine":
        rows = extensions.run_byzantine_comparison(
            args.dataset,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds if args.rounds is not None else 3,
            attack=args.attack,
            attack_scale=args.attack_scale,
            fractions=args.attacker_fractions,
            rules=args.rules,
            defenses=args.byzantine_defenses,
            replay_rate=args.replay_rate,
            dropout=args.dropout,
        )
        lines.append(extensions.render_byzantine_comparison(rows))
    else:
        raise KeyError(
            f"unknown scenario experiment {name!r}; choose from {SCENARIO_EXPERIMENTS}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Argparse-time validation (bad values die with a usage error, not a
# traceback deep inside a training loop)
# ----------------------------------------------------------------------
def _probability(text: str) -> float:
    value = float(text)
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(f"must be a probability in [0, 1), got {text}")
    return value


def _fraction(text: str) -> float:
    value = float(text)
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be a fraction in (0, 1], got {text}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0.0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _positive_int_list(label: str):
    def parse(text: str) -> tuple[int, ...]:
        try:
            values = tuple(int(part) for part in text.split(",") if part.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")
        if not values or any(value < 1 for value in values):
            raise argparse.ArgumentTypeError(f"{label} must be >= 1, got {text!r}")
        return values

    return parse


def _positive_list(label: str):
    def parse(text: str) -> tuple[float, ...]:
        try:
            values = tuple(float(part) for part in text.split(",") if part.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated floats, got {text!r}")
        if not values or any(value <= 0 for value in values):
            raise argparse.ArgumentTypeError(f"{label} must be > 0, got {text!r}")
        return values

    return parse


def _probability_list(label: str):
    def parse(text: str) -> tuple[float, ...]:
        try:
            values = tuple(float(part) for part in text.split(",") if part.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated floats, got {text!r}")
        if not values or any(not 0.0 <= value < 1.0 for value in values):
            raise argparse.ArgumentTypeError(
                f"{label} must be probabilities in [0, 1), got {text!r}"
            )
        return values

    return parse


def _fraction_list(label: str):
    def parse(text: str) -> tuple[float, ...]:
        values = _positive_list(label)(text)
        if any(value > 1.0 for value in values):
            raise argparse.ArgumentTypeError(f"{label} must be in (0, 1], got {text!r}")
        return values

    return parse


def _choice_list(label: str, allowed: tuple[str, ...]):
    def parse(text: str) -> tuple[str, ...]:
        values = tuple(part.strip() for part in text.split(",") if part.strip())
        if not values or any(value not in allowed for value in values):
            raise argparse.ArgumentTypeError(
                f"{label} must be comma-separated values from {allowed}, got {text!r}"
            )
        return values

    return parse


def main(argv: list[str] | None = None) -> int:
    from .extensions import SCENARIO_SCHEMES

    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment", choices=EXPERIMENTS + SCENARIO_EXPERIMENTS + ("all",))
    # Validating against the registry here turns a typo like "cifr10" into an
    # immediate argparse error instead of a deep KeyError in build_experiment.
    parser.add_argument(
        "--dataset",
        default="motionsense",
        choices=tuple(sorted(DATASETS)) + ("all",),
        help="dataset name or 'all'",
    )
    parser.add_argument("--scale", default="ci", choices=("ci", "paper"))
    parser.add_argument("--seed", type=int, default=0)

    from .extensions import FRONTIER_BUFFER_FRACTIONS, FRONTIER_DEADLINES

    scenario = parser.add_argument_group(
        "scenario knobs", "consumed by the scenario / frontier / dirichlet-churn commands"
    )
    scenario.add_argument(
        "--rounds",
        type=_positive_int,
        default=None,
        help="learning rounds, all scenario commands (default per command)",
    )
    scenario.add_argument(
        "--dropout",
        type=_probability,
        default=0.2,
        help="per-(client, round) churn probability, all scenario commands",
    )
    scenario.add_argument(
        "--scheme",
        default="all",
        choices=SCENARIO_SCHEMES + ("all",),
        help="round-closure scheme(s), scenario command",
    )
    scenario.add_argument(
        "--deadline",
        type=_positive_float,
        default=2.5,
        help="sync-deadline round cutoff in simulated seconds, scenario command",
    )
    scenario.add_argument(
        "--buffer-fraction",
        type=_fraction,
        default=0.6,
        help="buffered-async flush threshold as a cohort fraction, scenario command",
    )
    scenario.add_argument(
        "--deadlines",
        type=_positive_list("deadlines"),
        default=FRONTIER_DEADLINES,
        help="comma-separated deadline sweep in seconds, frontier command",
    )
    scenario.add_argument(
        "--buffer-fractions",
        type=_fraction_list("buffer fractions"),
        default=FRONTIER_BUFFER_FRACTIONS,
        help="comma-separated buffer-fraction sweep, frontier command",
    )
    scenario.add_argument(
        "--staleness-alpha",
        type=_nonnegative_float,
        default=0.5,
        help="polynomial staleness discount exponent, scenario/frontier commands",
    )
    scenario.add_argument(
        "--latency-median",
        type=_positive_float,
        default=1.0,
        help="median simulated round-trip seconds, scenario/frontier commands",
    )
    scenario.add_argument(
        "--straggler-fraction",
        type=_probability,
        default=0.15,
        help="heavy straggler tail fraction, scenario/frontier commands",
    )
    scenario.add_argument(
        "--alphas",
        type=_positive_list("Dirichlet alphas"),
        default=(10.0, 0.3),
        help="comma-separated Dirichlet alphas, dirichlet-churn command (IID-ish first)",
    )

    from .extensions import CHAOS_PROXY_CRASH_RATES

    chaos = parser.add_argument_group(
        "fault knobs", "consumed by the chaos command (seeded fault injection)"
    )
    chaos.add_argument(
        "--proxy-crash-rates",
        type=_probability_list("proxy crash rates"),
        default=CHAOS_PROXY_CRASH_RATES,
        help="comma-separated per-round proxy-crash probability sweep",
    )
    chaos.add_argument(
        "--frame-corruption-rate",
        type=_probability,
        default=0.05,
        help="per-(client, round, attempt) RW01 frame corruption probability",
    )
    chaos.add_argument(
        "--client-crash-rate",
        type=_probability,
        default=0.0,
        help="per-(client, round) mid-training crash probability",
    )
    chaos.add_argument(
        "--quorum",
        type=_fraction,
        default=0.7,
        help="surviving-cohort fraction at which a degraded round may close",
    )
    chaos.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=4,
        help="transmission/retry attempt cap before an update is discarded",
    )
    chaos.add_argument(
        "--hop-timeout",
        type=_positive_float,
        default=None,
        help="per-hop timeout in simulated seconds (default: no timeout)",
    )

    from ..federated.adversary import ATTACK_KINDS
    from .extensions import BYZANTINE_FRACTIONS, BYZANTINE_RULES

    byzantine = parser.add_argument_group(
        "adversary knobs", "consumed by the byzantine command (seeded poisoning adversaries)"
    )
    byzantine.add_argument(
        "--attack",
        default="sign-flip",
        choices=ATTACK_KINDS,
        help="poisoning attack every active attacker applies",
    )
    byzantine.add_argument(
        "--attack-scale",
        type=_positive_float,
        default=100.0,
        help="sign-flip / scaling magnitude of the poisoned delta",
    )
    byzantine.add_argument(
        "--attacker-fractions",
        type=_probability_list("attacker fractions"),
        default=BYZANTINE_FRACTIONS,
        help="comma-separated per-(client, round) Byzantine probability sweep "
        "(include 0 for the clean baseline rows)",
    )
    byzantine.add_argument(
        "--rules",
        type=_choice_list("rules", BYZANTINE_RULES),
        default=BYZANTINE_RULES,
        help="comma-separated aggregation policies to score",
    )
    byzantine.add_argument(
        "--byzantine-defenses",
        type=_choice_list("byzantine defenses", ("none", "mixnn")),
        default=("none", "mixnn"),
        help="comma-separated transport defenses to cross with the rules",
    )
    byzantine.add_argument(
        "--replay-rate",
        type=_probability,
        default=0.0,
        help="per-(attacker, round) ciphertext replay probability (MixNN path)",
    )
    from .extensions import SHARDED_CRASH_RATES, SHARDED_SHARD_COUNTS

    sharded = parser.add_argument_group(
        "sharding knobs",
        "consumed by the sharded command (hierarchical aggregation study)",
    )
    sharded.add_argument(
        "--num-shards",
        type=_positive_int_list("shard counts"),
        default=SHARDED_SHARD_COUNTS,
        help="comma-separated leaf-shard counts to sweep",
    )
    sharded.add_argument(
        "--shard-crash-rates",
        type=_probability_list("shard crash rates"),
        default=SHARDED_CRASH_RATES,
        help="comma-separated per-(shard, round, attempt) crash probabilities "
        "(include 0 for the fault-free rows)",
    )
    sharded.add_argument(
        "--clients",
        type=_positive_int,
        default=None,
        help="clients selected per round (default: per --scale preset); must "
        "be >= the largest shard count",
    )

    population = parser.add_argument_group(
        "population knobs",
        "consumed by the population command (synthetic million-client study; "
        "ignores --dataset)",
    )
    population.add_argument(
        "--population-size",
        type=_positive_int,
        default=None,
        help="synthetic client population size (default: per --scale preset)",
    )
    population.add_argument(
        "--cohort",
        type=_positive_int,
        default=None,
        help="clients selected per round (default: per --scale preset)",
    )
    population.add_argument(
        "--alpha",
        type=_positive_float,
        default=None,
        help="Dirichlet concentration for shard label mixtures (default: uniform)",
    )

    from .extensions import COHORT_SIZES

    cohort = parser.add_argument_group(
        "cohort knobs",
        "consumed by the cohort command (serial vs cohort-batched training "
        "study on a synthetic population; ignores --dataset)",
    )
    cohort.add_argument(
        "--cohort-sizes",
        type=_positive_int_list("cohort sizes"),
        default=COHORT_SIZES,
        help="comma-separated cohort sizes (clients per stacked pass) to sweep",
    )
    cohort.add_argument(
        "--local-epochs",
        type=_positive_int,
        default=1,
        help="local epochs per client in the timed comparison",
    )

    args = parser.parse_args(argv)

    if args.experiment in SCENARIO_EXPERIMENTS:
        if args.dataset == "all":
            # the paper-figure path expands "all"; the scenario studies run
            # one dataset — reject here so it stays a usage error, not a
            # KeyError deep inside build_experiment
            parser.error(
                f"{args.experiment} runs a single dataset; pass --dataset "
                f"{'|'.join(sorted(DATASETS))}"
            )
        print(run_scenario_experiment(args.experiment, args))
        return 0

    experiments = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    datasets = tuple(DATASETS) if args.dataset == "all" else (args.dataset,)
    for experiment in experiments:
        if experiment == "system":
            print(run_experiment(experiment, "-", args.scale, args.seed))
            print()
            continue
        for dataset in datasets:
            print(run_experiment(experiment, dataset, args.scale, args.seed))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
