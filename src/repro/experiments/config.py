"""Experiment parameterization.

Carries the paper's per-dataset methodology (§6.1.4) and the CI-scale
defaults this reproduction actually runs (DESIGN.md §5).  The structural
parameters — participant counts, learning rounds, local epochs, aggregation
fan-in, preference skew — follow the paper; input dimensionality and local
sample counts are scaled down so a full figure regenerates in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..data import make_dataset
from ..data.federated import FederatedDataset
from ..federated.client import LocalTrainingConfig
from ..federated.simulation import SimulationConfig

__all__ = ["ExperimentParams", "PAPER_PARAMS", "CI_PARAMS", "params_for", "build_experiment"]


@dataclass(frozen=True)
class ExperimentParams:
    """Everything needed to set up one dataset's experiment."""

    dataset: str
    rounds: int
    local_epochs: int
    batch_size: int
    clients_per_round: int | None
    learning_rate: float = 1e-3
    #: σ of the noisy-gradient baseline.  The paper adds N(0, 1) to TF-scale
    #: weights; at our model scale the calibrated value reproduces the
    #: reported ≈10-point utility drop (see EXPERIMENTS.md).
    noise_sigma: float = 0.05
    #: MixNN list size k; the proxy buffers k updates before emitting (§4.3).
    mix_k: int = 4
    #: round whose per-client accuracies Figure 6 plots
    fig6_round: int = 6
    #: reference-model training budget (paper: 5 learning rounds)
    attack_epochs: int = 5

    def local_config(self) -> LocalTrainingConfig:
        return LocalTrainingConfig(
            local_epochs=self.local_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
        )

    def simulation_config(self, seed: int = 0, rounds: int | None = None) -> SimulationConfig:
        return SimulationConfig(
            rounds=rounds if rounds is not None else self.rounds,
            local=self.local_config(),
            clients_per_round=self.clients_per_round,
            seed=seed,
        )


#: The paper's §6.1.4 methodology, verbatim.
PAPER_PARAMS: dict[str, ExperimentParams] = {
    "cifar10": ExperimentParams(
        dataset="cifar10", rounds=10, local_epochs=3, batch_size=32, clients_per_round=16
    ),
    "motionsense": ExperimentParams(
        dataset="motionsense", rounds=20, local_epochs=2, batch_size=256, clients_per_round=20
    ),
    "mobiact": ExperimentParams(
        dataset="mobiact", rounds=20, local_epochs=3, batch_size=64, clients_per_round=40
    ),
    "lfw": ExperimentParams(
        dataset="lfw", rounds=30, local_epochs=2, batch_size=16, clients_per_round=20
    ),
}

#: CI-scale: identical structure, fewer rounds so full figures run in seconds.
CI_PARAMS: dict[str, ExperimentParams] = {
    "cifar10": replace(PAPER_PARAMS["cifar10"], rounds=8, fig6_round=6, attack_epochs=3),
    "motionsense": replace(PAPER_PARAMS["motionsense"], rounds=8, batch_size=64, fig6_round=6, attack_epochs=3),
    # MobiAct converges slowest at CI scale; its σ is calibrated up so the
    # noisy-gradient baseline shows the paper's utility penalty there too.
    "mobiact": replace(
        PAPER_PARAMS["mobiact"],
        rounds=8,
        clients_per_round=24,
        fig6_round=6,
        attack_epochs=3,
        noise_sigma=0.12,
    ),
    "lfw": replace(PAPER_PARAMS["lfw"], rounds=8, fig6_round=6, attack_epochs=3),
}


def params_for(dataset: str, scale: str = "ci") -> ExperimentParams:
    """Look up the parameter set for a dataset at a given scale."""
    table = {"ci": CI_PARAMS, "paper": PAPER_PARAMS}.get(scale)
    if table is None:
        raise KeyError(f"unknown scale {scale!r}; choose 'ci' or 'paper'")
    if dataset not in table:
        raise KeyError(f"unknown dataset {dataset!r}; choose from {sorted(table)}")
    return table[dataset]


def build_experiment(
    dataset_name: str,
    scale: str = "ci",
    seed: int = 0,
) -> tuple[FederatedDataset, ExperimentParams]:
    """Instantiate the dataset simulator plus its parameter set."""
    params = params_for(dataset_name, scale)
    return make_dataset(dataset_name, seed=seed), params
