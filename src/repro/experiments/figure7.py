"""Figure 7 — active ∇Sim inference accuracy vs learning round.

Paper claims (§6.3): without protection the server infers the sensitive
attribute with near-perfect accuracy (1.00 after 4 rounds on CIFAR10; ~0.80,
~0.94, ~0.66 after 5 rounds on MotionSense, MobiAct, LFW); MixNN stays at the
random guess (0.33 on CIFAR10's 3-way preference, ~0.5 elsewhere); noisy
gradient leaks less than classical FL but much more than MixNN.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import SCHEMES, run_scheme
from .reporting import format_series, format_table

__all__ = ["Figure7Result", "run_figure7", "shape_checks"]


@dataclass
class Figure7Result:
    """Cumulative inference-accuracy curves per scheme.

    ``rounds`` carries the actual measured round indices (0-based), so the
    rendered table stays aligned with the learning rounds even when the
    attack produces no measurement for some early rounds.
    """

    dataset: str
    curves: dict[str, list[float]]
    random_guess: float
    rounds: list[int] | None = None

    def render(self) -> str:
        lines = [
            f"Figure 7 ({self.dataset}): active ∇Sim inference accuracy per round "
            f"(random guess = {self.random_guess:.2f})"
        ]
        header = ["round"] + list(self.curves)
        first = next(iter(self.curves.values()))
        round_indices = self.rounds if self.rounds is not None else list(range(len(first)))
        rows = []
        for i, round_index in enumerate(round_indices):
            rows.append(
                [round_index + 1] + [round(self.curves[scheme][i], 3) for scheme in self.curves]
            )
        lines.append(format_table(header, rows))
        for scheme, curve in self.curves.items():
            lines.append(format_series(scheme, curve))
        return "\n".join(lines)


def run_figure7(
    dataset_name: str,
    scale: str = "ci",
    seed: int = 0,
    rounds: int | None = None,
    attack_mode: str = "active",
) -> Figure7Result:
    """Regenerate one panel of Figure 7 (the paper's active worst case)."""
    curves: dict[str, list[float]] = {}
    measured_rounds: list[int] | None = None
    guess = 0.5
    for scheme in SCHEMES:
        result, dataset, _ = run_scheme(
            dataset_name, scheme, scale=scale, seed=seed, rounds=rounds, attack_mode=attack_mode
        )
        pairs = result.inference_curve()
        curves[scheme] = [value for _, value in pairs]
        scheme_rounds = [round_index for round_index, _ in pairs]
        if measured_rounds is not None and scheme_rounds != measured_rounds:
            raise RuntimeError(
                f"scheme {scheme!r} measured rounds {scheme_rounds} but earlier "
                f"schemes measured {measured_rounds}; curves are not comparable"
            )
        measured_rounds = scheme_rounds
        guess = dataset.random_guess_accuracy
    return Figure7Result(
        dataset=dataset_name, curves=curves, random_guess=guess, rounds=measured_rounds
    )


def shape_checks(result: Figure7Result) -> dict[str, bool]:
    from .reporting import PAPER_CLAIMS

    fl = np.array(result.curves["classical-fl"])
    mixnn = np.array(result.curves["mixnn"])
    noisy = np.array(result.curves["noisy-gradient"])
    guess = result.random_guess
    # LFW is the paper's weakest leak (0.66) while CIFAR10 reaches 1.00; the
    # leak threshold follows the paper's per-dataset reference with slack.
    expected_fl = PAPER_CLAIMS["figure7"]["classical_fl"].get(result.dataset, 0.8)
    return {
        "fl_leaks_strongly": bool(fl[-1] >= max(guess + 0.1, expected_fl - 0.2)),
        "mixnn_near_random_guess": bool(abs(mixnn.mean() - guess) <= 0.15),
        "noisy_between": bool(guess + 0.05 <= noisy.mean() <= fl.mean() + 1e-9),
        "ordering_fl_ge_noisy_ge_mixnn": bool(fl.mean() >= noisy.mean() >= mixnn.mean() - 0.05),
    }
