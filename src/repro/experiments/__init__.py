"""``repro.experiments`` — harness regenerating every table and figure."""
