"""Paper-vs-measured reporting.

Holds the reference numbers quoted in the paper's prose and renders ASCII
tables so every benchmark prints the same rows/series the paper reports,
side by side with the measured values.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["PAPER_CLAIMS", "format_table", "format_series"]

#: Claims extracted from §6 of the paper, used by EXPERIMENTS.md and the
#: benchmark printers.  Values are the paper's, on the real datasets.
PAPER_CLAIMS: dict[str, dict] = {
    "figure5": {
        "statement": "MixNN matches classical FL accuracy; noisy gradient is ~10 points lower and converges slower",
        "noisy_gap_points": 10,
    },
    "figure6": {
        "statement": "per-participant accuracy at round 6: noisy 0.56 vs MixNN 0.68 on average",
        "noisy_mean": 0.56,
        "mixnn_mean": 0.68,
    },
    "figure7": {
        "statement": "active ∇Sim on classical FL: 1.00 (CIFAR10, 4 rounds), ~0.80 MotionSense, "
        "~0.94 MobiAct, ~0.66 LFW after 5 rounds; MixNN at random guess (0.33 CIFAR10, ~0.5 others)",
        "classical_fl": {"cifar10": 1.00, "motionsense": 0.80, "mobiact": 0.94, "lfw": 0.66},
        "mixnn": {"cifar10": 0.33, "motionsense": 0.50, "mobiact": 0.50, "lfw": 0.50},
    },
    "figure8": {
        "statement": "more background knowledge raises inference for classical FL and noisy gradient; "
        "MixNN stays near random guess at every ratio",
    },
    "figure9": {
        "statement": "every participant has at least a few neighbors with very close gradients",
    },
    "system": {
        "statement": "per-update cost 0.19 s / 26.9 MB (2conv+3fc) and 0.22 s / 51.3 MB (3conv+3fc); "
        "0.17 s decrypt + 0.02 s store; mixing 0.03 s",
        "two_conv": {"seconds": 0.19, "mb": 26.9},
        "three_conv": {"seconds": 0.22, "mb": 51.3},
        "mixing_seconds": 0.03,
    },
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an ASCII table with auto-sized columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], precision: int = 3) -> str:
    """One labelled number series, rounded."""
    rendered = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{rendered}]"
