"""Model architectures of the evaluation (§6.1.1).

* ``paper_cnn`` — "two convolutional layers and three fully connected
  layers", used for CIFAR10, MotionSense and MobiAct; a three-conv variant
  exists for the §6.5 system experiment.
* ``deepface_like`` — the LFW architecture: convolution, max-pooling,
  *locally connected* and fully connected layers, a scaled-down DeepFace.

Factories take an RNG and return a fresh model, the signature the federated
clients, the server and the attack all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.federated import FederatedDataset
from ..nn import (
    Conv2d,
    Flatten,
    Linear,
    LocallyConnected2d,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["paper_cnn", "deepface_like", "linear_probe", "ModelFactory", "model_fn_for"]


def paper_cnn(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    conv_layers: int = 2,
    base_channels: int = 8,
    hidden: tuple[int, int] = (64, 32),
) -> Module:
    """The 2-conv + 3-FC network (3-conv variant for §6.5)."""
    if conv_layers not in (2, 3):
        raise ValueError(f"the paper evaluates 2 or 3 conv layers, got {conv_layers}")
    channels_in, height, width = input_shape
    layers: list[Module] = []
    channels = channels_in
    out_channels = base_channels
    for _ in range(conv_layers):
        layers.append(Conv2d(channels, out_channels, kernel_size=3, padding=1, rng=rng))
        layers.append(ReLU())
        channels, out_channels = out_channels, out_channels * 2
    pool = 2 if height % 2 == 0 and width % 2 == 0 else 1
    if pool > 1:
        layers.append(MaxPool2d(pool))
        height, width = height // pool, width // pool
    layers.append(Flatten())
    flat = channels * height * width
    layers.append(Linear(flat, hidden[0], rng=rng))
    layers.append(ReLU())
    layers.append(Linear(hidden[0], hidden[1], rng=rng))
    layers.append(ReLU())
    layers.append(Linear(hidden[1], num_classes, rng=rng))
    return Sequential(*layers)


def deepface_like(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    conv_channels: int = 8,
    hidden: int = 32,
) -> Module:
    """Scaled-down DeepFace: conv → maxpool → locally connected → FC."""
    channels_in, height, width = input_shape
    if height % 2 or width % 2:
        raise ValueError(f"input spatial dims must be even, got {(height, width)}")
    after_pool = (height // 2, width // 2)
    lc_out = (after_pool[0] - 2, after_pool[1] - 2)  # 3×3 untied kernels
    return Sequential(
        Conv2d(channels_in, conv_channels, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        LocallyConnected2d(conv_channels, conv_channels, after_pool, kernel_size=3, rng=rng),
        ReLU(),
        Flatten(),
        Linear(conv_channels * lc_out[0] * lc_out[1], hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )


def linear_probe(
    input_shape: tuple[int, ...],
    num_classes: int,
    rng: np.random.Generator,
) -> Module:
    """Flatten + single linear layer, for flat-feature population datasets.

    Population-scale simulations trade model capacity for cohort size; a
    linear probe keeps each of the 10k-per-round local trainings cheap while
    still separating the Gaussian-prototype features of
    :class:`~repro.data.population.SyntheticPopulation`.
    """
    flat = int(np.prod(input_shape))
    return Sequential(Flatten(), Linear(flat, num_classes, rng=rng))


@dataclass(frozen=True)
class ModelFactory:
    """A picklable model factory: architecture name + constructor arguments.

    Same call signature as the closure factories it replaces (an RNG in, a
    fresh model out), but representable as plain data — so a factory can
    cross a process boundary.  The sharded data plane pickles it into its
    spawn workers, where each worker rebuilds identical model replicas.
    """

    architecture: str
    input_shape: tuple[int, ...]
    num_classes: int
    conv_layers: int = 2

    _BUILDERS = {
        "linear_probe": linear_probe,
        "deepface_like": deepface_like,
        "paper_cnn": paper_cnn,
    }

    def __post_init__(self) -> None:
        if self.architecture not in self._BUILDERS:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; choose from "
                f"{tuple(self._BUILDERS)}"
            )

    def __call__(self, rng: np.random.Generator) -> Module:
        if self.architecture == "paper_cnn":
            return paper_cnn(
                self.input_shape, self.num_classes, rng, conv_layers=self.conv_layers
            )
        builder = self._BUILDERS[self.architecture]
        return builder(self.input_shape, self.num_classes, rng)


def model_fn_for(
    dataset: FederatedDataset,
    conv_layers: int = 2,
) -> Callable[[np.random.Generator], Module]:
    """The paper's architecture choice for a given dataset."""
    if len(dataset.input_shape) == 1:
        return ModelFactory("linear_probe", tuple(dataset.input_shape), dataset.num_classes)
    if dataset.name == "lfw":
        return ModelFactory("deepface_like", tuple(dataset.input_shape), dataset.num_classes)
    return ModelFactory(
        "paper_cnn", tuple(dataset.input_shape), dataset.num_classes, conv_layers=conv_layers
    )
