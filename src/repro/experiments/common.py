"""Shared experiment plumbing: one entry point to run any (dataset, scheme).

Every figure in §6 compares the same three schemes — classical FL, MixNN and
the noisy-gradient baseline — over the same per-dataset methodology, so the
figure modules all call :func:`run_scheme` with different observation hooks.
"""

from __future__ import annotations

from ..attacks import GradSimAttack
from ..data.federated import FederatedDataset
from ..defenses import Defense, GaussianNoiseDefense, MixNNDefense, NoDefense
from ..federated import FederatedSimulation, SimulationResult
from ..utils.rng import rng_from_seed, stable_seed
from .config import ExperimentParams, build_experiment
from .models import model_fn_for

__all__ = ["SCHEMES", "make_defense", "run_scheme"]

#: Report names of the compared schemes, in the paper's plotting order.
SCHEMES: tuple[str, ...] = ("classical-fl", "mixnn", "noisy-gradient")


def make_defense(scheme: str, params: ExperimentParams, seed: int = 0) -> Defense:
    """Instantiate the defense for a scheme name."""
    if scheme == "classical-fl":
        return NoDefense()
    if scheme == "mixnn":
        return MixNNDefense(k=None, rng=rng_from_seed(stable_seed(seed, "mixnn-proxy")))
    if scheme == "noisy-gradient":
        return GaussianNoiseDefense(sigma=params.noise_sigma)
    raise KeyError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")


def run_scheme(
    dataset_name: str,
    scheme: str,
    scale: str = "ci",
    seed: int = 0,
    rounds: int | None = None,
    attack_mode: str | None = None,
    background_ratio: float = 1.0,
) -> tuple[SimulationResult, FederatedDataset, ExperimentParams]:
    """Run one full federated simulation for (dataset, scheme).

    ``attack_mode`` of ``None`` runs without an adversary (utility figures);
    ``"passive"`` / ``"active"`` attach a ∇Sim observer (privacy figures —
    the paper's Figures 7–8 use the active worst case).
    """
    dataset, params = build_experiment(dataset_name, scale=scale, seed=seed)
    model_fn = model_fn_for(dataset)
    attack = None
    if attack_mode is not None:
        attack = GradSimAttack(
            background_clients=dataset.background_clients(),
            model_fn=model_fn,
            config=params.local_config(),
            rng=rng_from_seed(stable_seed(seed, "attack")),
            mode=attack_mode,
            background_ratio=background_ratio,
            attack_epochs=params.attack_epochs,
        )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(seed=seed, rounds=rounds),
        defense=make_defense(scheme, params, seed=seed),
        attack=attack,
    )
    return simulation.run(), dataset, params
