"""§6.5 — system performance of the MixNN proxy.

The paper reports, for the CIFAR10 architecture (2 conv + 3 FC): 26.9 MB per
update inside the enclave, 0.19 s processing (0.17 s decryption + 0.02 s
storage) and 0.03 s for the mixing pass; a 3-conv variant raises this to
51.3 MB and 0.22 s.  Two measurements reproduce the table's *shape*:

* **simulated** — the enclave cost model at paper-scale update sizes, which
  regenerates the table's absolute structure (constant per-update cost,
  growth with model size, mixing ≪ decrypt);
* **measured** — wall-clock times of this implementation's actual
  decrypt/unpack/mix path at CI-scale model sizes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..federated.update import ModelUpdate
from ..mixnn.enclave import EnclaveCostModel, SGXEnclaveSim
from ..mixnn.proxy import MixNNProxy
from ..nn import Module
from ..utils.rng import rng_from_seed
from .models import paper_cnn
from .reporting import format_table

__all__ = ["SystemPerfRow", "simulate_paper_scale", "measure_real_pipeline", "run_system_perf"]

#: Paper-scale per-update payload sizes (§6.5).
PAPER_UPDATE_MB = {"2conv+3fc": 26.9, "3conv+3fc": 51.3}


@dataclass
class SystemPerfRow:
    """One architecture's per-update cost figures."""

    architecture: str
    update_mb: float
    process_seconds: float
    decrypt_seconds: float
    store_seconds: float
    mix_seconds: float

    def as_list(self) -> list:
        return [
            self.architecture,
            round(self.update_mb, 2),
            round(self.process_seconds, 4),
            round(self.decrypt_seconds, 4),
            round(self.store_seconds, 4),
            round(self.mix_seconds, 4),
        ]


def simulate_paper_scale(cost_model: EnclaveCostModel | None = None) -> list[SystemPerfRow]:
    """Evaluate the enclave cost model at the paper's update sizes."""
    cost_model = cost_model or EnclaveCostModel()
    rows = []
    for architecture, mb in PAPER_UPDATE_MB.items():
        nbytes = int(mb * 2**20)
        decrypt = cost_model.decrypt_cost(nbytes)
        store = cost_model.store_cost(nbytes)
        rows.append(
            SystemPerfRow(
                architecture=architecture,
                update_mb=mb,
                process_seconds=decrypt + store,
                decrypt_seconds=decrypt,
                store_seconds=store,
                mix_seconds=cost_model.mix_seconds_per_update,
            )
        )
    return rows


def _updates_for(model: Module, count: int, rng: np.random.Generator) -> list[ModelUpdate]:
    base = model.state_dict()
    out = []
    for sender in range(count):
        state = OrderedDict(
            (name, value + 0.01 * rng.standard_normal(value.shape).astype(np.float32))
            for name, value in base.items()
        )
        out.append(ModelUpdate(sender_id=sender, round_index=0, state=state))
    return out


def measure_real_pipeline(
    conv_layers: int,
    num_updates: int = 12,
    image_size: int = 8,
    seed: int = 0,
) -> SystemPerfRow:
    """Wall-clock the actual encrypt→decrypt→mix pipeline at CI scale."""
    rng = rng_from_seed(seed)
    model = paper_cnn((3, image_size, image_size), 10, rng, conv_layers=conv_layers)
    updates = _updates_for(model, num_updates, rng)
    proxy = MixNNProxy(
        enclave=SGXEnclaveSim(constant_time=False), k=num_updates, rng=rng
    )
    messages = [proxy.encrypt_for_proxy(update) for update in updates]
    payload_mb = sum(v.nbytes for v in updates[0].state.values()) / 2**20

    start = time.perf_counter()
    for message in messages:
        proxy.receive(message)
    decrypt_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    emitted = proxy.flush()
    mix_elapsed = time.perf_counter() - start
    assert len(emitted) == num_updates

    return SystemPerfRow(
        architecture=f"{conv_layers}conv+3fc (measured)",
        update_mb=payload_mb,
        process_seconds=(decrypt_elapsed + mix_elapsed) / num_updates,
        decrypt_seconds=decrypt_elapsed / num_updates,
        store_seconds=0.0,
        mix_seconds=mix_elapsed / num_updates,
    )


def run_system_perf(seed: int = 0) -> dict[str, list[SystemPerfRow]]:
    """Both views of the §6.5 table."""
    return {
        "simulated_paper_scale": simulate_paper_scale(),
        "measured_ci_scale": [
            measure_real_pipeline(2, seed=seed),
            measure_real_pipeline(3, seed=seed),
        ],
    }


def render(results: dict[str, list[SystemPerfRow]]) -> str:
    header = ["architecture", "MB/update", "process s", "decrypt s", "store s", "mix s"]
    lines = []
    for section, rows in results.items():
        lines.append(f"§6.5 system performance — {section}")
        lines.append(format_table(header, [row.as_list() for row in rows]))
    return "\n".join(lines)
