"""Figure 5 — main-task accuracy vs learning round for the three schemes.

Paper claim (§6.2): "the same level of accuracy is provided by a standard FL
scheme and MixNN", while "noisy gradient provides 10 % lower accuracy on
average and slows down the convergence".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .common import SCHEMES, run_scheme
from .reporting import format_series, format_table

__all__ = ["Figure5Result", "run_figure5", "shape_checks"]


@dataclass
class Figure5Result:
    """Accuracy curves per scheme plus the per-client records for Figure 6."""

    dataset: str
    curves: dict[str, list[float]]
    per_client: dict[str, dict[int, dict[int, float]]] = field(default_factory=dict)
    fig6_round: int = 6

    def rows(self) -> list[list]:
        out = []
        for round_index in range(len(next(iter(self.curves.values())))):
            out.append(
                [round_index + 1]
                + [round(self.curves[scheme][round_index], 3) for scheme in self.curves]
            )
        return out

    def render(self) -> str:
        header = ["round"] + list(self.curves)
        lines = [f"Figure 5 ({self.dataset}): model accuracy per learning round"]
        lines.append(format_table(header, self.rows()))
        for scheme, curve in self.curves.items():
            lines.append(format_series(scheme, curve))
        return "\n".join(lines)


def run_figure5(dataset_name: str, scale: str = "ci", seed: int = 0, rounds: int | None = None) -> Figure5Result:
    """Regenerate one panel of Figure 5 (no adversary; utility only)."""
    curves: dict[str, list[float]] = {}
    per_client: dict[str, dict[int, dict[int, float]]] = {}
    fig6_round = 6
    for scheme in SCHEMES:
        result, _, params = run_scheme(dataset_name, scheme, scale=scale, seed=seed, rounds=rounds)
        curves[scheme] = result.accuracy_curve()
        per_client[scheme] = {r.round_index: r.per_client_accuracy for r in result.rounds}
        fig6_round = min(params.fig6_round, result.rounds[-1].round_index)
    return Figure5Result(dataset=dataset_name, curves=curves, per_client=per_client, fig6_round=fig6_round)


def shape_checks(result: Figure5Result) -> dict[str, bool]:
    """The qualitative claims the measured curves must satisfy."""
    fl = np.array(result.curves["classical-fl"])
    mixnn = np.array(result.curves["mixnn"])
    noisy = np.array(result.curves["noisy-gradient"])
    return {
        # §4.2: identical aggregation ⇒ identical curves (up to float32 noise).
        "mixnn_equals_fl": bool(np.allclose(fl, mixnn, atol=1e-3)),
        "noisy_below_fl_on_average": bool(noisy.mean() < fl.mean()),
        "fl_learns": bool(fl[-1] > fl[0]),
    }
