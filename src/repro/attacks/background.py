"""Adversary background knowledge: reference-model construction (§3, §5).

The aggregation server "is able to collect or to use a public dataset with
similar raw data (including the sensitive attribute)".  For each sensitive
class it trains an *attack model* on data from that class only; ∇Sim then
compares participants' gradient directions against the directions induced by
these reference models.

Figure 8 varies how much auxiliary data the adversary holds; the ``ratio``
argument of :func:`build_reference_states` implements that sweep over
background users.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.base import ClientDataset
from ..data.partition import background_subset, clients_by_attribute, merge_clients
from ..federated.client import LocalTrainingConfig, train_locally
from ..nn import Module
from ..utils.rng import rng_from_seed

__all__ = ["build_reference_states", "reference_deltas", "reference_delta_matrix"]


def build_reference_states(
    broadcast_state: dict,
    background_clients: list[ClientDataset],
    model_fn: Callable[[np.random.Generator], Module],
    config: LocalTrainingConfig,
    rng: np.random.Generator,
    ratio: float = 1.0,
    attack_epochs: int | None = None,
) -> dict[int, dict]:
    """Train one reference model per sensitive-attribute class.

    Each reference model starts from the *broadcast* model (exactly what a
    participant of that class would refine) and trains on the pooled data of
    the selected background users of that class.  ``attack_epochs`` defaults
    to the participants' own local-epoch count; the paper trains attack
    models for 5 learning rounds, exposed here as a multiple of local epochs.

    Returns ``{attribute_class: reference_state}``.
    """
    if ratio < 1.0:
        background_clients = background_subset(background_clients, ratio, rng)
    grouped = clients_by_attribute(background_clients)
    if len(grouped) < 2:
        raise ValueError(f"need background data for >=2 attribute classes, have {len(grouped)}")
    epochs = attack_epochs if attack_epochs is not None else config.local_epochs
    attack_config = LocalTrainingConfig(
        local_epochs=epochs,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
    )
    references: dict[int, dict] = {}
    model = model_fn(rng_from_seed(0))
    for attribute, members in grouped.items():
        pooled = merge_clients(members)
        model.load_state_dict(broadcast_state)
        train_locally(model, pooled, attack_config, rng)
        references[attribute] = model.state_dict()
    return references


def reference_deltas(reference_states: dict[int, dict], broadcast_state: dict) -> dict[int, np.ndarray]:
    """Flattened gradient direction of each reference model vs the broadcast.

    Each delta is one vectorized subtract on the flat parameter plane (the
    per-class vectors are the rows of :func:`reference_delta_matrix`).
    """
    attributes, matrix = reference_delta_matrix(reference_states, broadcast_state)
    return {attribute: matrix[i] for i, attribute in enumerate(attributes)}


def reference_delta_matrix(
    reference_states: dict[int, dict], broadcast_state: dict
) -> tuple[list[int], np.ndarray]:
    """All class directions as one ``(K, D)`` float32 matrix.

    Returns ``(attributes, matrix)`` with row ``i`` the flat gradient
    direction of class ``attributes[i]`` — the right-hand operand of the
    ∇Sim scoring matmul (:func:`repro.attacks.gradsim.score_updates`).
    """
    from ..federated.flat import FlatUpdateBatch
    from ..nn.serialization import schema_of

    attributes = list(reference_states)
    schema = schema_of(broadcast_state)
    batch = FlatUpdateBatch.from_states(
        [reference_states[attribute] for attribute in attributes], schema=schema
    )
    return attributes, batch.deltas(broadcast_state)
