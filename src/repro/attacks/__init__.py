"""``repro.attacks`` — ∇Sim and the §6.4 robustness analyses."""

from .background import build_reference_states, reference_deltas
from .gradsim import GradSimAttack, RoundInference, cosine_similarity
from .membership import MembershipAttack, MembershipReport, per_sample_losses
from .reconstruction import (
    RelinkAttack,
    RelinkReport,
    neighbor_counts,
    pairwise_distances,
)
from .timing import TimingAttackReport, TimingSideChannel

__all__ = [
    "GradSimAttack",
    "RoundInference",
    "cosine_similarity",
    "build_reference_states",
    "reference_deltas",
    "neighbor_counts",
    "pairwise_distances",
    "RelinkAttack",
    "RelinkReport",
    "MembershipAttack",
    "MembershipReport",
    "per_sample_losses",
    "TimingSideChannel",
    "TimingAttackReport",
]
