"""Loss-threshold membership inference (extension; paper §2.3 background).

The paper motivates MixNN with the full ML attack surface — membership,
property and attribute inference — but evaluates only attribute inference.
This module implements the classic loss-threshold membership attack
(Yeom et al., CSF'18) against the *global model* so the repository can also
quantify the §2.3 claim that "memorization of training data … [is] exploited
by an adversary to conduct a membership inference attack":

* the adversary computes the model's per-sample loss on candidate records;
* records with loss below a threshold (calibrated on known non-members) are
  declared training members.

Note the scope: this attacks what the *aggregate* model memorizes, which
MixNN does not change (the aggregate is identical by design).  MixNN defends
the per-participant update channel, not the global model — the test suite
pins down exactly that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.base import ArrayDataset
from ..nn import Module, Tensor, no_grad
from ..nn.functional import log_softmax

__all__ = ["per_sample_losses", "MembershipAttack", "MembershipReport"]


def per_sample_losses(model: Module, dataset: ArrayDataset, batch_size: int = 256) -> np.ndarray:
    """Cross-entropy loss of each sample under ``model`` (no reduction)."""
    model.eval()
    losses: list[np.ndarray] = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            features = dataset.features[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            log_probs = log_softmax(model(Tensor(features)), axis=-1).numpy()
            losses.append(-log_probs[np.arange(len(labels)), labels])
    return np.concatenate(losses)


@dataclass
class MembershipReport:
    """Outcome of one membership-inference evaluation."""

    threshold: float
    #: true-positive rate on actual members
    member_recall: float
    #: false-positive rate on non-members
    non_member_fpr: float
    #: balanced accuracy (0.5 = no membership leakage)
    advantage_accuracy: float


class MembershipAttack:
    """Loss-threshold membership inference against a model state."""

    def __init__(self, model: Module) -> None:
        self.model = model

    def calibrate_threshold(self, non_members: ArrayDataset, quantile: float = 0.25) -> float:
        """Pick the loss threshold from a known non-member calibration set."""
        losses = per_sample_losses(self.model, non_members)
        return float(np.quantile(losses, quantile))

    def run(
        self,
        members: ArrayDataset,
        non_members: ArrayDataset,
        threshold: float | None = None,
    ) -> MembershipReport:
        """Score the attack on labelled member / non-member pools."""
        if threshold is None:
            threshold = self.calibrate_threshold(non_members)
        member_losses = per_sample_losses(self.model, members)
        non_member_losses = per_sample_losses(self.model, non_members)
        member_recall = float((member_losses <= threshold).mean())
        non_member_fpr = float((non_member_losses <= threshold).mean())
        advantage = 0.5 * (member_recall + (1.0 - non_member_fpr))
        return MembershipReport(
            threshold=threshold,
            member_recall=member_recall,
            non_member_fpr=non_member_fpr,
            advantage_accuracy=advantage,
        )
