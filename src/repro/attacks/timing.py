"""Timing side-channel adversary: arrival order as an identity prior.

The wall-clock round engine exposes exactly what a network-level observer
(or the honest-but-curious server itself) sees: a stream of timestamped
update arrivals (:attr:`~repro.federated.simulation.RoundRecord.
arrival_times`).  Content defenses — MixNN mixing, encryption to the proxy —
do not touch this channel: a device on a slow uplink arrives late in *every*
round, so arrival rank is a fingerprint that survives mixing.

:class:`TimingSideChannel` is the first step of the ROADMAP's
"scenario-aware attacks": the adversary profiles per-client round-trip
latency during a warm-up window where identities are known (the same
auxiliary-knowledge assumption ∇Sim makes for its reference models), then
re-identifies the sender of each later arrival by nearest-profile matching
without replacement, consuming arrivals in time order.

The attack is honest about its limits: under i.i.d. latency draws (every
client samples the same distribution fresh each round) it scores at chance,
because there is nothing systematic to profile.  It bites exactly when
latency has a per-client systematic component —
:class:`~repro.federated.scenario.LogNormalLatency` with ``client_spread``,
:class:`~repro.federated.scenario.FixedLatency` with per-client overrides,
or any real fleet where device class and link quality persist across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimingSideChannel", "TimingAttackReport"]


@dataclass(frozen=True)
class TimingAttackReport:
    """Outcome of a timing re-identification run."""

    #: fraction of scored arrivals whose sender was re-identified
    accuracy: float
    #: expected accuracy of a uniformly random assignment over the same slots
    random_guess: float
    #: rounds used to build the latency profiles
    warmup_rounds: int
    #: rounds actually scored (arrival-bearing rounds after warm-up)
    scored_rounds: int
    #: arrivals scored across all evaluation rounds
    scored_arrivals: int
    #: per-round ``(round_index, accuracy)`` over the evaluation window
    per_round: tuple[tuple[int, float], ...] = field(default=())

    @property
    def advantage(self) -> float:
        """Re-identification lift over the random-assignment baseline."""
        return self.accuracy - self.random_guess


class TimingSideChannel:
    """Rank client identities from the arrival event stream.

    ``warmup_rounds`` arrival-bearing rounds are used as labelled background
    knowledge (mean observed latency per client); every later round is
    scored by greedily assigning each arrival, in time order, to the
    unclaimed profiled client whose mean latency is nearest.  All decisions
    are deterministic (ties break toward the smaller client id).
    """

    def __init__(self, warmup_rounds: int = 2) -> None:
        if warmup_rounds < 1:
            raise ValueError(f"warmup_rounds must be >= 1, got {warmup_rounds}")
        self.warmup_rounds = warmup_rounds
        #: client id -> mean observed round-trip latency over the warm-up
        self.profiles: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Profiling (the adversary's background knowledge)
    # ------------------------------------------------------------------
    def fit(self, records) -> dict[int, float]:
        """Build per-client latency profiles from the warm-up window."""
        samples: dict[int, list[float]] = {}
        used = 0
        for record in records:
            if not record.arrival_times:
                continue
            if used >= self.warmup_rounds:
                break
            used += 1
            for sender_id, arrival_time in record.arrival_times:
                samples.setdefault(int(sender_id), []).append(
                    float(arrival_time) - float(record.round_start)
                )
        self.profiles = {
            client: float(np.mean(values)) for client, values in sorted(samples.items())
        }
        return self.profiles

    def predict_round(self, record) -> list[tuple[int, int]]:
        """Greedy re-identification of one round's arrivals.

        Returns ``(true_sender, predicted_sender)`` per arrival, in time
        order.  Each profiled client is claimed at most once per round
        (arrivals are a near-permutation of the cohort).
        """
        if not self.profiles:
            raise RuntimeError("fit() the warm-up window before predicting")
        available = dict(self.profiles)
        pairs: list[tuple[int, int]] = []
        for sender_id, arrival_time in record.arrival_times:
            latency = float(arrival_time) - float(record.round_start)
            if available:
                predicted = min(
                    available.items(), key=lambda item: (abs(item[1] - latency), item[0])
                )[0]
                del available[predicted]
            else:  # more arrivals than profiled clients: forced wrong guess
                predicted = -1
            pairs.append((int(sender_id), predicted))
        return pairs

    # ------------------------------------------------------------------
    # End-to-end scoring
    # ------------------------------------------------------------------
    def run(self, source) -> TimingAttackReport:
        """Profile then score a finished run.

        ``source`` is a :class:`~repro.federated.simulation.SimulationResult`
        or a plain list of :class:`~repro.federated.simulation.RoundRecord`.
        """
        records = getattr(source, "rounds", source)
        self.fit(records)
        if not self.profiles:
            raise ValueError(
                "no arrival timestamps to profile — run with a ScenarioConfig "
                "(the legacy barrier loop records no event stream)"
            )
        warmup_left = self.warmup_rounds
        correct = 0
        total = 0
        guess_mass = 0.0
        per_round: list[tuple[int, float]] = []
        for record in records:
            if not record.arrival_times:
                continue
            if warmup_left > 0:
                warmup_left -= 1
                continue
            pairs = self.predict_round(record)
            hits = sum(1 for true, predicted in pairs if true == predicted)
            correct += hits
            total += len(pairs)
            # a uniform bijective assignment is right on a slot w.p. 1/|pool|
            guess_mass += len(pairs) / max(len(self.profiles), len(pairs))
            per_round.append((record.round_index, hits / len(pairs)))
        if total == 0:
            raise ValueError(
                f"no rounds left to score after {self.warmup_rounds} warm-up rounds"
            )
        return TimingAttackReport(
            accuracy=correct / total,
            random_guess=guess_mass / total,
            warmup_rounds=self.warmup_rounds,
            scored_rounds=len(per_round),
            scored_arrivals=total,
            per_round=tuple(per_round),
        )
