"""Robustness analysis of the mixing (§6.4) and an actual re-linking attack.

Figure 9 argues MixNN resists reconstruction because participants' gradients
are mutually close: for every participant there exist several "alter egos"
within a small euclidean radius, so a server enumerating combinations of the
shuffled layers cannot tell which pieces belong together.

Two tools implement this section:

* :func:`neighbor_counts` — the paper's census: for each participant, how
  many *other* participants' updates lie within ``radius`` (euclidean) of its
  own.  Figure 9 plots the CDF of these counts.
* :class:`RelinkAttack` — an extension beyond the paper's argument: a greedy
  malicious server that tries to re-assemble original updates from the mixed
  ones, linking each emitted layer piece to the attribute class whose
  reference direction it is most similar to, then checking cross-layer
  consistency.  The attack succeeding would contradict the paper's claim, so
  its (low) success rate quantifies robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..federated.flat import FlatUpdateBatch, unit_columns
from ..federated.update import ModelUpdate, layer_groups, state_delta

__all__ = ["neighbor_counts", "pairwise_distances", "RelinkAttack", "RelinkReport"]


def pairwise_distances(updates: list[ModelUpdate], broadcast_state: dict) -> np.ndarray:
    """Euclidean distance matrix between participants' update directions.

    Computed from the ``(N, D)`` delta matrix via the Gram identity
    ``‖a − b‖² = ‖a‖² + ‖b‖² − 2⟨a, b⟩`` — one matmul instead of an
    ``(N, N, D)`` broadcast difference, which at 256 participants would
    materialize gigabytes.
    """
    directions = FlatUpdateBatch.delta_matrix(updates, broadcast_state).astype(np.float64)
    gram = directions @ directions.T
    squared = np.diag(gram)
    distances_sq = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(distances_sq, 0.0, out=distances_sq)  # clamp float round-off
    distances = np.sqrt(distances_sq)
    np.fill_diagonal(distances, 0.0)
    return distances


def neighbor_counts(
    updates: list[ModelUpdate],
    broadcast_state: dict,
    radius: float = 0.5,
) -> np.ndarray:
    """For each participant, the number of others within ``radius`` (Fig. 9).

    The paper uses a radius of 0.5 on its TensorFlow-scale gradients; the
    meaningful quantity is the count distribution, so callers typically set
    the radius relative to the median pairwise distance.
    """
    distances = pairwise_distances(updates, broadcast_state)
    within = (distances <= radius) & ~np.eye(len(updates), dtype=bool)
    return within.sum(axis=1)


@dataclass
class RelinkReport:
    """Outcome of a re-linking attempt over one round of mixed updates."""

    #: per emitted update: attribute class assigned to each layer piece
    piece_assignments: list[list[int]]
    #: fraction of emitted updates whose pieces all landed in one class
    consistency_rate: float
    #: fraction of layer pieces whose class assignment matches the true
    #: attribute of the participant the piece came from (needs ground truth)
    piece_accuracy: float | None


class RelinkAttack:
    """Greedy cross-layer re-linking against mixed updates.

    The adversary holds per-class reference states (as in ∇Sim) and tries to
    classify every *layer piece* of every emitted update independently; if
    layer pieces were individually fingerprintable, pieces of one original
    update would receive consistent labels and could be regrouped.

    Classification runs on the flat parameter plane: for each layer, all
    emitted pieces are scored against all classes with one
    ``(N, d_layer) @ (d_layer, K)`` matmul instead of nested per-piece,
    per-class cosine loops.
    """

    def __init__(self, reference_states: dict[int, dict], broadcast_state: dict) -> None:
        self.broadcast_state = broadcast_state
        self.layer_names = layer_groups(tuple(broadcast_state.keys()))
        #: class label per row of the per-layer reference matrices
        self.attributes = list(reference_states)
        from ..nn.serialization import schema_of

        schema = schema_of(broadcast_state)
        # (K, D) class-direction matrix in *broadcast schema order* (a
        # reference state may order its keys differently), pre-split into
        # per-layer columns.
        class_deltas = np.stack(
            [
                np.concatenate(
                    [
                        np.asarray(delta[name], dtype=np.float32).ravel()
                        for name in schema.names
                    ]
                )
                for delta in (
                    state_delta(state, broadcast_state) for state in reference_states.values()
                )
            ]
        )
        self._class_layer_matrices: list[np.ndarray] = []
        self._class_layer_norms: list[np.ndarray] = []
        self._columns: list[slice | np.ndarray] = unit_columns(
            schema, [names for names in self.layer_names.values()]
        )
        for column in self._columns:
            layer_matrix = class_deltas[:, column]  # (K, d_layer)
            self._class_layer_matrices.append(layer_matrix)
            self._class_layer_norms.append(
                np.linalg.norm(layer_matrix.astype(np.float64), axis=1)
            )

    def run(
        self,
        mixed_updates: list[ModelUpdate],
        true_attributes: dict[int, int] | None = None,
    ) -> RelinkReport:
        """Attempt to re-link a round of mixed updates."""
        if not mixed_updates:
            return RelinkReport(piece_assignments=[], consistency_rate=0.0, piece_accuracy=None)
        deltas = FlatUpdateBatch.delta_matrix(mixed_updates, self.broadcast_state)  # (N, D)

        count = len(mixed_updates)
        predicted = np.empty((count, len(self._columns)), dtype=np.int64)
        for layer_index, column in enumerate(self._columns):
            pieces = deltas[:, column]  # (N, d_layer)
            layer_matrix = self._class_layer_matrices[layer_index]
            dots = pieces @ layer_matrix.T  # (N, K)
            piece_norms = np.sqrt(np.einsum("ij,ij->i", pieces, pieces, dtype=np.float64))
            denom = piece_norms[:, None] * self._class_layer_norms[layer_index][None, :]
            cosines = np.divide(
                dots.astype(np.float64),
                denom,
                out=np.zeros((count, layer_matrix.shape[0])),
                where=denom != 0.0,
            )
            # first-max argmax matches the reference's dict-iteration max
            predicted[:, layer_index] = np.argmax(cosines, axis=1)

        assignments: list[list[int]] = [
            [self.attributes[int(k)] for k in row] for row in predicted
        ]
        piece_hits = 0
        piece_total = 0
        if true_attributes is not None:
            for update, update_assignment in zip(mixed_updates, assignments):
                sources = update.metadata.get("unit_sources")
                if sources is None:
                    continue
                for layer_index, prediction in enumerate(update_assignment):
                    source = sources[layer_index]
                    if source in true_attributes:
                        piece_total += 1
                        piece_hits += int(prediction == true_attributes[source])
        consistent = sum(1 for a in assignments if len(set(a)) == 1)
        return RelinkReport(
            piece_assignments=assignments,
            consistency_rate=consistent / len(assignments) if assignments else 0.0,
            piece_accuracy=piece_hits / piece_total if piece_total else None,
        )
