"""Robustness analysis of the mixing (§6.4) and an actual re-linking attack.

Figure 9 argues MixNN resists reconstruction because participants' gradients
are mutually close: for every participant there exist several "alter egos"
within a small euclidean radius, so a server enumerating combinations of the
shuffled layers cannot tell which pieces belong together.

Two tools implement this section:

* :func:`neighbor_counts` — the paper's census: for each participant, how
  many *other* participants' updates lie within ``radius`` (euclidean) of its
  own.  Figure 9 plots the CDF of these counts.
* :class:`RelinkAttack` — an extension beyond the paper's argument: a greedy
  malicious server that tries to re-assemble original updates from the mixed
  ones, linking each emitted layer piece to the attribute class whose
  reference direction it is most similar to, then checking cross-layer
  consistency.  The attack succeeding would contradict the paper's claim, so
  its (low) success rate quantifies robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..federated.update import ModelUpdate, layer_groups, state_delta
from ..nn.serialization import flatten
from .gradsim import cosine_similarity

__all__ = ["neighbor_counts", "pairwise_distances", "RelinkAttack", "RelinkReport"]


def pairwise_distances(updates: list[ModelUpdate], broadcast_state: dict) -> np.ndarray:
    """Euclidean distance matrix between participants' update directions."""
    directions = np.stack([flatten(u.delta(broadcast_state)) for u in updates]).astype(np.float64)
    diff = directions[:, None, :] - directions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def neighbor_counts(
    updates: list[ModelUpdate],
    broadcast_state: dict,
    radius: float = 0.5,
) -> np.ndarray:
    """For each participant, the number of others within ``radius`` (Fig. 9).

    The paper uses a radius of 0.5 on its TensorFlow-scale gradients; the
    meaningful quantity is the count distribution, so callers typically set
    the radius relative to the median pairwise distance.
    """
    distances = pairwise_distances(updates, broadcast_state)
    within = (distances <= radius) & ~np.eye(len(updates), dtype=bool)
    return within.sum(axis=1)


@dataclass
class RelinkReport:
    """Outcome of a re-linking attempt over one round of mixed updates."""

    #: per emitted update: attribute class assigned to each layer piece
    piece_assignments: list[list[int]]
    #: fraction of emitted updates whose pieces all landed in one class
    consistency_rate: float
    #: fraction of layer pieces whose class assignment matches the true
    #: attribute of the participant the piece came from (needs ground truth)
    piece_accuracy: float | None


class RelinkAttack:
    """Greedy cross-layer re-linking against mixed updates.

    The adversary holds per-class reference states (as in ∇Sim) and tries to
    classify every *layer piece* of every emitted update independently; if
    layer pieces were individually fingerprintable, pieces of one original
    update would receive consistent labels and could be regrouped.
    """

    def __init__(self, reference_states: dict[int, dict], broadcast_state: dict) -> None:
        self.broadcast_state = broadcast_state
        # Pre-split each reference direction by layer group.
        self.layer_names = layer_groups(list(broadcast_state.keys()))
        self.class_layer_deltas: dict[int, dict[str, np.ndarray]] = {}
        for attribute, state in reference_states.items():
            delta = state_delta(state, broadcast_state)
            self.class_layer_deltas[attribute] = {
                layer: np.concatenate([delta[name].ravel() for name in names])
                for layer, names in self.layer_names.items()
            }

    def _classify_piece(self, layer: str, piece: np.ndarray) -> int:
        scores = {
            attribute: cosine_similarity(piece, deltas[layer])
            for attribute, deltas in self.class_layer_deltas.items()
        }
        return max(scores.items(), key=lambda kv: kv[1])[0]

    def run(
        self,
        mixed_updates: list[ModelUpdate],
        true_attributes: dict[int, int] | None = None,
    ) -> RelinkReport:
        """Attempt to re-link a round of mixed updates."""
        assignments: list[list[int]] = []
        piece_hits = 0
        piece_total = 0
        for update in mixed_updates:
            delta = update.delta(self.broadcast_state)
            update_assignment: list[int] = []
            sources = update.metadata.get("unit_sources")
            for layer_index, (layer, names) in enumerate(self.layer_names.items()):
                piece = np.concatenate([delta[name].ravel() for name in names])
                predicted = self._classify_piece(layer, piece)
                update_assignment.append(predicted)
                if true_attributes is not None and sources is not None:
                    source = sources[layer_index]
                    if source in true_attributes:
                        piece_total += 1
                        piece_hits += int(predicted == true_attributes[source])
            assignments.append(update_assignment)
        consistent = sum(1 for a in assignments if len(set(a)) == 1)
        return RelinkReport(
            piece_assignments=assignments,
            consistency_rate=consistent / len(assignments) if assignments else 0.0,
            piece_accuracy=piece_hits / piece_total if piece_total else None,
        )
