"""∇Sim: the similarity-based attribute-inference attack (§5).

The gradient vector a participant returns during a round reflects how its
local data pulled the broadcast model; ∇Sim uses it as a fingerprint.  For
each sensitive class the adversary trains a reference model from background
knowledge, derives the class's reference gradient direction, and scores each
participant by **cosine similarity** between the participant's update
direction and each class direction; the predicted attribute is the argmax.
Evidence accumulates across rounds ("this fingerprint can be amplified if the
attack is conducted during multiple rounds").

Two adversary modes (§3, §5):

* **passive** — a curious server that follows the protocol and merely
  observes; reference models are trained from the honest broadcast.
* **active** — a malicious server that *replaces* the broadcast with a model
  equidistant from the class reference models, maximizing the separation of
  the returned gradients.  This is the worst case evaluated in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.base import ClientDataset
from ..federated.client import LocalTrainingConfig
from ..federated.flat import FlatUpdateBatch
from ..federated.update import ModelUpdate, aggregate_states
from ..nn import Module
from ..nn.serialization import flatten
from .background import build_reference_states, reference_delta_matrix

__all__ = [
    "cosine_similarity",
    "score_updates",
    "score_updates_reference",
    "GradSimAttack",
    "RoundInference",
]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two flat vectors (0 when either is null)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b) / norm)


def score_updates(
    updates: list[ModelUpdate],
    broadcast_state: dict,
    class_deltas: "dict[int, np.ndarray] | tuple[list[int], np.ndarray]",
) -> dict[int, dict[int, float]]:
    """∇Sim scoring of a whole round on the flat parameter plane.

    All ``N`` update directions against all ``K`` class directions in one
    ``(N, D) @ (D, K)`` matmul — the per-update, per-class cosine loop is
    retained as :func:`score_updates_reference` and agrees to float32
    precision (same argmax on non-degenerate data).

    ``class_deltas`` is either the ``{attribute: direction}`` dict of
    :func:`~repro.attacks.background.reference_deltas` or, fastest, the
    ``(attributes, matrix)`` pair of
    :func:`~repro.attacks.background.reference_delta_matrix`.

    Returns ``{apparent_id: {attribute: cosine}}`` with the dict orders the
    reference produces (update order / class insertion order).
    """
    if isinstance(class_deltas, tuple):
        attributes, reference_matrix = class_deltas
        reference_matrix = np.asarray(reference_matrix, dtype=np.float32)
    else:
        attributes = list(class_deltas)
        reference_matrix = np.stack(
            [np.asarray(class_deltas[a], dtype=np.float32).ravel() for a in attributes]
        )  # (K, D)
    deltas = FlatUpdateBatch.delta_matrix(updates, broadcast_state)  # (N, D) float32
    dots = deltas @ reference_matrix.T  # sgemm, (N, K)
    delta_norms = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    reference_norms = np.sqrt(np.einsum("ij,ij->i", reference_matrix, reference_matrix))
    denom = (delta_norms[:, None] * reference_norms[None, :]).astype(np.float64)
    cosines = np.divide(
        dots.astype(np.float64), denom, out=np.zeros((len(updates), len(attributes))), where=denom != 0.0
    )
    return {
        update.apparent_id: {
            attribute: float(cosines[i, j]) for j, attribute in enumerate(attributes)
        }
        for i, update in enumerate(updates)
    }


def score_updates_reference(
    updates: list[ModelUpdate],
    broadcast_state: dict,
    class_deltas: dict[int, np.ndarray],
) -> dict[int, dict[int, float]]:
    """Retained per-update, per-class implementation of :func:`score_updates`."""
    out: dict[int, dict[int, float]] = {}
    for update in updates:
        direction = flatten(update.delta(broadcast_state))
        out[update.apparent_id] = {
            attribute: cosine_similarity(direction, delta)
            for attribute, delta in class_deltas.items()
        }
    return out


@dataclass
class RoundInference:
    """Per-round attack artifacts kept for analysis."""

    round_index: int
    similarities: dict[int, dict[int, float]]  # apparent_id -> {class: cos}
    predictions: dict[int, int]  # cumulative argmax after this round
    accuracy: float | None = None  # filled when ground truth is known


@dataclass
class GradSimAttack:
    """∇Sim attack engine, pluggable as a server observer.

    Parameters
    ----------
    background_clients:
        The adversary's auxiliary cohort with known attributes.
    model_fn / config:
        Same architecture and local-training recipe the participants use.
    mode:
        ``"passive"`` or ``"active"`` (see module docstring).
    background_ratio:
        Fraction of background users actually used (Figure 8 sweep).
    attack_epochs:
        Training budget for the reference models (paper: 5 rounds).
    """

    background_clients: list[ClientDataset]
    model_fn: Callable[[np.random.Generator], Module]
    config: LocalTrainingConfig
    rng: np.random.Generator
    mode: str = "active"
    background_ratio: float = 1.0
    attack_epochs: int | None = None
    truth: dict[int, int] | None = None

    history: list[RoundInference] = field(default_factory=list)
    _scores: dict[int, dict[int, float]] = field(default_factory=dict)
    _crafted_references: dict[int, dict] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("passive", "active"):
            raise ValueError(f"mode must be 'passive' or 'active', got {self.mode!r}")

    # ------------------------------------------------------------------
    # Active-mode broadcast crafting (server-side hook)
    # ------------------------------------------------------------------
    def craft_broadcast(self, round_index: int, global_state: dict) -> dict:
        """Malicious broadcast: the model equidistant from class references.

        The references are trained from the current aggregate; their mean is
        (in parameter space) equidistant from each of them, so every
        participant's subsequent gradient points toward its own class model.
        """
        references = build_reference_states(
            global_state,
            self.background_clients,
            self.model_fn,
            self.config,
            self.rng,
            ratio=self.background_ratio,
            attack_epochs=self.attack_epochs,
        )
        self._crafted_references = references
        return aggregate_states([references[key] for key in sorted(references)])

    # ------------------------------------------------------------------
    # Observation (runs on the server after each round)
    # ------------------------------------------------------------------
    def on_round(self, round_index: int, broadcast_state: dict, updates: list[ModelUpdate]) -> None:
        if self.mode == "active" and self._crafted_references is not None:
            references = self._crafted_references
            self._crafted_references = None
        else:
            references = build_reference_states(
                broadcast_state,
                self.background_clients,
                self.model_fn,
                self.config,
                self.rng,
                ratio=self.background_ratio,
                attack_epochs=self.attack_epochs,
            )
        class_deltas = reference_delta_matrix(references, broadcast_state)

        round_similarities = score_updates(updates, broadcast_state, class_deltas)
        for apparent_id, sims in round_similarities.items():
            cumulative = self._scores.setdefault(apparent_id, {})
            for attribute, value in sims.items():
                cumulative[attribute] = cumulative.get(attribute, 0.0) + value

        record = RoundInference(
            round_index=round_index,
            similarities=round_similarities,
            predictions=self.predictions(),
        )
        if self.truth is not None:
            record.accuracy = self.accuracy(self.truth)
        self.history.append(record)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def predictions(self) -> dict[int, int]:
        """Cumulative attribute prediction per (apparent) participant."""
        return {
            participant: max(scores.items(), key=lambda kv: kv[1])[0]
            for participant, scores in self._scores.items()
        }

    def accuracy(self, truth: dict[int, int]) -> float:
        """Inference accuracy against the true attributes (§6.1.2)."""
        predictions = self.predictions()
        scored = [p for p in predictions if p in truth]
        if not scored:
            raise ValueError("no overlap between predictions and ground truth")
        hits = sum(predictions[p] == truth[p] for p in scored)
        return hits / len(scored)

    def accuracy_curve(self) -> list[float]:
        """Cumulative inference accuracy after each round (Figure 7 series)."""
        return [record.accuracy for record in self.history if record.accuracy is not None]
