"""Optional native acceleration for the SHA-256 CTR stream cipher.

The MixNN DEM (:mod:`repro.mixnn.crypto`) XORs payloads with a keystream of
``SHA256(key || nonce || counter)`` blocks.  Generating that keystream one
``hashlib`` call at a time costs ~35 ms/MB of Python dispatch; the hashing
itself is ~5 ms/MB of native work.  This module JIT-compiles (via ``cffi``
against OpenSSL's ``libcrypto``) a single C function that fuses keystream
generation and the XOR into one pass, and caches the built extension on disk
keyed by a hash of its source, so compilation happens once per machine.

Everything degrades gracefully: if ``cffi``, a C compiler, or ``libcrypto``
is unavailable (or ``REPRO_NO_NATIVE=1`` is set) :func:`load` returns ``None``
and callers fall back to the pure-Python bulk path.  Correctness of the
native path against the reference implementation is checked by
``repro.mixnn.crypto.selftest()``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile

__all__ = ["load", "ctr_sha256_xor", "available"]

_MODULE_NAME = "_repro_ctr_native"

_CDEF = (
    "void ctr_sha256_xor(const unsigned char *prefix, size_t prefix_len, "
    "unsigned long long start, const unsigned char *data, size_t len, "
    "unsigned char *out);"
)

_SOURCE = r"""
#include <openssl/sha.h>
#include <string.h>

/* XOR `data` with the keystream SHA256(prefix || be64(start + i)) for
 * consecutive 32-byte blocks i.  Uses the legacy SHA256_* API: unlike the
 * one-shot SHA256()/EVP path it performs no per-call algorithm fetch, which
 * dominates at 56-byte messages. */
void ctr_sha256_xor(const unsigned char *prefix, size_t prefix_len,
                    unsigned long long start, const unsigned char *data,
                    size_t len, unsigned char *out) {
    unsigned char msg[256];
    unsigned char block[SHA256_DIGEST_LENGTH];
    SHA256_CTX ctx;
    size_t nblocks = (len + 31) / 32;
    if (prefix_len > sizeof(msg) - 8)
        prefix_len = sizeof(msg) - 8;
    memcpy(msg, prefix, prefix_len);
    for (size_t i = 0; i < nblocks; i++) {
        unsigned long long c = start + i;
        for (int j = 0; j < 8; j++)
            msg[prefix_len + j] = (unsigned char)(c >> (56 - 8 * j));
        SHA256_Init(&ctx);
        SHA256_Update(&ctx, msg, prefix_len + 8);
        SHA256_Final(block, &ctx);
        size_t off = 32 * i;
        size_t n = (len - off < 32) ? (len - off) : 32;
        for (size_t j = 0; j < n; j++)
            out[off + j] = data[off + j] ^ block[j];
    }
}
"""

_lib = None
_ffi = None
_load_attempted = False


def _cache_dir() -> str:
    digest = hashlib.sha256((_CDEF + _SOURCE).encode()).hexdigest()[:16]
    name = f"repro-native-{digest}-py{sys.version_info[0]}{sys.version_info[1]}"
    base = os.environ.get("REPRO_NATIVE_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        os.makedirs(base, exist_ok=True)
    except OSError:
        # No writable home (containers, restricted accounts): fall back to a
        # per-user tempdir; _dir_is_trusted still gates what gets imported.
        base = os.path.join(tempfile.gettempdir(), f"repro-{os.getuid()}")
        os.makedirs(base, exist_ok=True)
    return os.path.join(base, name)


def _dir_is_trusted(directory: str) -> bool:
    """Only import cached extensions from a directory this user owns.

    Loading a ``.so`` executes it; a cache under a shared location that
    another user could pre-create would be an arbitrary-code-execution
    hand-off.  Require our uid as owner and no group/other write bits.
    """
    try:
        st = os.stat(directory)
    except OSError:
        return False
    return st.st_uid == os.getuid() and not (st.st_mode & 0o022)


def _import_from(directory: str):
    if not _dir_is_trusted(directory):
        return None
    for entry in os.listdir(directory):
        if entry.startswith(_MODULE_NAME) and entry.endswith(".so"):
            spec = importlib.util.spec_from_file_location(_MODULE_NAME, os.path.join(directory, entry))
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return None


def _build() -> "tuple | None":
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(_CDEF)
    ffi.set_source(
        _MODULE_NAME,
        _SOURCE,
        libraries=["crypto"],
        extra_compile_args=["-O2", "-Wno-deprecated-declarations"],
    )
    cache = _cache_dir()
    module = None
    if os.path.isdir(cache):
        try:
            module = _import_from(cache)
        except Exception:
            module = None
    if module is None:
        build_dir = tempfile.mkdtemp(prefix="repro-native-build-")
        ffi.compile(tmpdir=build_dir)
        try:
            os.rename(build_dir, cache)
            target = cache
        except OSError:
            # Another process won the race (or the rename failed); use the
            # freshly built copy in place.
            target = build_dir if os.path.isdir(build_dir) else cache
        module = _import_from(target)
    if module is None:
        return None
    return module.lib, module.ffi


def load():
    """Return the compiled native library handle, or ``None`` if unavailable."""
    global _lib, _ffi, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    try:
        built = _build()
    except Exception:
        built = None
    if built is not None:
        _lib, _ffi = built
    return _lib


def available() -> bool:
    """Whether the fused native CTR path can be used on this machine."""
    return load() is not None


def ctr_sha256_xor(prefix: bytes, data: bytes, start: int = 0) -> bytes:
    """XOR ``data`` against the SHA256-CTR keystream for ``prefix``.

    Requires the native library; callers should check :func:`available` (or
    :func:`load`) first and fall back to the pure-Python path otherwise.
    """
    lib = load()
    if lib is None:
        raise RuntimeError("native CTR helper is not available on this machine")
    out = bytearray(len(data))
    lib.ctr_sha256_xor(
        _ffi.from_buffer(prefix),
        len(prefix),
        start,
        _ffi.from_buffer(data),
        len(data),
        _ffi.from_buffer(out),
    )
    return bytes(out)
