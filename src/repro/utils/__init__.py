"""Shared utilities: deterministic RNG management and lightweight logging."""

from .logging import get_logger
from .rng import SeedSequence, child_rng, rng_from_seed

__all__ = ["rng_from_seed", "child_rng", "SeedSequence", "get_logger"]
