"""Deterministic random-number management.

Every stochastic component in the reproduction (data generation, weight
initialization, client sampling, the proxy's mixing permutations, the noisy
gradient defense) draws from an explicitly seeded generator.  Experiments
spawn *independent* child streams per component so that, e.g., changing the
number of attack rounds never perturbs the data generation.
"""

from __future__ import annotations

import hashlib

import numpy as np
from numpy.random import SeedSequence

__all__ = ["rng_from_seed", "stable_seed", "child_rng", "SeedSequence"]


def rng_from_seed(seed: int | None) -> np.random.Generator:
    """Create a generator from an integer seed (or entropy if ``None``)."""
    return np.random.default_rng(seed)


def stable_seed(*parts: str | int | float) -> int:
    """Derive a process-independent 31-bit seed from a label tuple.

    Python's built-in ``hash`` is randomized per process for strings, so it
    must never feed an RNG seed; this uses SHA-256 over the ``repr`` of the
    labels instead, making every derived stream reproducible across runs and
    machines.
    """
    digest = hashlib.sha256(repr(parts).encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


def child_rng(parent_seed: int, *labels: str | int) -> np.random.Generator:
    """Independent child generator keyed by a parent seed plus labels."""
    return np.random.default_rng(SeedSequence([parent_seed % (2**31), stable_seed(*labels)]))
