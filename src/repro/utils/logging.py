"""Library logging setup.

All modules log through ``repro.*`` loggers; the library never configures the
root logger (standard library-citizen behaviour), but :func:`get_logger`
attaches a null handler so importing applications see no spurious warnings.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger
