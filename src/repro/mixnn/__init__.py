"""``repro.mixnn`` — the paper's core contribution.

The layer-mixing machinery (:mod:`~repro.mixnn.mixing`), the streaming proxy
(:mod:`~repro.mixnn.proxy`), the participant↔enclave wire format and hybrid
encryption (:mod:`~repro.mixnn.transport`, :mod:`~repro.mixnn.crypto`), the
SGX enclave simulator (:mod:`~repro.mixnn.enclave`), and the oblivious list
storage (:mod:`~repro.mixnn.oram`).
"""

from .crypto import CryptoError, KeyPair, PublicKey, decrypt, encrypt, generate_keypair
from .enclave import (
    EPC_RESERVED_BYTES,
    EPC_USABLE_BYTES,
    AttestationQuote,
    EnclaveCostModel,
    EnclaveError,
    SGXEnclaveSim,
)
from .mixing import Granularity, is_valid_mixing_matrix, mix_updates, mixing_matrix
from .mixnet import MixCascade, MixNode, onion_encrypt
from .oram import ObliviousList
from .proxy import MixNNProxy, ProxyStats
from .transport import EncryptedUpdate, pack_update, unpack_update, update_nbytes

__all__ = [
    "mixing_matrix",
    "is_valid_mixing_matrix",
    "mix_updates",
    "Granularity",
    "MixNNProxy",
    "ProxyStats",
    "SGXEnclaveSim",
    "EnclaveCostModel",
    "EnclaveError",
    "AttestationQuote",
    "EPC_USABLE_BYTES",
    "EPC_RESERVED_BYTES",
    "KeyPair",
    "PublicKey",
    "generate_keypair",
    "encrypt",
    "decrypt",
    "CryptoError",
    "EncryptedUpdate",
    "pack_update",
    "unpack_update",
    "update_nbytes",
    "ObliviousList",
    "MixNode",
    "MixCascade",
    "onion_encrypt",
]
