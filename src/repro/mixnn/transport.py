"""Wire format between participants, the MixNN proxy, and the server.

Participants serialize their update state to a raw-framed blob (straight
from the contiguous float32 parameter buffers — no intermediate archive
encode), prepend an envelope (sender slot, round), and encrypt the whole
message to the enclave's public key (§4.1).  The proxy decrypts inside the
enclave and re-materializes a :class:`~repro.federated.update.ModelUpdate`
whose arrays are zero-copy read-only views onto the decrypted plaintext.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..federated.update import ModelUpdate
from ..nn.serialization import state_from_bytes, state_to_bytes
from .crypto import PublicKey, encrypt

__all__ = ["EncryptedUpdate", "pack_update", "unpack_update", "update_nbytes"]

_HEADER_LEN_BYTES = 4


@dataclass(frozen=True)
class EncryptedUpdate:
    """Ciphertext plus the routing metadata a network proxy would see."""

    ciphertext: bytes
    #: transport-level identity (e.g. the TLS connection); NOT inside the
    #: ciphertext and never forwarded to the aggregation server.
    transport_id: int

    @property
    def nbytes(self) -> int:
        return len(self.ciphertext)


def _envelope(update: ModelUpdate) -> bytes:
    header = json.dumps(
        {
            "sender_id": update.sender_id,
            "round_index": update.round_index,
            "num_samples": update.num_samples,
        }
    ).encode()
    return len(header).to_bytes(_HEADER_LEN_BYTES, "big") + header


def pack_update(update: ModelUpdate, public_key: PublicKey) -> EncryptedUpdate:
    """Serialize and encrypt one update for the enclave."""
    plaintext = _envelope(update) + state_to_bytes(update.state)
    return EncryptedUpdate(
        ciphertext=encrypt(public_key, plaintext),
        transport_id=update.sender_id,
    )


def unpack_update(plaintext: bytes) -> ModelUpdate:
    """Re-materialize an update from a decrypted message."""
    header_len = int.from_bytes(plaintext[:_HEADER_LEN_BYTES], "big")
    header = json.loads(plaintext[_HEADER_LEN_BYTES : _HEADER_LEN_BYTES + header_len].decode())
    state = state_from_bytes(plaintext[_HEADER_LEN_BYTES + header_len :])
    return ModelUpdate(
        sender_id=int(header["sender_id"]),
        round_index=int(header["round_index"]),
        num_samples=int(header["num_samples"]),
        state=state,
    )


def update_nbytes(update: ModelUpdate) -> int:
    """In-enclave memory footprint of one update (raw float32 payload)."""
    return int(sum(v.nbytes for v in update.state.values()))
