"""Wire format between participants, the MixNN proxy, and the server.

Participants serialize their update state to a raw-framed blob (straight
from the contiguous float32 parameter buffers — no intermediate archive
encode), prepend an envelope (sender slot, round), and encrypt the whole
message to the enclave's public key (§4.1).  The proxy decrypts inside the
enclave and re-materializes a :class:`~repro.federated.update.ModelUpdate`
on the flat parameter plane: one zero-copy read-only float32 vector over the
decrypted payload, with the per-parameter dict as schema views onto it — so
transport, crypto, and every downstream consumer (mixing, aggregation,
attacks) share a single allocation.

Integrity fields
----------------
Every envelope carries two fixed-length hex fields (so fresh and stale
messages keep identical wire lengths for a given model):

* ``nonce`` — a round-scoped value derived deterministically from
  ``(sender, round)``.  The proxy recomputes it on unpack (a mismatch is a
  forged or mis-bound envelope → :class:`IntegrityError`) and remembers it
  for the proxy's lifetime, so a *replayed* ciphertext for the same
  ``(sender, round)`` is rejected instead of double-buffering layer pieces.
* ``digest`` — SHA-256 over the serialized parameter body.  Verified before
  the body is parsed: a tampered payload dies with a typed error even if the
  framing still parses, and the digest travels with the update as provenance
  (``metadata["digest"]``) into the server's round transcript.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..federated.update import ModelUpdate
from ..nn.serialization import FrameError, flat_from_bytes, flat_to_bytes, schema_of, state_to_bytes
from .crypto import PublicKey, encrypt

__all__ = [
    "EncryptedUpdate",
    "IntegrityError",
    "envelope_nonce",
    "pack_update",
    "unpack_update",
    "update_nbytes",
]

_HEADER_LEN_BYTES = 4


class IntegrityError(FrameError):
    """An envelope's integrity fields do not match its content."""


def envelope_nonce(sender_id: int, round_index: int) -> str:
    """Round-scoped nonce binding an envelope to ``(sender, round)``.

    Deterministic so both ends derive it independently (no extra RNG draw —
    the zero-adversary bit-identity guarantee covers transport too); unique
    per ``(sender, round)``, which is exactly the replay-protection scope: a
    sender legitimately uploads once per round.
    """
    material = f"mixnn-nonce:{int(sender_id)}:{int(round_index)}".encode()
    return hashlib.sha256(material).hexdigest()[:32]


@dataclass(frozen=True)
class EncryptedUpdate:
    """Ciphertext plus the routing metadata a network proxy would see."""

    ciphertext: bytes
    #: transport-level identity (e.g. the TLS connection); NOT inside the
    #: ciphertext and never forwarded to the aggregation server.
    transport_id: int

    @property
    def nbytes(self) -> int:
        return len(self.ciphertext)


def _envelope(update: ModelUpdate, body: bytes) -> bytes:
    fields = {
        "sender_id": update.sender_id,
        "round_index": update.round_index,
        "num_samples": update.num_samples,
        # Fixed-length integrity fields (32 + 64 hex chars): replay scope and
        # provenance digest — see the module docstring.
        "nonce": envelope_nonce(update.sender_id, update.round_index),
        "digest": hashlib.sha256(body).hexdigest(),
    }
    # Buffered-async rounds tag updates with how many rounds late they
    # arrived; the proxy needs it inside the ciphertext to down-weight the
    # mixed pieces per layer.  Omitted when fresh so the wire bytes of the
    # synchronous flow are unchanged.
    staleness = int(update.metadata.get("staleness", 0))
    if staleness:
        fields["staleness"] = staleness
    header = json.dumps(fields).encode()
    return len(header).to_bytes(_HEADER_LEN_BYTES, "big") + header


def pack_update(update: ModelUpdate, public_key: PublicKey) -> EncryptedUpdate:
    """Serialize and encrypt one update for the enclave.

    A flat-backed update is framed straight from its contiguous buffer
    (byte-identical to the dict path, one memoryview instead of one per
    parameter).
    """
    if update.flat_vector is not None:
        body = flat_to_bytes(schema_of(update.state), update.flat_vector)
    else:
        body = state_to_bytes(update.state)
    plaintext = _envelope(update, body) + body
    return EncryptedUpdate(
        ciphertext=encrypt(public_key, plaintext),
        transport_id=update.sender_id,
    )


def unpack_update(plaintext: bytes) -> ModelUpdate:
    """Re-materialize an update from a decrypted message.

    The returned update lives on the flat parameter plane: ``flat_vector``
    is a single zero-copy read-only view over the payload and the state dict
    is schema views onto it.  A malformed envelope or body raises
    :class:`~repro.nn.serialization.FrameError` — truncation and bit flips
    are surfaced as typed errors, never silently mis-parsed — and a body
    whose SHA-256 does not match the envelope's ``digest`` raises
    :class:`IntegrityError` before the body is even parsed.
    """
    if len(plaintext) < _HEADER_LEN_BYTES:
        raise FrameError(
            f"truncated message: {len(plaintext)} bytes is too short for the envelope length"
        )
    header_len = int.from_bytes(plaintext[:_HEADER_LEN_BYTES], "big")
    if header_len > len(plaintext) - _HEADER_LEN_BYTES:
        raise FrameError(
            f"corrupt envelope: header length {header_len} exceeds the "
            f"{len(plaintext) - _HEADER_LEN_BYTES} bytes that follow it"
        )
    try:
        header = json.loads(plaintext[_HEADER_LEN_BYTES : _HEADER_LEN_BYTES + header_len].decode())
        sender_id = int(header["sender_id"])
        round_index = int(header["round_index"])
        num_samples = int(header["num_samples"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise FrameError("corrupt envelope header (not the expected JSON fields)") from exc
    body = plaintext[_HEADER_LEN_BYTES + header_len :]
    digest = header.get("digest")
    if digest is not None and hashlib.sha256(body).hexdigest() != digest:
        raise IntegrityError(
            f"update digest mismatch for sender {sender_id} round {round_index}: "
            f"the payload was modified between packing and unpacking"
        )
    schema, vector = flat_from_bytes(body)
    metadata = {}
    if "staleness" in header:
        metadata["staleness"] = int(header["staleness"])
    if "nonce" in header:
        metadata["nonce"] = str(header["nonce"])
    if digest is not None:
        metadata["digest"] = str(digest)
    return ModelUpdate(
        sender_id=sender_id,
        round_index=round_index,
        num_samples=num_samples,
        state=schema.views(vector),
        metadata=metadata,
        flat_vector=vector,
    )


def update_nbytes(update: ModelUpdate) -> int:
    """In-enclave memory footprint of one update (raw float32 payload)."""
    return int(sum(v.nbytes for v in update.state.values()))
