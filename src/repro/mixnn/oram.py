"""Oblivious list storage (ZeroTrace-style access-pattern hiding).

§4.3 notes that when a model does not fit the EPC, ORAM mechanisms such as
ZeroTrace can hide which list slot the proxy touches.  This module provides a
functional simulation: an :class:`ObliviousList` whose read/remove operations
*touch every slot* (linear scan with constant work per slot) so the memory
access pattern is independent of the selected index, and which counts the
touches so tests can verify obliviousness.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["ObliviousList"]


class ObliviousList(Generic[T]):
    """Fixed-capacity list with index-oblivious access patterns."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: list[T | None] = [None] * capacity
        #: total slot touches, used to assert access-pattern uniformity
        self.touch_count = 0

    def __len__(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    @property
    def full(self) -> bool:
        return len(self) == self.capacity

    def insert(self, item: T) -> None:
        """Place ``item`` in the first free slot, scanning every slot."""
        placed = False
        for i in range(self.capacity):
            self.touch_count += 1
            if self._slots[i] is None and not placed:
                self._slots[i] = item
                placed = True
        if not placed:
            raise OverflowError("oblivious list is full")

    def take(self, index: int) -> T:
        """Remove and return the item in the ``index``-th occupied slot.

        Scans all slots regardless of ``index`` so the physical access
        pattern leaks nothing about which element was selected.
        """
        occupied = -1
        taken: T | None = None
        for i in range(self.capacity):
            self.touch_count += 1
            slot = self._slots[i]
            if slot is not None:
                occupied += 1
                if occupied == index:
                    taken = slot
                    self._slots[i] = None
        if taken is None:
            raise IndexError(f"occupied index {index} out of range (have {occupied + 1})")
        return taken

    def items(self) -> list[T]:
        """Snapshot of occupied items in slot order (touches every slot)."""
        out: list[T] = []
        for i in range(self.capacity):
            self.touch_count += 1
            if self._slots[i] is not None:
                out.append(self._slots[i])
        return out
