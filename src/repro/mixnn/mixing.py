"""Layer-mixing core: the mathematical heart of MixNN (§4.1–4.2).

Given ``C`` participant updates over a model with ``n`` layers, the proxy
builds the paper's matrix ``(M_ij)`` — for each layer ``j`` a permutation of
the participants — and emits ``L = C`` chimera updates where row ``i`` takes
layer ``j`` from participant ``M_ij``.  Because every (participant, layer)
pair appears exactly once, the column means are unchanged and the aggregated
model is identical to classical FL (the §4.2 utility-equivalence theorem,
property-tested in ``tests/mixnn/test_equivalence.py``).

``granularity`` extends the paper as an ablation: mix whole models (no
protection beyond unlinkability of the batch), whole layers (the paper's
scheme), or individual parameter tensors.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..federated.flat import FlatUpdateBatch, unit_columns
from ..federated.update import ModelUpdate, layer_groups

__all__ = [
    "mixing_matrix",
    "is_valid_mixing_matrix",
    "mix_updates",
    "mix_updates_reference",
    "Granularity",
]

#: Supported mixing granularities.
Granularity = ("model", "layer", "parameter")


def mixing_matrix(num_updates: int, num_units: int, rng: np.random.Generator) -> np.ndarray:
    """The paper's ``(M_ij)``: one independent permutation per mixing unit.

    Returns an ``(L × n)`` integer array whose every column is a permutation
    of ``range(L)`` — the two conditions of §4.2 (no participant appears twice
    in a column; rows are distinct combinations) hold by construction.
    """
    if num_updates < 1:
        raise ValueError(f"need at least one update, got {num_updates}")
    if num_units < 1:
        raise ValueError(f"need at least one mixing unit, got {num_units}")
    return np.stack([rng.permutation(num_updates) for _ in range(num_units)], axis=1)


def is_valid_mixing_matrix(matrix: np.ndarray, num_updates: int) -> bool:
    """Check the §4.2 bijectivity condition: every column is a permutation."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != num_updates:
        return False
    expected = np.arange(num_updates)
    return all(np.array_equal(np.sort(matrix[:, j]), expected) for j in range(matrix.shape[1]))


def _mixing_units(update: ModelUpdate, granularity: str) -> list[list[str]]:
    """Parameter-name groups moved together under the chosen granularity."""
    names = list(update.state.keys())
    if granularity == "model":
        return [names]
    if granularity == "layer":
        return [group for group in layer_groups(names).values()]
    if granularity == "parameter":
        return [[name] for name in names]
    raise ValueError(f"unknown granularity {granularity!r}; choose from {Granularity}")


def mix_updates(
    updates: list[ModelUpdate],
    rng: np.random.Generator,
    granularity: str = "layer",
    matrix: np.ndarray | None = None,
) -> list[ModelUpdate]:
    """Mix a full batch of updates (the ``L = C`` case of §4.2).

    Emitted update ``i`` keeps the *apparent identity* of input update ``i``
    (the slot the server observes) while its layers come from the
    participants selected by the mixing matrix.

    Runs on the flat parameter plane: the batch is one ``(C, D)`` matrix and
    each mixing unit is a column-slice gather, instead of per-update
    per-parameter dict copies.  Bit-identical (values, identities, sources,
    RNG stream) to :func:`mix_updates_reference`.
    """
    if not updates:
        raise ValueError("cannot mix an empty update batch")
    schema_names = updates[0].parameter_names
    for update in updates[1:]:
        if update.parameter_names != schema_names:
            raise KeyError("all updates must share the same parameter schema")
    units = _mixing_units(updates[0], granularity)
    if matrix is None:
        matrix = mixing_matrix(len(updates), len(units), rng)
    elif not is_valid_mixing_matrix(matrix, len(updates)):
        raise ValueError("provided mixing matrix is not a per-column permutation")
    if matrix.shape != (len(updates), len(units)):
        raise ValueError(f"matrix shape {matrix.shape} != {(len(updates), len(units))}")

    from ..nn.serialization import schema_of

    schema = schema_of(updates[0].state)
    columns = unit_columns(schema, units)
    matrix = np.asarray(matrix)
    mixed_matrix = FlatUpdateBatch.gather_mixed(updates, matrix, columns, schema=schema)
    sender_ids = [u.sender_id for u in updates]

    mixed: list[ModelUpdate] = []
    for i, slot in enumerate(updates):
        row = mixed_matrix[i]
        mixed.append(
            ModelUpdate(
                sender_id=-1,  # the server cannot name a true sender
                apparent_id=slot.sender_id,
                round_index=slot.round_index,
                state=schema.views(row),
                num_samples=slot.num_samples,
                metadata={
                    "mixed": True,
                    "granularity": granularity,
                    "unit_sources": [sender_ids[int(s)] for s in matrix[i]],
                },
                flat_vector=row,
            )
        )
    return mixed


def mix_updates_reference(
    updates: list[ModelUpdate],
    rng: np.random.Generator,
    granularity: str = "layer",
    matrix: np.ndarray | None = None,
) -> list[ModelUpdate]:
    """Retained per-parameter implementation of :func:`mix_updates`."""
    if not updates:
        raise ValueError("cannot mix an empty update batch")
    schema = updates[0].parameter_names
    for update in updates[1:]:
        if update.parameter_names != schema:
            raise KeyError("all updates must share the same parameter schema")
    units = _mixing_units(updates[0], granularity)
    if matrix is None:
        matrix = mixing_matrix(len(updates), len(units), rng)
    elif not is_valid_mixing_matrix(matrix, len(updates)):
        raise ValueError("provided mixing matrix is not a per-column permutation")
    if matrix.shape != (len(updates), len(units)):
        raise ValueError(f"matrix shape {matrix.shape} != {(len(updates), len(units))}")

    # Build the name→unit map once per batch, so each emitted update's state
    # is assembled in schema order in a single pass (no per-update rebuild).
    unit_of = {name: j for j, unit in enumerate(units) for name in unit}
    column_of = [unit_of[name] for name in schema]

    mixed: list[ModelUpdate] = []
    for i, slot in enumerate(updates):
        row = matrix[i]
        state: "OrderedDict[str, np.ndarray]" = OrderedDict(
            (name, updates[int(row[j])].state[name].copy())
            for name, j in zip(schema, column_of)
        )
        sources = [updates[int(row[j])].sender_id for j in range(len(units))]
        mixed.append(
            ModelUpdate(
                sender_id=-1,  # the server cannot name a true sender
                apparent_id=slot.sender_id,
                round_index=slot.round_index,
                state=state,
                num_samples=slot.num_samples,
                metadata={"mixed": True, "granularity": granularity, "unit_sources": sources},
            )
        )
    return mixed
