"""Chaum mix cascade (the §2.4 background substrate).

MixNN borrows its core idea from mix networks: batch messages, shuffle them,
forward them, so arrival order cannot be linked to departure order.  This
module implements an actual message-level mix cascade on top of the project's
hybrid crypto — useful both as an executable rendering of the background
section and as the transport a deployment could tunnel proxy traffic through.

* Senders onion-encrypt a payload: one encryption layer per mix on the route,
  innermost layer first (``E_1(E_2(...E_n(payload)))`` for route ``1→…→n``).
* Each :class:`MixNode` strips one layer, buffers until its batch threshold,
  then flushes its buffer in a random order.
* The cascade delivers plaintexts whose order is independent of submission
  order — the unlinkability property is tested, not assumed.
"""

from __future__ import annotations

import numpy as np

from .crypto import CryptoError, KeyPair, encrypt, decrypt, generate_keypair

__all__ = ["MixNode", "MixCascade", "onion_encrypt"]


def onion_encrypt(payload: bytes, route_keys: list) -> bytes:
    """Layered encryption for a route of mix public keys (first hop outermost)."""
    blob = payload
    for public_key in reversed(route_keys):
        blob = encrypt(public_key, blob)
    return blob


class MixNode:
    """One mix: strips an onion layer, batches, shuffles, forwards."""

    def __init__(
        self,
        keypair: KeyPair | None = None,
        batch_size: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.keypair = keypair or generate_keypair(bits=512)
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self._buffer: list[bytes] = []
        self.dropped = 0

    @property
    def public_key(self):
        return self.keypair.public

    def receive(self, blob: bytes) -> list[bytes]:
        """Accept one message; return a shuffled batch when the pool fills."""
        try:
            inner = decrypt(self.keypair, blob)
        except CryptoError:
            self.dropped += 1
            return []
        self._buffer.append(inner)
        if len(self._buffer) < self.batch_size:
            return []
        return self.flush()

    def flush(self) -> list[bytes]:
        """Emit everything buffered, in random order."""
        order = self.rng.permutation(len(self._buffer))
        batch = [self._buffer[i] for i in order]
        self._buffer = []
        return batch

    @property
    def pending(self) -> int:
        return len(self._buffer)


class MixCascade:
    """A fixed route of mixes applied in sequence."""

    def __init__(
        self,
        num_mixes: int = 3,
        batch_size: int = 4,
        rng: np.random.Generator | None = None,
        keypairs: list[KeyPair] | None = None,
    ) -> None:
        if num_mixes < 1:
            raise ValueError(f"need at least one mix, got {num_mixes}")
        rng = rng or np.random.default_rng()
        if keypairs is not None and len(keypairs) != num_mixes:
            raise ValueError(f"{len(keypairs)} keypairs for {num_mixes} mixes")
        self.nodes = [
            MixNode(
                keypair=keypairs[i] if keypairs else None,
                batch_size=batch_size,
                rng=np.random.default_rng(rng.integers(0, 2**31)),
            )
            for i in range(num_mixes)
        ]

    @property
    def route_keys(self) -> list:
        return [node.public_key for node in self.nodes]

    def wrap(self, payload: bytes) -> bytes:
        """Onion-encrypt ``payload`` for this cascade's route."""
        return onion_encrypt(payload, self.route_keys)

    def send_batch(self, messages: list[bytes]) -> list[bytes]:
        """Push onion-encrypted messages through the cascade; deliver plaintexts.

        Every node is flushed at the end (a timed flush in a real system), so
        no message is withheld across calls.
        """
        current = list(messages)
        for node in self.nodes:
            emitted: list[bytes] = []
            for blob in current:
                emitted.extend(node.receive(blob))
            emitted.extend(node.flush())
            current = emitted
        return current

    def send_batch_with_failover(
        self,
        payloads: list[bytes],
        injector,
        round_index: int = 0,
        ledger=None,
    ) -> list[bytes]:
        """Push raw payloads through the cascade, re-routing around crashes.

        Unlike :meth:`send_batch`, this takes *plaintext* payloads and wraps
        them itself, because a node crash changes the route: the surviving
        cascade has different keys, so every message must be re-onioned from
        scratch.  Per attempt, each hop draws a deterministic crash from
        ``injector`` (keyed ``(node index, round, attempt)``); a crashed node
        is removed from the route (its buffered batch is lost with it) and the
        whole batch retransmits over the shrunken cascade.  Raises
        :class:`RuntimeError` if every node has crashed.
        """
        surviving = list(self.nodes)
        attempt = 0
        while True:
            if not surviving:
                raise RuntimeError(
                    f"mix cascade has no surviving nodes in round {round_index}; "
                    "cannot deliver the batch"
                )
            route_keys = [node.public_key for node in surviving]
            crashed = None
            for hop, node in enumerate(surviving):
                if injector.mix_node_crash(hop, round_index, attempt):
                    crashed = hop
                    break
            if crashed is not None:
                if ledger is not None:
                    delay = injector.backoff("mixnode-crash", crashed, round_index, attempt)
                    ledger.record(
                        "mixnode-crash",
                        crashed,
                        round_index,
                        attempt,
                        "failed-over",
                        delay_seconds=delay,
                    )
                    ledger.note_retransmissions(len(payloads))
                surviving.pop(crashed)
                attempt += 1
                continue
            current = [onion_encrypt(payload, route_keys) for payload in payloads]
            for node in surviving:
                emitted: list[bytes] = []
                for blob in current:
                    emitted.extend(node.receive(blob))
                emitted.extend(node.flush())
                current = emitted
            return current

    @property
    def dropped(self) -> int:
        return sum(node.dropped for node in self.nodes)
