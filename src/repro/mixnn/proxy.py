"""The MixNN proxy (§4.1, §4.3).

The proxy sits between participants and the aggregation server, inside an
(simulated) SGX enclave.  Operation, following §4.3:

1. each incoming encrypted update is decrypted inside the enclave and split
   by layer into per-layer lists of capacity ``k``;
2. the first ``k`` updates only fill the lists;
3. once the lists are full, every further arrival triggers an emission: the
   proxy draws one element *uniformly at random* from each layer list,
   composes them into an outgoing update for the server, and stores the
   incoming update's layers in the freed slots;
4. at the end of a round :meth:`MixNNProxy.flush` drains the lists so every
   (participant, layer) piece is forwarded exactly once — the condition the
   §4.2 utility-equivalence proof needs.

The server-side identity of an emitted update (``apparent_id``) is the oldest
participant whose update entered the proxy and has not yet been attributed —
i.e. what a server correlating arrival order would assume.  Inference
accuracy under MixNN is scored against these apparent identities.

Layer lists use :class:`~repro.mixnn.oram.ObliviousList` so the slot access
pattern does not leak which participant's layer was selected, and all
decryption/storage/mixing work is charged to the enclave's cost model.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from ..federated.update import ModelUpdate
from ..nn.serialization import schema_of
from .enclave import SGXEnclaveSim, UpdateDecryptError
from .mixing import _mixing_units
from .oram import ObliviousList
from .transport import EncryptedUpdate, IntegrityError, envelope_nonce, pack_update, unpack_update

__all__ = ["MixNNProxy", "ProxyStats", "ReplayError"]


class ReplayError(Exception):
    """A ciphertext for an already-seen ``(sender, round)`` nonce arrived.

    Without this guard a replayed upload would double-buffer its layer
    pieces, letting one participant occupy two slots of every ``k``-list —
    a cheap amplification primitive for a Byzantine sender.
    """


@dataclass
class ProxyStats:
    """Operational counters for the systems evaluation (§6.5)."""

    received: int = 0
    emitted: int = 0
    flushes: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: abrupt restarts simulated via :meth:`MixNNProxy.crash`
    crashes: int = 0
    #: poisoned ciphertexts skipped (genuine per-item decrypt failures)
    decrypt_failures: int = 0
    #: duplicate ``(sender, round)`` uploads refused by the replay guard
    replays_rejected: int = 0


class MixNNProxy:
    """Streaming layer-mixing proxy hosted in a (simulated) SGX enclave."""

    def __init__(
        self,
        enclave: SGXEnclaveSim | None = None,
        k: int = 4,
        rng: np.random.Generator | None = None,
        granularity: str = "layer",
        max_workers: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"list capacity k must be >= 1, got {k}")
        self.enclave = enclave or SGXEnclaveSim()
        self.k = k
        self.rng = rng or np.random.default_rng()
        self.granularity = granularity
        #: decryption-pool width for :meth:`process_round`; ``None`` = auto.
        self.max_workers = max_workers
        self.stats = ProxyStats()
        # Lazily keyed off the first update's schema.
        self._units: list[tuple[str, ...]] | None = None
        self._schema: tuple[str, ...] | None = None
        # Flat-plane contract of the configured model; set with the schema.
        self._state_schema = None
        # Raw float32 footprint of one update (constant per schema).
        self._update_nbytes = 0
        # For each schema name, (unit index, index within the unit) — lets
        # _compose assemble an emitted state in schema order in one pass.
        self._compose_index: list[tuple[int, int]] = []
        self._lists: "OrderedDict[int, ObliviousList]" = OrderedDict()
        self._pending_ids: deque[int] = deque()
        self._round_index = 0
        # sender_id -> buffered (not yet emitted) layer pieces; drives the
        # intact/partial split when the proxy crashes with state in flight.
        self._piece_counts: dict[int, int] = {}
        # Envelope nonces already ingested (replay guard).  In-memory only:
        # a crash/restart loses it, which is why failover retransmissions to
        # a restarted proxy are accepted rather than mistaken for replays.
        self._seen_nonces: set = set()
        #: fault plane hooks (attached by the defense; ``None`` = fault-free)
        self.fault_injector = None
        self.fault_ledger = None

    # ------------------------------------------------------------------
    # Participant-facing helpers
    # ------------------------------------------------------------------
    @property
    def public_key(self):
        return self.enclave.public_key

    def encrypt_for_proxy(self, update: ModelUpdate) -> EncryptedUpdate:
        """What a participant's device does before upload."""
        return pack_update(update, self.public_key)

    # ------------------------------------------------------------------
    # Internal schema handling
    # ------------------------------------------------------------------
    def _ensure_schema(self, update: ModelUpdate) -> None:
        if self._schema is None:
            self._schema = update.parameter_names
            self._state_schema = schema_of(update.state)
            self._update_nbytes = 4 * self._state_schema.total_size
            self._units = [tuple(u) for u in _mixing_units(update, self.granularity)]
            position = {
                name: (unit_index, member_index)
                for unit_index, unit in enumerate(self._units)
                for member_index, name in enumerate(unit)
            }
            self._compose_index = [position[name] for name in self._schema]
            self._lists = OrderedDict((i, ObliviousList(self.k)) for i in range(len(self._units)))
        elif update.parameter_names != self._schema:
            raise KeyError("update schema differs from the proxy's configured model")

    def _store(self, update: ModelUpdate) -> None:
        state = update.state
        # Each buffered piece carries its source update's staleness so a
        # chimera emission can be down-weighted *per layer* at aggregation
        # (the MixNN staleness passthrough: without it, per-update staleness
        # dies here and mixed async updates aggregate at full weight).
        staleness = int(update.metadata.get("staleness", 0))
        # The envelope's provenance digest rides with every piece so chimera
        # emissions can name the digest of each layer's source update.
        digest = update.metadata.get("digest")
        for unit_index, unit in enumerate(self._units):
            piece = tuple(state[name] for name in unit)
            self._lists[unit_index].insert((piece, update.sender_id, staleness, digest))
        self._pending_ids.append(update.sender_id)
        self._piece_counts[update.sender_id] = (
            self._piece_counts.get(update.sender_id, 0) + len(self._units)
        )

    def _compose(self) -> ModelUpdate:
        """Draw one random element per layer list and emit a mixed update."""
        pieces: list[tuple] = []
        sources: list[int] = []
        unit_staleness: list[int] = []
        unit_digests: list = []
        for unit_index in range(len(self._units)):
            layer_list = self._lists[unit_index]
            choice = int(self.rng.integers(len(layer_list)))
            piece, source, staleness, digest = layer_list.take(choice)
            sources.append(source)
            unit_staleness.append(staleness)
            unit_digests.append(digest)
            pieces.append(piece)
            remaining = self._piece_counts.get(source, 0) - 1
            if remaining > 0:
                self._piece_counts[source] = remaining
            else:
                self._piece_counts.pop(source, None)
        state: "OrderedDict[str, np.ndarray]" = OrderedDict(
            (name, pieces[unit_index][member_index])
            for name, (unit_index, member_index) in zip(self._schema, self._compose_index)
        )
        apparent = self._pending_ids.popleft()
        metadata = {"mixed": True, "granularity": self.granularity, "unit_sources": sources}
        if any(d is not None for d in unit_digests):
            # Per-unit provenance: the digest of each layer's source update,
            # aligned with ``unit_sources`` — a post-hoc audit can tie every
            # chimera layer back to the envelope that carried it.
            metadata["unit_digests"] = unit_digests
        if any(unit_staleness):
            # Per-parameter staleness vector: every layer of the chimera is
            # discounted by its *own* source's lateness, not a blanket value.
            metadata["param_staleness"] = {
                name: unit_staleness[unit_index]
                for unit_index, unit in enumerate(self._units)
                for name in unit
            }
            metadata["staleness"] = max(unit_staleness)
        emitted = ModelUpdate(
            sender_id=-1,
            apparent_id=apparent,
            round_index=self._round_index,
            state=state,
            metadata=metadata,
        )
        self.stats.emitted += 1
        self.stats.bytes_out += self._update_nbytes
        self.enclave.free(self._update_nbytes)
        return emitted

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def receive(self, message: EncryptedUpdate) -> ModelUpdate | None:
        """Process one encrypted arrival; emit a mixed update once warm.

        Returns ``None`` during the initial fill of the ``k``-lists (§4.3:
        "the proxy needs to initialize first each list with k updates before
        to send updates").
        """
        plaintext = self.enclave.decrypt_update(message.ciphertext)
        return self._ingest(plaintext, len(message.ciphertext))

    def _ingest(self, plaintext: bytes, ciphertext_len: int) -> ModelUpdate | None:
        """Parse one decrypted message and run the §4.3 store/emit step.

        Raises :class:`~repro.mixnn.transport.IntegrityError` when the
        envelope's nonce does not match its claimed ``(sender, round)`` and
        :class:`ReplayError` (counted in ``stats.replays_rejected``) when the
        nonce was already ingested — both before any layer piece is buffered,
        so a rejected message leaves the mixing state untouched.
        """
        update = unpack_update(plaintext)
        nonce = update.metadata.get("nonce")
        if nonce is not None and nonce != envelope_nonce(update.sender_id, update.round_index):
            self.enclave.free(len(plaintext))
            raise IntegrityError(
                f"envelope nonce does not bind to (sender {update.sender_id}, "
                f"round {update.round_index}) — forged or mis-bound envelope"
            )
        replay_key = nonce if nonce is not None else (update.sender_id, update.round_index)
        if replay_key in self._seen_nonces:
            self.enclave.free(len(plaintext))
            self.stats.replays_rejected += 1
            raise ReplayError(
                f"duplicate upload for sender {update.sender_id} round "
                f"{update.round_index}: replay rejected"
            )
        self._seen_nonces.add(replay_key)
        self._ensure_schema(update)
        # Re-account: the serialized blob is replaced by the parsed arrays.
        self.enclave.free(len(plaintext))
        self.enclave.allocate(self._update_nbytes)
        self._round_index = update.round_index
        self.stats.received += 1
        self.stats.bytes_in += ciphertext_len

        if not self._lists[0].full:
            self._store(update)
            return None
        # Lists full: emit first (frees one slot per list), then store.
        self.enclave.charge_mixing(1)
        emitted = self._compose()
        self._store(update)
        return emitted

    def resize(self, k: int) -> None:
        """Re-size the layer lists between rounds (churn adaptation).

        Under client churn the surviving cohort varies per round; a proxy
        configured for full-round buffering must follow it so the §4.2 case
        ``L = C`` keeps holding for whatever subset actually arrives.  Only
        legal while the lists are drained (i.e. after :meth:`flush`) — a
        resize must never drop or duplicate a buffered layer piece.
        """
        if k < 1:
            raise ValueError(f"list capacity k must be >= 1, got {k}")
        if self.pending() > 0:
            raise RuntimeError(
                f"cannot resize with {self.pending()} updates still buffered; flush first"
            )
        self.k = k
        if self._units is not None:
            self._lists = OrderedDict((i, ObliviousList(k)) for i in range(len(self._units)))

    def flush(self) -> list[ModelUpdate]:
        """Drain the layer lists at the end of a round.

        Guarantees every stored (participant, layer) piece is forwarded
        exactly once, preserving the aggregate (§4.2).
        """
        out: list[ModelUpdate] = []
        while self._lists and len(self._lists[0]) > 0:
            self.enclave.charge_mixing(1)
            out.append(self._compose())
        self.stats.flushes += 1
        return out

    def stream(
        self, messages: list[EncryptedUpdate], round_hint: int | None = None
    ) -> list[ModelUpdate]:
        """Ingest a batch of messages through the decryption pool, no flush.

        Ciphertexts are decrypted concurrently (:meth:`SGXEnclaveSim.decrypt_many`
        — the DEM and MAC release the GIL), while the §4.3 mixing state machine
        itself runs in message order, so the emission sequence and RNG draws
        are identical to calling :meth:`receive` one message at a time.  The
        EPC accounting honestly reflects the batch buffering: all decrypted
        plaintexts are resident at once before ingestion begins.

        A poisoned ciphertext is skipped (``stats.decrypt_failures``) instead
        of killing the batch; with the fault plane attached, injected enclave
        faults retry with backoff, charging each retry's decrypt cost and
        recording a ledger entry.  ``round_hint`` keys those fault draws.
        """
        results = self.enclave.decrypt_many(
            [message.ciphertext for message in messages],
            max_workers=self.max_workers,
            ids=[message.transport_id for message in messages],
            on_error="collect",
        )
        injector, ledger = self.fault_injector, self.fault_ledger
        emitted: list[ModelUpdate] = []
        for message, result in zip(messages, results):
            if isinstance(result, UpdateDecryptError):
                self.stats.decrypt_failures += 1
                continue
            if injector is not None and injector.config.enclave_failure_rate > 0:
                round_index = round_hint if round_hint is not None else self._round_index
                for attempt in range(injector.config.max_attempts):
                    if not injector.enclave_fault(message.transport_id, round_index, attempt):
                        break
                    delay = injector.backoff(
                        "enclave", message.transport_id, round_index, attempt
                    )
                    ledger.record(
                        "enclave",
                        message.transport_id,
                        round_index,
                        attempt,
                        "retried",
                        delay_seconds=delay,
                    )
                    # Each retry re-runs the in-enclave decrypt.
                    self._charge_retry(len(message.ciphertext))
            try:
                maybe = self._ingest(result, len(message.ciphertext))
            except ReplayError:
                # Already counted in stats.replays_rejected; the duplicate is
                # dropped and the batch keeps streaming.
                continue
            if maybe is not None:
                emitted.append(maybe)
        return emitted

    def _charge_retry(self, ciphertext_len: int) -> None:
        self.enclave._charge(self.enclave.cost_model.decrypt_cost(ciphertext_len))

    def crash(self) -> tuple[list[int], list[int]]:
        """Simulate an abrupt proxy restart: buffered layer pieces are lost.

        Returns ``(intact, partial)`` sender ids: *intact* senders still had
        every layer piece buffered (nothing of theirs was emitted, so they
        can safely retransmit their whole update to a failover proxy);
        *partial* senders had some pieces already mixed into emissions —
        their remaining pieces are unrecoverable without double-forwarding
        already-delivered layers, so a failover coordinator drops them (the
        quorum policy absorbs the loss).  In full-round mode (``k`` = cohort)
        nothing emits before the flush, so every buffered sender is intact
        and the §4.2 aggregate is exactly preserved across the failover.
        """
        num_units = len(self._units) if self._units else 0
        intact = sorted(s for s, c in self._piece_counts.items() if num_units and c == num_units)
        partial = sorted(s for s, c in self._piece_counts.items() if 0 < c < num_units)
        total_pieces = sum(self._piece_counts.values())
        if num_units and total_pieces:
            self.enclave.free(int(round(self._update_nbytes * total_pieces / num_units)))
        if self._units is not None:
            self._lists = OrderedDict((i, ObliviousList(self.k)) for i in range(len(self._units)))
        self._pending_ids.clear()
        self._piece_counts = {}
        # A restarted proxy has lost its in-memory nonce cache: failover
        # retransmissions of the same (sender, round) must be accepted.
        self._seen_nonces.clear()
        self.stats.crashes += 1
        return intact, partial

    def process_round(
        self, messages: list[EncryptedUpdate], round_hint: int | None = None
    ) -> list[ModelUpdate]:
        """Stream a whole round's messages, then flush.

        With ``C`` arrivals this emits exactly ``C`` mixed updates
        (``C − k`` during streaming, ``k`` at flush), i.e. the §4.2 case
        ``L = C``.
        """
        emitted = self.stream(messages, round_hint=round_hint)
        emitted.extend(self.flush())
        return emitted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of updates currently buffered."""
        return len(self._lists[0]) if self._lists else 0

    def __repr__(self) -> str:
        return f"MixNNProxy(k={self.k}, granularity={self.granularity!r}, pending={self.pending()})"
