"""Hybrid encryption for participant→enclave traffic.

Participants encrypt their parameter updates with the enclave's public key so
only the MixNN proxy can read them (§4.1/§4.3).  This module implements the
whole scheme from scratch on the standard library:

* **KEM** — textbook RSA (Miller–Rabin prime generation, ``e = 65537``) with
  random pre-key padding; the RSA-encrypted value is a fresh 256-bit session
  key per message;
* **DEM** — a SHA-256-based counter-mode stream cipher under the session key;
* **Integrity** — HMAC-SHA256 over nonce and ciphertext (encrypt-then-MAC).

The DEM hot path is vectorized: keystream blocks are generated in bulk (a
JIT-compiled fused keystream+XOR over OpenSSL when available, else batched
``hashlib`` midstate forks XORed via ``np.bitwise_xor``), producing bytes
identical to the original per-block reference implementation, which is kept
and cross-checked by :func:`selftest`.

This is a *functional reproduction* of the pipeline (sizes, flow and failure
modes), adequate for the systems evaluation it supports.  It is **not**
audited, constant-time, production cryptography — a real deployment would use
RSA-OAEP/HPKE from a vetted library.
"""

from __future__ import annotations

import functools
import hashlib
import hmac as hmac_mod
import secrets
from dataclasses import dataclass

import numpy as np

from ..utils import native

__all__ = [
    "KeyPair",
    "PublicKey",
    "encrypt",
    "decrypt",
    "stream_xor",
    "selftest",
    "CryptoError",
    "generate_keypair",
    "process_keypair",
]

_E = 65537
_SESSION_KEY_BYTES = 32
_NONCE_BYTES = 16


class CryptoError(Exception):
    """Raised on malformed or tampered ciphertexts."""


# ----------------------------------------------------------------------
# Prime generation (Miller–Rabin)
# ----------------------------------------------------------------------
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71]


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int = _E

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short identifier used in attestation reports."""
        digest = hashlib.sha256(self.n.to_bytes(self.modulus_bytes, "big")).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class KeyPair:
    """RSA key pair held by the enclave (private exponent never leaves it).

    ``p``/``q`` are optional: when the factorization is known the private
    operation uses the CRT (two half-size exponentiations, ~3× faster); a
    key pair built from ``(public, d)`` alone still decrypts via plain
    ``pow(c, d, n)``.
    """

    public: PublicKey
    d: int  # private exponent
    p: int | None = None
    q: int | None = None

    @property
    def n(self) -> int:
        return self.public.n

    def private_op(self, c: int) -> int:
        """Compute ``c^d mod n``, via CRT when the factors are available."""
        if self.p is None or self.q is None:
            return pow(c, self.d, self.n)
        p, q = self.p, self.q
        mp = pow(c % p, self.d % (p - 1), p)
        mq = pow(c % q, self.d % (q - 1), q)
        h = (pow(q, -1, p) * (mp - mq)) % p
        return mq + h * q


def process_keypair(bits: int = 1024) -> KeyPair:
    """A process-wide cached key pair for simulation components.

    Prime generation costs ~0.2 s; experiment sweeps and test suites that
    build many enclaves share one key pair through this helper.  Anything
    modelling *distinct* enclaves should call :func:`generate_keypair`.
    """
    return _cached_keypair(bits)


@functools.lru_cache(maxsize=4)
def _cached_keypair(bits: int) -> KeyPair:
    return generate_keypair(bits)


def generate_keypair(bits: int = 1024) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 512:
        raise ValueError(f"modulus must be at least 512 bits, got {bits}")
    half = bits // 2
    while True:
        p = _random_prime(half)
        q = _random_prime(bits - half)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _E == 0:
            continue
        d = pow(_E, -1, phi)
        return KeyPair(public=PublicKey(n=n), d=d, p=p, q=q)


# ----------------------------------------------------------------------
# Stream cipher + MAC
# ----------------------------------------------------------------------
def _keystream_reference(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream — one block per ``hashlib`` call.

    The original (pre-vectorization) implementation, kept as the ground
    truth the fast paths are checked against (:func:`selftest`) and as the
    last-resort fallback.
    """
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _xor_reference(data: bytes, stream: bytes) -> bytes:
    """Byte-by-byte XOR — the original generator implementation."""
    return bytes(a ^ b for a, b in zip(data, stream))


def _keystream_bulk(key: bytes, nonce: bytes, length: int) -> bytes:
    """Same keystream bytes as :func:`_keystream_reference`, generated in bulk.

    All counters are materialized as one big-endian ``uint64`` buffer up
    front, and each block hash reuses a copy of the midstate of
    ``SHA256(key || nonce)`` instead of re-feeding the 48-byte prefix.
    """
    if length <= 0:
        return b""
    nblocks = -(-length // 32)
    counters = np.arange(nblocks, dtype=">u8").tobytes()
    fork = hashlib.sha256(key + nonce).copy
    pieces = []
    append = pieces.append
    for offset in range(0, nblocks * 8, 8):
        block = fork()
        block.update(counters[offset : offset + 8])
        append(block.digest())
    return b"".join(pieces)[:length]


def _xor_bulk(data: bytes, stream: bytes) -> bytes:
    """Vectorized XOR over ``uint8`` views of both buffers."""
    out = np.bitwise_xor(
        np.frombuffer(data, dtype=np.uint8), np.frombuffer(stream, dtype=np.uint8)
    )
    return out.tobytes()


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with the SHA-256 CTR keystream (involution).

    Produces bytes identical to ``_xor_reference(data, _keystream_reference(...))``
    — the wire format is unchanged — but via the fused native keystream+XOR
    when available, else the bulk hashlib + ``np.bitwise_xor`` path.
    """
    if not data:
        return b""
    if native.load() is not None:
        return native.ctr_sha256_xor(key + nonce, data)
    return _xor_bulk(data, _keystream_bulk(key, nonce, len(data)))


def selftest() -> bool:
    """Cross-check every keystream/XOR path against the reference implementation.

    Exercised at module scale (empty, sub-block, block-aligned and multi-block
    lengths).  Raises :class:`CryptoError` on any divergence.
    """
    for length in (0, 1, 31, 32, 33, 64, 100, 1023, 4096):
        key = hashlib.sha256(b"selftest-key%d" % length).digest()
        nonce = hashlib.sha256(b"selftest-nonce%d" % length).digest()[:_NONCE_BYTES]
        data = (hashlib.sha256(b"selftest-data%d" % length).digest() * (length // 32 + 1))[:length]
        expected = _xor_reference(data, _keystream_reference(key, nonce, length))
        if stream_xor(key, nonce, data) != expected:
            raise CryptoError(f"stream_xor diverges from reference at length {length}")
        if _xor_bulk(data, _keystream_bulk(key, nonce, length)) != expected and length > 0:
            raise CryptoError(f"bulk path diverges from reference at length {length}")
        if native.available() and length > 0:
            if native.ctr_sha256_xor(key + nonce, data) != expected:
                raise CryptoError(f"native path diverges from reference at length {length}")
    return True


def _mac(key: bytes, *parts: bytes) -> bytes:
    tag = hmac_mod.new(key, digestmod=hashlib.sha256)
    for part in parts:
        tag.update(part)
    return tag.digest()


# ----------------------------------------------------------------------
# Hybrid encrypt / decrypt
# ----------------------------------------------------------------------
def encrypt(public: PublicKey, plaintext: bytes) -> bytes:
    """Encrypt ``plaintext`` to the enclave's public key.

    Wire format: ``len(kem) || kem || nonce || mac || body``.
    """
    session_key = secrets.token_bytes(_SESSION_KEY_BYTES)
    # Random pre-key padding so identical session keys never repeat as ints.
    padding = secrets.token_bytes(public.modulus_bytes - _SESSION_KEY_BYTES - 3)
    padded = b"\x00\x02" + padding + b"\x00" + session_key
    m = int.from_bytes(padded, "big")
    if m >= public.n:
        raise CryptoError("padded key does not fit the modulus")
    kem = pow(m, public.e, public.n).to_bytes(public.modulus_bytes, "big")
    nonce = secrets.token_bytes(_NONCE_BYTES)
    enc_key = hashlib.sha256(session_key + b"enc").digest()
    mac_key = hashlib.sha256(session_key + b"mac").digest()
    body = stream_xor(enc_key, nonce, plaintext)
    mac = _mac(mac_key, nonce, body)
    return len(kem).to_bytes(2, "big") + kem + nonce + mac + body


def decrypt(keypair: KeyPair, ciphertext: bytes) -> bytes:
    """Decrypt a message produced by :func:`encrypt`; raises on tampering."""
    try:
        kem_len = int.from_bytes(ciphertext[:2], "big")
        kem = ciphertext[2 : 2 + kem_len]
        offset = 2 + kem_len
        nonce = ciphertext[offset : offset + _NONCE_BYTES]
        mac = ciphertext[offset + _NONCE_BYTES : offset + _NONCE_BYTES + 32]
        body = ciphertext[offset + _NONCE_BYTES + 32 :]
        if len(kem) != kem_len or len(nonce) != _NONCE_BYTES or len(mac) != 32:
            raise CryptoError("truncated ciphertext")
    except (IndexError, OverflowError) as exc:
        raise CryptoError("malformed ciphertext") from exc
    padded = keypair.private_op(int.from_bytes(kem, "big"))
    raw = padded.to_bytes(keypair.public.modulus_bytes, "big")
    if raw[:2] != b"\x00\x02":
        raise CryptoError("KEM padding check failed")
    session_key = raw[-_SESSION_KEY_BYTES:]
    enc_key = hashlib.sha256(session_key + b"enc").digest()
    mac_key = hashlib.sha256(session_key + b"mac").digest()
    expected = _mac(mac_key, nonce, body)
    if not hmac_mod.compare_digest(mac, expected):
        raise CryptoError("MAC verification failed (tampered message)")
    return stream_xor(enc_key, nonce, body)
