"""Intel SGX enclave simulator.

The MixNN proxy runs inside an SGX enclave (§2.5, §4.3).  No SGX hardware is
available here, so this module simulates the enclave properties the paper's
systems evaluation (§6.5) depends on:

* **EPC memory budget** — 96 MB usable out of the 128 MB reservation; loads
  beyond the budget trigger paging, charged with a sealing/unsealing cost
  (the paper notes paging "incurs significant overheads");
* **attestation** — a quote binding a measurement of the proxy code identity
  and the enclave's public key, verifiable by participants before they send
  updates;
* **sealing** — persisting secrets outside the enclave under a key derived
  from a simulated CPU secret;
* **cost model** — per-byte decryption and store charges plus a per-item mix
  charge, calibrated against the paper's reported numbers (0.17 s decrypt /
  0.02 s store per 26.9 MB update, 0.03 s mixing), and a *constant-time mode*
  that pads every update's processing cost to the worst case, the paper's
  side-channel countermeasure.

Simulated time is tracked on an internal clock, so latency experiments are
deterministic and hardware-independent; wall-clock measurement of the real
Python implementation lives in the benchmark harness instead.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import secrets
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .crypto import CryptoError, KeyPair, decrypt, generate_keypair, stream_xor

__all__ = [
    "EnclaveCostModel",
    "AttestationQuote",
    "EnclaveError",
    "UpdateDecryptError",
    "SGXEnclaveSim",
    "EPC_USABLE_BYTES",
    "EPC_RESERVED_BYTES",
]

#: SGX v1 EPC figures quoted in §2.5.
EPC_RESERVED_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = 96 * 1024 * 1024


class EnclaveError(Exception):
    """Raised on attestation failures and protocol misuse."""


class UpdateDecryptError(CryptoError):
    """One item of a decrypt batch failed, identified by its client.

    Subclasses :class:`~repro.mixnn.crypto.CryptoError` so callers catching
    the crypto failure keep working, while batch consumers can read which
    client's ciphertext was poisoned (``item_id``, ``index``) and skip just
    that item instead of losing the whole round.
    """

    def __init__(self, item_id, index: int, cause: Exception) -> None:
        super().__init__(f"ciphertext from client {item_id} (batch index {index}) failed: {cause}")
        self.item_id = item_id
        self.index = index
        self.cause = cause


@dataclass(frozen=True)
class EnclaveCostModel:
    """Per-operation simulated costs (affine: fixed cost + per-MB slope).

    Calibrated against both §6.5 data points — (26.9 MB, 0.19 s) and
    (51.3 MB, 0.22 s) — which imply a large fixed component (KEM + enclave
    transition) and a small per-byte slope: decrypting a 26.9 MB update costs
    ≈0.17 s and storing it ≈0.02 s; a mixing pass costs ≈0.03 s.
    """

    decrypt_seconds_fixed: float = 0.150
    decrypt_seconds_per_mb: float = 0.00074
    store_seconds_fixed: float = 0.007
    store_seconds_per_mb: float = 0.00049
    mix_seconds_per_update: float = 0.03
    paging_seconds_per_mb: float = 0.05  # seal + unseal round trip
    attestation_seconds: float = 0.005

    def decrypt_cost(self, num_bytes: int) -> float:
        return self.decrypt_seconds_fixed + self.decrypt_seconds_per_mb * num_bytes / 2**20

    def store_cost(self, num_bytes: int) -> float:
        return self.store_seconds_fixed + self.store_seconds_per_mb * num_bytes / 2**20

    def paging_cost(self, num_bytes: int) -> float:
        return self.paging_seconds_per_mb * num_bytes / 2**20


@dataclass(frozen=True)
class AttestationQuote:
    """Simulated SGX quote: code measurement + key binding + signature."""

    measurement: str
    public_key_fingerprint: str
    nonce: bytes
    signature: bytes


@dataclass
class _MemoryAccount:
    """EPC usage bookkeeping."""

    used_bytes: int = 0
    peak_bytes: int = 0
    page_faults: int = 0
    sealed_out_bytes: int = 0


class SGXEnclaveSim:
    """A simulated enclave hosting the MixNN proxy logic."""

    def __init__(
        self,
        code_identity: str = "mixnn-proxy-v1",
        cost_model: EnclaveCostModel | None = None,
        epc_budget_bytes: int = EPC_USABLE_BYTES,
        constant_time: bool = True,
        keypair: KeyPair | None = None,
    ) -> None:
        self.code_identity = code_identity
        self.cost_model = cost_model or EnclaveCostModel()
        self.epc_budget_bytes = epc_budget_bytes
        self.constant_time = constant_time
        self.keypair = keypair or generate_keypair()
        self.memory = _MemoryAccount()
        self.clock_seconds = 0.0
        self._worst_case_seconds = 0.0
        # Simulated per-CPU secret used for sealing and quote signing.
        self._platform_secret = secrets.token_bytes(32)
        self._measurement = hashlib.sha256(code_identity.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Attestation
    # ------------------------------------------------------------------
    @property
    def public_key(self):
        return self.keypair.public

    def quote(self, nonce: bytes) -> AttestationQuote:
        """Produce an attestation quote for a verifier-chosen nonce."""
        self.clock_seconds += self.cost_model.attestation_seconds
        payload = self._measurement.encode() + self.public_key.fingerprint().encode() + nonce
        signature = hmac.new(self._platform_secret, payload, hashlib.sha256).digest()
        return AttestationQuote(
            measurement=self._measurement,
            public_key_fingerprint=self.public_key.fingerprint(),
            nonce=nonce,
            signature=signature,
        )

    def verify_quote(self, quote: AttestationQuote, expected_identity: str) -> bool:
        """Simulated IAS verification: measurement + signature check.

        In real SGX the Intel Attestation Service validates the signature
        chain; the simulator plays both roles with the platform secret.
        """
        expected_measurement = hashlib.sha256(expected_identity.encode()).hexdigest()
        if quote.measurement != expected_measurement:
            return False
        payload = quote.measurement.encode() + quote.public_key_fingerprint.encode() + quote.nonce
        expected = hmac.new(self._platform_secret, payload, hashlib.sha256).digest()
        return hmac.compare_digest(quote.signature, expected)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def allocate(self, num_bytes: int) -> None:
        """Charge an allocation; spill to sealed storage past the EPC budget."""
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.memory.used_bytes += num_bytes
        self.memory.peak_bytes = max(self.memory.peak_bytes, self.memory.used_bytes)
        overflow = self.memory.used_bytes - self.epc_budget_bytes
        if overflow > 0:
            self.memory.page_faults += 1
            self.memory.sealed_out_bytes += overflow
            self.clock_seconds += self.cost_model.paging_cost(overflow)

    def free(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("free size must be non-negative")
        self.memory.used_bytes = max(0, self.memory.used_bytes - num_bytes)

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def seal(self, data: bytes) -> bytes:
        """Seal ``data`` for storage outside the enclave (key never leaves)."""
        nonce = secrets.token_bytes(16)
        key = hashlib.sha256(self._platform_secret + b"seal").digest()
        body = stream_xor(key, nonce, data)
        tag = hmac.new(key, nonce + body, hashlib.sha256).digest()
        return nonce + tag + body

    def unseal(self, blob: bytes) -> bytes:
        nonce, tag, body = blob[:16], blob[16:48], blob[48:]
        key = hashlib.sha256(self._platform_secret + b"seal").digest()
        expected = hmac.new(key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise EnclaveError("sealed blob failed integrity check")
        return stream_xor(key, nonce, body)

    # ------------------------------------------------------------------
    # Update processing (cost-modelled)
    # ------------------------------------------------------------------
    def decrypt_update(self, ciphertext: bytes) -> bytes:
        """Decrypt an incoming update inside the enclave, charging cost.

        In constant-time mode the charged cost is padded to the largest
        update processed so far, the §4.3 side-channel countermeasure
        ("the execution time to process an update is constantly the same").
        """
        try:
            plaintext = decrypt(self.keypair, ciphertext)
        except CryptoError:
            # A failed decrypt costs the same as a successful one.
            self._charge(self.cost_model.decrypt_cost(len(ciphertext)))
            raise
        cost = self.cost_model.decrypt_cost(len(ciphertext)) + self.cost_model.store_cost(len(plaintext))
        self._charge(cost)
        self.allocate(len(plaintext))
        return plaintext

    def decrypt_many(
        self,
        ciphertexts: list[bytes],
        max_workers: int | None = None,
        ids: list | None = None,
        on_error: str = "raise",
    ) -> list:
        """Decrypt a batch of updates, raising throughput with a thread pool.

        The RSA-KEM, the fused native keystream and the HMAC all release the
        GIL (big-int ``pow`` aside), so concurrent decryption scales on real
        cores.  Accounting stays deterministic: costs are charged and memory
        allocated serially in *message order* after all plaintexts are
        recovered, so the simulated clock and EPC counters are bit-identical
        to a sequential run.

        ``ids`` labels each item (e.g. transport-level client ids) for error
        reporting; it defaults to the batch index.  Failures surface
        *per item* as :class:`UpdateDecryptError` naming the offending
        client: ``on_error="raise"`` raises at the first bad item,
        ``on_error="collect"`` returns the error object in that item's slot
        so one poisoned ciphertext cannot kill the whole batch.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(f'on_error must be "raise" or "collect", got {on_error!r}')
        if ids is None:
            ids = list(range(len(ciphertexts)))
        elif len(ids) != len(ciphertexts):
            raise ValueError(f"{len(ids)} ids for {len(ciphertexts)} ciphertexts")
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers <= 1 or len(ciphertexts) <= 1:
            results = [self._decrypt_only(c) for c in ciphertexts]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                results = list(pool.map(self._decrypt_only, ciphertexts))
        out: list = []
        for index, (ciphertext, item_id, (plaintext, error)) in enumerate(
            zip(ciphertexts, ids, results)
        ):
            if error is not None:
                # A failed decrypt costs the same as a successful one.
                self._charge(self.cost_model.decrypt_cost(len(ciphertext)))
                wrapped = UpdateDecryptError(item_id, index, error)
                if on_error == "raise":
                    raise wrapped from error
                out.append(wrapped)
                continue
            cost = self.cost_model.decrypt_cost(len(ciphertext)) + self.cost_model.store_cost(len(plaintext))
            self._charge(cost)
            self.allocate(len(plaintext))
            out.append(plaintext)
        return out

    def _decrypt_only(self, ciphertext: bytes) -> tuple[bytes | None, CryptoError | None]:
        """Pure crypto work, safe to run off-thread (no shared-state writes)."""
        try:
            return decrypt(self.keypair, ciphertext), None
        except CryptoError as exc:
            return None, exc

    def charge_mixing(self, num_updates: int) -> None:
        self.clock_seconds += self.cost_model.mix_seconds_per_update * max(1, num_updates)

    def _charge(self, cost: float) -> None:
        if self.constant_time:
            self._worst_case_seconds = max(self._worst_case_seconds, cost)
            self.clock_seconds += self._worst_case_seconds
        else:
            self.clock_seconds += cost

    def stats(self) -> dict:
        """Snapshot of the simulated clock and memory counters."""
        return {
            "clock_seconds": self.clock_seconds,
            "used_bytes": self.memory.used_bytes,
            "peak_bytes": self.memory.peak_bytes,
            "page_faults": self.memory.page_faults,
            "sealed_out_bytes": self.memory.sealed_out_bytes,
        }
