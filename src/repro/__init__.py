"""MixNN reproduction.

A from-scratch Python implementation of *MixNN: Protection of Federated
Learning Against Inference Attacks by Mixing Neural Network Layers*
(MIDDLEWARE 2022) and of the ∇Sim attribute-inference attack it evaluates,
including every substrate the paper depends on: a numpy autograd
neural-network engine, federated-learning simulation, synthetic stand-ins for
the four evaluation datasets, hybrid encryption, and an SGX-enclave
simulator.

Quickstart::

    from repro.data import SyntheticMotionSense
    from repro.defenses import MixNNDefense
    from repro.experiments.config import params_for
    from repro.experiments.models import model_fn_for
    from repro.federated import FederatedSimulation

    dataset = SyntheticMotionSense(seed=0)
    params = params_for("motionsense")
    sim = FederatedSimulation(
        dataset, model_fn_for(dataset), params.simulation_config(), defense=MixNNDefense()
    )
    result = sim.run()
    print(result.accuracy_curve())
"""

__version__ = "1.0.0"

__all__ = ["nn", "data", "federated", "mixnn", "attacks", "defenses", "metrics", "experiments"]
