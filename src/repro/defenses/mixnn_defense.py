"""MixNN as a pluggable defense.

Wires the full participant-side pipeline into the
:class:`~repro.defenses.base.Defense` interface: attestation of the proxy
enclave, per-update hybrid encryption, streaming through the proxy's
``k``-lists, and emission of mixed updates to the aggregation server.
"""

from __future__ import annotations

import secrets

import numpy as np

from ..federated.update import ModelUpdate
from ..mixnn.enclave import EnclaveError, SGXEnclaveSim
from ..mixnn.proxy import MixNNProxy
from .base import Defense

__all__ = ["MixNNDefense"]


class MixNNDefense(Defense):
    """Route each round's updates through a MixNN proxy.

    ``k`` is the proxy's list capacity (§4.3).  The default ``k=None`` sizes
    the lists to the round's full cohort — the §4.2 setting ``L = C`` under
    which the utility-equivalence proof holds and which the paper's privacy
    evaluation assumes.  A small explicit ``k`` enables the streaming mode;
    note that a small window *leaks arrival locality* (mixed layers come from
    temporally nearby participants), which the k-sweep ablation benchmark
    quantifies.
    """

    name = "mixnn"

    def __init__(
        self,
        proxy: MixNNProxy | None = None,
        k: int | None = None,
        granularity: str = "layer",
        rng: np.random.Generator | None = None,
        enclave: SGXEnclaveSim | None = None,
        verify_attestation: bool = True,
    ) -> None:
        self.proxy = proxy
        self._k = k
        # Only a proxy this defense builds itself (full-round mode) may track
        # the cohort size; a caller-supplied proxy keeps its configured k.
        self._adaptive_k = proxy is None and k is None
        self._granularity = granularity
        self._rng = rng or np.random.default_rng()
        self._enclave = enclave
        self.verify_attestation = verify_attestation
        self._attested = False

    def _ensure_proxy(self, round_size: int) -> MixNNProxy:
        if self.proxy is None:
            self.proxy = MixNNProxy(
                enclave=self._enclave,
                k=self._k if self._k is not None else round_size,
                rng=self._rng,
                granularity=self._granularity,
            )
        elif self._adaptive_k and round_size >= 1 and self.proxy.k != round_size:
            # Full-round buffering must track the cohort that actually shows
            # up: under churn/stragglers/async the arriving subset varies per
            # round, and the proxy mixes whatever arrives (lists are drained
            # between rounds, so the resize is always legal here).
            self.proxy.resize(round_size)
        return self.proxy

    def _attest(self) -> None:
        """Participant-side check before the first upload (§2.5)."""
        nonce = secrets.token_bytes(16)
        quote = self.proxy.enclave.quote(nonce)
        if not self.proxy.enclave.verify_quote(quote, self.proxy.enclave.code_identity):
            raise EnclaveError("proxy enclave failed attestation; refusing to upload")
        self._attested = True

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        proxy = self._ensure_proxy(len(updates))
        if self.verify_attestation and not self._attested:
            self._attest()
        # Network arrival order at the proxy is arbitrary.
        order = rng.permutation(len(updates))
        messages = [proxy.encrypt_for_proxy(updates[i]) for i in order]
        return proxy.process_round(messages)

    def __repr__(self) -> str:
        if self.proxy is None:
            return f"MixNNDefense(k={self._k}, granularity={self._granularity!r})"
        return f"MixNNDefense(k={self.proxy.k}, granularity={self.proxy.granularity!r})"
