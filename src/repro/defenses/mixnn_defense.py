"""MixNN as a pluggable defense.

Wires the full participant-side pipeline into the
:class:`~repro.defenses.base.Defense` interface: attestation of the proxy
enclave, per-update hybrid encryption, streaming through the proxy's
``k``-lists, and emission of mixed updates to the aggregation server.
"""

from __future__ import annotations

import secrets

import numpy as np

from ..federated.update import ModelUpdate
from ..mixnn.enclave import EnclaveError, SGXEnclaveSim
from ..mixnn.proxy import MixNNProxy
from .base import Defense

__all__ = ["MixNNDefense"]


class MixNNDefense(Defense):
    """Route each round's updates through a MixNN proxy.

    ``k`` is the proxy's list capacity (§4.3).  The default ``k=None`` sizes
    the lists to the round's full cohort — the §4.2 setting ``L = C`` under
    which the utility-equivalence proof holds and which the paper's privacy
    evaluation assumes.  A small explicit ``k`` enables the streaming mode;
    note that a small window *leaks arrival locality* (mixed layers come from
    temporally nearby participants), which the k-sweep ablation benchmark
    quantifies.
    """

    name = "mixnn"

    def __init__(
        self,
        proxy: MixNNProxy | None = None,
        k: int | None = None,
        granularity: str = "layer",
        rng: np.random.Generator | None = None,
        enclave: SGXEnclaveSim | None = None,
        verify_attestation: bool = True,
    ) -> None:
        self.proxy = proxy
        self._k = k
        # Only a proxy this defense builds itself (full-round mode) may track
        # the cohort size; a caller-supplied proxy keeps its configured k.
        self._adaptive_k = proxy is None and k is None
        self._granularity = granularity
        self._rng = rng or np.random.default_rng()
        self._enclave = enclave
        self.verify_attestation = verify_attestation
        self._attested = False

    def attach_fault_plane(self, injector, ledger) -> None:
        super().attach_fault_plane(injector, ledger)
        if self.proxy is not None:
            self.proxy.fault_injector = injector
            self.proxy.fault_ledger = ledger

    def _ensure_proxy(self, round_size: int) -> MixNNProxy:
        if self.proxy is None:
            self.proxy = MixNNProxy(
                enclave=self._enclave,
                k=self._k if self._k is not None else round_size,
                rng=self._rng,
                granularity=self._granularity,
            )
            self.proxy.fault_injector = self._fault_injector
            self.proxy.fault_ledger = self._fault_ledger
        elif self._adaptive_k and round_size >= 1 and self.proxy.k != round_size:
            # Full-round buffering must track the cohort that actually shows
            # up: under churn/stragglers/async the arriving subset varies per
            # round, and the proxy mixes whatever arrives (lists are drained
            # between rounds, so the resize is always legal here).
            self.proxy.resize(round_size)
        return self.proxy

    def _attest(self, round_index: int = 0) -> None:
        """Participant-side check before the first upload (§2.5).

        With the fault plane attached, injected attestation failures retry
        (each failed handshake still costs an enclave quote) until the draw
        clears or the attempt cap is hit; a real verification mismatch still
        raises :class:`EnclaveError`.
        """
        injector, ledger = self._fault_injector, self._fault_ledger
        if injector is not None and injector.config.attestation_failure_rate > 0:
            for attempt in range(injector.config.max_attempts):
                if not injector.attestation_fault(round_index, attempt):
                    break
                delay = injector.backoff("attestation", 0, round_index, attempt)
                ledger.record(
                    "attestation", 0, round_index, attempt, "retried", delay_seconds=delay
                )
                self.proxy.enclave.clock_seconds += (
                    self.proxy.enclave.cost_model.attestation_seconds
                )
        nonce = secrets.token_bytes(16)
        quote = self.proxy.enclave.quote(nonce)
        if not self.proxy.enclave.verify_quote(quote, self.proxy.enclave.code_identity):
            raise EnclaveError("proxy enclave failed attestation; refusing to upload")
        self._attested = True

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        proxy = self._ensure_proxy(len(updates))
        injector = self._fault_injector
        # The freshest update carries the true round: under quorum closure the
        # batch leads with stale carry-forwards, so updates[0] would key the
        # fault draws to the previous round.
        round_index = max((u.round_index for u in updates), default=0)
        if self.verify_attestation and not self._attested:
            self._attest(round_index)
        # Network arrival order at the proxy is arbitrary.
        order = rng.permutation(len(updates))
        ordered = [updates[i] for i in order]
        messages = [proxy.encrypt_for_proxy(u) for u in ordered]
        adversary = self._adversary_injector
        if adversary is not None and adversary.config.replay_rate > 0:
            # A replaying attacker re-sends its own ciphertext verbatim; the
            # proxy's nonce guard rejects the duplicate and counts it, so the
            # ledger records the rejection at injection time (by construction).
            replays = []
            for update, message in zip(ordered, messages):
                if adversary.should_replay(update.sender_id, round_index):
                    replays.append(message)
                    self._adversary_ledger.record(
                        "replay", update.sender_id, round_index, "rejected"
                    )
            messages = messages + replays
        if (
            injector is not None
            and injector.config.proxy_crash_rate > 0
            and injector.proxy_crash(round_index)
        ):
            return self._process_round_with_crash(ordered, messages, round_index)
        return proxy.process_round(messages, round_hint=round_index)

    def _process_round_with_crash(
        self,
        ordered: list[ModelUpdate],
        messages: list,
        round_index: int,
    ) -> list[ModelUpdate]:
        """Crash the proxy mid-stream and fail over to a fresh one.

        The crash point is a deterministic draw over the message sequence.
        Messages streamed before the crash may already have emitted chimera
        updates — those are delivered.  Buffered-but-intact senders re-encrypt
        to the failover proxy (fresh enclave, fresh keys, re-attestation);
        partially-emitted senders' remaining pieces are unrecoverable and are
        discarded (the server's quorum policy absorbs the loss).  In the
        default full-round mode nothing emits before the flush, so every
        buffered sender is intact and the round's aggregate is preserved.
        """
        proxy, injector, ledger = self.proxy, self._fault_injector, self._fault_ledger
        crash_at = injector.crash_point(round_index, len(messages))
        emitted = proxy.stream(messages[:crash_at], round_hint=round_index)
        intact, partial = proxy.crash()
        delay = (
            injector.backoff("proxy-crash", 0, round_index, 0)
            + proxy.enclave.cost_model.attestation_seconds
        )
        ledger.record("proxy-crash", 0, round_index, 0, "failed-over", delay_seconds=delay)
        for sender in partial:
            ledger.record("proxy-crash", sender, round_index, 0, "discarded")
        intact_set = set(intact)
        survivors = [u for u in ordered[:crash_at] if u.sender_id in intact_set]
        survivors += ordered[crash_at:]
        failover = MixNNProxy(
            enclave=SGXEnclaveSim(
                cost_model=proxy.enclave.cost_model,
                epc_budget_bytes=proxy.enclave.epc_budget_bytes,
                constant_time=proxy.enclave.constant_time,
            ),
            k=len(survivors) if self._adaptive_k and survivors else proxy.k,
            rng=self._rng,
            granularity=proxy.granularity,
            max_workers=proxy.max_workers,
        )
        failover.fault_injector = injector
        failover.fault_ledger = ledger
        self.proxy = failover
        # New enclave => new keys: participants must re-attest and re-encrypt.
        self._attested = False
        if self.verify_attestation:
            self._attest(round_index)
        ledger.note_retransmissions(len(survivors))
        emitted.extend(
            failover.process_round(
                [failover.encrypt_for_proxy(u) for u in survivors], round_hint=round_index
            )
        )
        return emitted

    def __repr__(self) -> str:
        if self.proxy is None:
            return f"MixNNDefense(k={self._k}, granularity={self._granularity!r})"
        return f"MixNNDefense(k={self.proxy.k}, granularity={self.proxy.granularity!r})"
