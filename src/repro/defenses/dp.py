"""DP-style clip-and-noise defense (extension beyond the paper).

§2.3 discusses DP-SGD as the standard perturbation defense and notes that
"the noise calibration and the management of the privacy budget is not
trivial".  This defense implements the client-side DP-FedAvg recipe —
clip the update *delta* to a norm bound, then add Gaussian noise scaled to
that bound — which is better calibrated than the paper's plain noisy-gradient
baseline (noise proportional to the sensitivity instead of a fixed σ on raw
weights).

It exists to extend Figure 7's comparison: clip-and-noise trades utility for
privacy on a curve, while MixNN sits at (full utility, full privacy).
"""

from __future__ import annotations

import numpy as np

from ..federated.update import ModelUpdate, state_delta
from .base import Defense

__all__ = ["ClipAndNoiseDefense", "delta_norm", "clip_delta"]


def delta_norm(delta: dict) -> float:
    """Global L2 norm of a per-parameter delta."""
    total = 0.0
    for value in delta.values():
        total += float(np.square(np.asarray(value, dtype=np.float64)).sum())
    return float(np.sqrt(total))


def clip_delta(delta: dict, max_norm: float) -> dict[str, np.ndarray]:
    """Scale a delta down to ``max_norm`` if it exceeds it (DP-FedAvg clip)."""
    norm = delta_norm(delta)
    if norm <= max_norm or norm == 0.0:
        return {name: np.asarray(value, dtype=np.float32).copy() for name, value in delta.items()}
    scale = max_norm / norm
    return {
        name: (np.asarray(value, dtype=np.float32) * scale).astype(np.float32)
        for name, value in delta.items()
    }


class ClipAndNoiseDefense(Defense):
    """Client-side DP-FedAvg: clip the update delta, add calibrated noise."""

    name = "dp-clip-noise"

    def __init__(self, clip_norm: float = 1.0, noise_multiplier: float = 0.1) -> None:
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        if noise_multiplier < 0:
            raise ValueError(f"noise_multiplier must be non-negative, got {noise_multiplier}")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        if broadcast_state is None:
            raise ValueError("ClipAndNoiseDefense needs the broadcast state to compute deltas")
        sigma = self.noise_multiplier * self.clip_norm
        out: list[ModelUpdate] = []
        for update in updates:
            delta = state_delta(update.state, broadcast_state)
            clipped = clip_delta(delta, self.clip_norm)
            processed = update.copy()
            for name in processed.state:
                noise = rng.normal(0.0, sigma, size=clipped[name].shape).astype(np.float32)
                processed.state[name] = (
                    np.asarray(broadcast_state[name], dtype=np.float32) + clipped[name] + noise
                )
            processed.metadata["clip_norm"] = self.clip_norm
            processed.metadata["noise_multiplier"] = self.noise_multiplier
            out.append(processed)
        return out

    def __repr__(self) -> str:
        return (
            f"ClipAndNoiseDefense(clip_norm={self.clip_norm}, "
            f"noise_multiplier={self.noise_multiplier})"
        )
