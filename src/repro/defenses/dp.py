"""DP-style clip-and-noise defense (extension beyond the paper).

§2.3 discusses DP-SGD as the standard perturbation defense and notes that
"the noise calibration and the management of the privacy budget is not
trivial".  This defense implements the client-side DP-FedAvg recipe —
clip the update *delta* to a norm bound, then add Gaussian noise scaled to
that bound — which is better calibrated than the paper's plain noisy-gradient
baseline (noise proportional to the sensitivity instead of a fixed σ on raw
weights).

It exists to extend Figure 7's comparison: clip-and-noise trades utility for
privacy on a curve, while MixNN sits at (full utility, full privacy).
"""

from __future__ import annotations

import numpy as np

from ..federated.flat import FlatUpdateBatch, row_norms
from ..federated.update import ModelUpdate
from .base import Defense

__all__ = ["ClipAndNoiseDefense", "delta_norm", "clip_delta"]


def delta_norm(delta: dict) -> float:
    """Global L2 norm of a per-parameter delta."""
    total = 0.0
    for value in delta.values():
        total += float(np.square(np.asarray(value, dtype=np.float64)).sum())
    return float(np.sqrt(total))


def clip_delta(delta: dict, max_norm: float) -> dict[str, np.ndarray]:
    """Scale a delta down to ``max_norm`` if it exceeds it (DP-FedAvg clip)."""
    norm = delta_norm(delta)
    if norm <= max_norm or norm == 0.0:
        return {name: np.asarray(value, dtype=np.float32).copy() for name, value in delta.items()}
    scale = max_norm / norm
    return {
        name: (np.asarray(value, dtype=np.float32) * scale).astype(np.float32)
        for name, value in delta.items()
    }


class ClipAndNoiseDefense(Defense):
    """Client-side DP-FedAvg: clip the update delta, add calibrated noise."""

    name = "dp-clip-noise"

    def __init__(self, clip_norm: float = 1.0, noise_multiplier: float = 0.1) -> None:
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        if noise_multiplier < 0:
            raise ValueError(f"noise_multiplier must be non-negative, got {noise_multiplier}")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        """Clip + noise the whole round on the flat plane.

        One ``(N, D)`` delta subtract, one float64 norm per row, one noise
        draw.  The generator stream matches the per-update per-parameter loop
        this replaces, so seeded rounds add identical noise.
        """
        if broadcast_state is None:
            raise ValueError("ClipAndNoiseDefense needs the broadcast state to compute deltas")
        sigma = self.noise_multiplier * self.clip_norm
        batch = FlatUpdateBatch.from_updates(updates)
        reference = batch.schema.pack(broadcast_state)
        deltas = batch.matrix - reference
        # norm of the float32 delta (what clip_delta sees), not of the exact
        # float64 difference
        norms = row_norms(deltas, batch.schema)
        # scale rows above the bound down to it (DP-FedAvg clip); zero-norm
        # rows keep scale 1 like the reference clip
        scales = np.ones(len(batch))
        over = (norms > self.clip_norm) & (norms > 0.0)
        scales[over] = self.clip_norm / norms[over]
        # float32 multiply with the float32-cast scale, matching clip_delta's
        # weak-scalar (NEP 50) promotion
        clipped = deltas * scales[:, None].astype(np.float32)
        noise = rng.normal(0.0, sigma, size=batch.matrix.shape).astype(np.float32)
        processed = batch.with_matrix(reference + clipped + noise)
        return processed.to_updates(
            extra_metadata={"clip_norm": self.clip_norm, "noise_multiplier": self.noise_multiplier}
        )

    def __repr__(self) -> str:
        return (
            f"ClipAndNoiseDefense(clip_norm={self.clip_norm}, "
            f"noise_multiplier={self.noise_multiplier})"
        )
