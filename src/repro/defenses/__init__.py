"""``repro.defenses`` — protection schemes the server-side adversary faces.

The paper's three compared schemes — classical FL (:class:`NoDefense`), the
local-DP noisy-gradient baseline (:class:`GaussianNoiseDefense`) and MixNN
(:class:`MixNNDefense`) — plus two extensions used by the comparison
benchmarks: Bonawitz-style pairwise-masking secure aggregation
(:class:`SecureAggregationDefense`) and calibrated DP clip-and-noise
(:class:`ClipAndNoiseDefense`).
"""

from .base import Defense, NoDefense
from .dp import ClipAndNoiseDefense, clip_delta, delta_norm
from .mixnn_defense import MixNNDefense
from .noisy_gradient import GaussianNoiseDefense
from .secure_aggregation import SecureAggregationDefense

__all__ = [
    "Defense",
    "NoDefense",
    "GaussianNoiseDefense",
    "MixNNDefense",
    "SecureAggregationDefense",
    "ClipAndNoiseDefense",
    "clip_delta",
    "delta_norm",
]
