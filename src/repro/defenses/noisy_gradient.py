"""Noisy-gradient baseline (local-DP style perturbation).

The paper's comparison baseline (§6.1.3) adds Gaussian noise to every scalar
of the locally trained weights before upload, as in local differential
privacy.  The paper uses ``N(0, 1)`` on TensorFlow-scale models; our models
are far smaller, so the default ``sigma`` is calibrated (see EXPERIMENTS.md)
to reproduce the paper's *reported effect* — roughly a 10-point accuracy drop
with slower convergence, and partial (not full) protection against ∇Sim.
Both the paper-literal and calibrated settings are available.

Runs on the flat parameter plane: the round's updates are one ``(N, D)``
matrix and the noise is one ``(N, D)`` draw.  The generator stream is
consumed in the same row-major order as the per-update, per-parameter loop
it replaces, so seeded rounds produce identical values.
"""

from __future__ import annotations

import numpy as np

from ..federated.flat import FlatUpdateBatch
from ..federated.update import ModelUpdate
from .base import Defense

__all__ = ["GaussianNoiseDefense"]


class GaussianNoiseDefense(Defense):
    """Add i.i.d. Gaussian noise to every scalar of each update."""

    name = "noisy-gradient"

    def __init__(self, sigma: float = 0.05) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        batch = FlatUpdateBatch.from_updates(updates)
        noise = rng.normal(0.0, self.sigma, size=batch.matrix.shape).astype(np.float32)
        noisy = batch.with_matrix(batch.matrix + noise)
        return noisy.to_updates(extra_metadata={"noise_sigma": self.sigma})

    def __repr__(self) -> str:
        return f"GaussianNoiseDefense(sigma={self.sigma})"
