"""Secure aggregation by pairwise masking (extension beyond the paper).

The paper's introduction discusses cryptographic secure aggregation
(Bonawitz et al., CCS'17) as the main alternative to MixNN: the server only
ever learns the *sum* of the updates, but the scheme requires the server to
cooperate in the protocol.  This module implements the core of that protocol
so the comparison can be run empirically:

* every ordered pair of participants ``(i, j)`` with ``i < j`` agrees on a
  fresh per-round seed (here dealt by the simulation, standing in for the
  Diffie–Hellman key agreement of the real protocol);
* participant ``i`` adds ``+PRG(seed_ij)`` for every ``j > i`` and
  ``−PRG(seed_ji)`` for every ``j < i`` to its update;
* the masks cancel pairwise in the sum, so the aggregate is (numerically)
  unchanged while each individual masked update is statistically independent
  of the participant's real update.

Unlike the real protocol this simulation does not implement dropout recovery
(Shamir shares of the seeds) — a round is assumed to complete with the same
cohort that started it, which holds in this simulator by construction.
"""

from __future__ import annotations

import numpy as np

from ..federated.update import ModelUpdate
from ..utils.rng import rng_from_seed
from .base import Defense

__all__ = ["SecureAggregationDefense"]


class SecureAggregationDefense(Defense):
    """Pairwise-masked updates: the server learns only the aggregate."""

    name = "secure-aggregation"

    def __init__(self, mask_scale: float = 5.0) -> None:
        if mask_scale <= 0:
            raise ValueError(f"mask_scale must be positive, got {mask_scale}")
        self.mask_scale = mask_scale

    def _pair_mask(self, seed: int, shapes: dict) -> dict[str, np.ndarray]:
        """The PRG expansion of one pairwise seed over the model schema."""
        prg = rng_from_seed(seed)
        return {
            name: (prg.standard_normal(shape) * self.mask_scale).astype(np.float64)
            for name, shape in shapes.items()
        }

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        count = len(updates)
        shapes = {name: value.shape for name, value in updates[0].state.items()}
        # Fresh pairwise seeds for this round (the trusted-dealer stand-in
        # for the real protocol's key agreement).
        seeds = {
            (i, j): int(rng.integers(0, 2**31))
            for i in range(count)
            for j in range(i + 1, count)
        }
        masked: list[ModelUpdate] = []
        for i, update in enumerate(updates):
            accumulator = {
                name: np.asarray(value, dtype=np.float64).copy()
                for name, value in update.state.items()
            }
            for j in range(count):
                if j == i:
                    continue
                pair = (i, j) if i < j else (j, i)
                mask = self._pair_mask(seeds[pair], shapes)
                sign = 1.0 if i < j else -1.0
                for name in accumulator:
                    accumulator[name] += sign * mask[name]
            out = update.copy()
            for name in out.state:
                out.state[name] = accumulator[name].astype(np.float32)
            out.metadata["masked"] = True
            masked.append(out)
        return masked

    def __repr__(self) -> str:
        return f"SecureAggregationDefense(mask_scale={self.mask_scale})"
