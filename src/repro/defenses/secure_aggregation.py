"""Secure aggregation by pairwise masking (extension beyond the paper).

The paper's introduction discusses cryptographic secure aggregation
(Bonawitz et al., CCS'17) as the main alternative to MixNN: the server only
ever learns the *sum* of the updates, but the scheme requires the server to
cooperate in the protocol.  This module implements the core of that protocol
so the comparison can be run empirically:

* every ordered pair of participants ``(i, j)`` with ``i < j`` agrees on a
  fresh per-round seed (here dealt by the simulation, standing in for the
  Diffie–Hellman key agreement of the real protocol);
* participant ``i`` adds ``+PRG(seed_ij)`` for every ``j > i`` and
  ``−PRG(seed_ji)`` for every ``j < i`` to its update;
* the masks cancel pairwise in the sum, so the aggregate is (numerically)
  unchanged while each individual masked update is statistically independent
  of the participant's real update.

Unlike the real protocol this simulation does not implement dropout recovery
(Shamir shares of the seeds) — a round is assumed to complete with the same
cohort that started it, which holds in this simulator by construction.
"""

from __future__ import annotations

import numpy as np

from ..federated.flat import FlatUpdateBatch
from ..federated.update import ModelUpdate
from ..utils.rng import rng_from_seed
from .base import Defense

__all__ = ["SecureAggregationDefense"]


class SecureAggregationDefense(Defense):
    """Pairwise-masked updates: the server learns only the aggregate.

    Masking runs on the flat parameter plane: the round is one float64
    ``(N, D)`` accumulator and each pairwise seed expands to a single
    ``D``-vector that is added to row ``i`` and subtracted from row ``j`` —
    one PRG expansion per pair instead of one per (pair, participant, name).
    The PRG stream per seed and the per-row accumulation order match the
    per-parameter loop this replaces, so seeded rounds are value-identical.
    """

    name = "secure-aggregation"

    def __init__(self, mask_scale: float = 5.0) -> None:
        if mask_scale <= 0:
            raise ValueError(f"mask_scale must be positive, got {mask_scale}")
        self.mask_scale = mask_scale

    def _pair_mask(self, seed: int, total_size: int) -> np.ndarray:
        """The PRG expansion of one pairwise seed over the flat plane."""
        prg = rng_from_seed(seed)
        return prg.standard_normal(total_size) * self.mask_scale

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        count = len(updates)
        batch = FlatUpdateBatch.from_updates(updates)
        # Fresh pairwise seeds for this round (the trusted-dealer stand-in
        # for the real protocol's key agreement).
        seeds = {
            (i, j): int(rng.integers(0, 2**31))
            for i in range(count)
            for j in range(i + 1, count)
        }
        accumulator = batch.matrix.astype(np.float64)
        # Ascending (i, j) iteration applies row r's masks in the same order
        # as the reference per-update loop: all j < r first, then all j > r.
        for (i, j), seed in seeds.items():
            mask = self._pair_mask(seed, batch.schema.total_size)
            accumulator[i] += mask
            accumulator[j] -= mask
        masked = batch.with_matrix(accumulator.astype(np.float32))
        return masked.to_updates(extra_metadata={"masked": True})

    def __repr__(self) -> str:
        return f"SecureAggregationDefense(mask_scale={self.mask_scale})"
