"""Defense interface.

A defense transforms the set of participant updates *before the aggregation
server sees them*.  Three concrete defenses cover the paper's comparison:

* :class:`NoDefense` — classical FL (updates pass through untouched);
* :class:`~repro.defenses.noisy_gradient.GaussianNoiseDefense` — the local-DP
  style noisy-gradient baseline;
* :class:`~repro.defenses.mixnn_defense.MixNNDefense` — routing through the
  MixNN proxy.
"""

from __future__ import annotations

import abc

import numpy as np

from ..federated.update import ModelUpdate

__all__ = ["Defense", "NoDefense"]


class Defense(abc.ABC):
    """Transforms a round's updates on their way to the server."""

    #: identifier used in reports ("classical-fl", "noisy-gradient", "mixnn")
    name: str = "defense"

    #: fault plane hooks; ``None`` until :meth:`attach_fault_plane` is called.
    _fault_injector = None
    _fault_ledger = None

    #: adversary plane hooks; ``None`` until :meth:`attach_adversary_plane`.
    _adversary_injector = None
    _adversary_ledger = None

    def attach_fault_plane(self, injector, ledger) -> None:
        """Wire the simulation's fault injector/ledger into this defense.

        The base implementation just stores the hooks; defenses with internal
        infrastructure (the MixNN proxy chain) also propagate them downstream.
        """
        self._fault_injector = injector
        self._fault_ledger = ledger

    def attach_adversary_plane(self, injector, ledger) -> None:
        """Wire the simulation's Byzantine adversary plane into this defense.

        Defenses that own transport infrastructure use the hooks to inject
        adversary behaviour *below* the update layer (e.g. the MixNN defense
        replays attacker ciphertexts against the proxy's replay guard).
        """
        self._adversary_injector = injector
        self._adversary_ledger = ledger

    @abc.abstractmethod
    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        """Return the updates as the aggregation server will receive them.

        ``broadcast_state`` is the model the participants refined this round;
        defenses that operate on update *deltas* (e.g. DP clipping) need it,
        the others may ignore it.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NoDefense(Defense):
    """Classical federated learning: the server sees raw updates."""

    name = "classical-fl"

    def process_round(
        self,
        updates: list[ModelUpdate],
        rng: np.random.Generator,
        broadcast_state: dict | None = None,
    ) -> list[ModelUpdate]:
        return updates
