"""Alternative aggregation rules (extension).

The §4.2 utility-equivalence proof is specific to the *column mean*: a
per-layer permutation of participants does not change per-layer means.  Other
aggregation rules used for Byzantine robustness — coordinate-wise median and
trimmed mean — are permutation-invariant **per coordinate** too, so they are
also unchanged by mixing; what mixing breaks is any rule that couples
coordinates *across layers of one participant* (e.g. norm-based update
filtering).  This module provides the rules and the test suite demonstrates
both facts, which matters to anyone deploying MixNN in front of a robust
aggregator.

All rules run on the flat parameter plane — one ``np.median``/``np.sort``/
``einsum`` over the round's ``(N, D)`` matrix instead of per-parameter
stacking — and each keeps its dict-based implementation as a ``*_reference``
cross-checked by the equivalence tests.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .flat import FlatUpdateBatch, flat_mean
from .update import ModelUpdate

__all__ = [
    "coordinate_median",
    "coordinate_median_reference",
    "trimmed_mean",
    "trimmed_mean_reference",
    "norm_filtered_mean",
    "norm_filtered_mean_reference",
]


def _stack(updates: list[ModelUpdate], name: str) -> np.ndarray:
    return np.stack([np.asarray(u.state[name], dtype=np.float32) for u in updates])


def coordinate_median(updates: list[ModelUpdate]) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise median of the updates (Byzantine-robust)."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    batch = FlatUpdateBatch.from_updates(updates)
    return batch.schema.views(batch.median())


def coordinate_median_reference(updates: list[ModelUpdate]) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`coordinate_median`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    return OrderedDict(
        (name, np.median(_stack(updates, name), axis=0).astype(np.float32))
        for name in updates[0].state
    )


def trimmed_mean(updates: list[ModelUpdate], trim: int = 1) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise mean after dropping the ``trim`` extremes on each side."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if 2 * trim >= len(updates):
        raise ValueError(f"trim={trim} removes all of {len(updates)} updates")
    batch = FlatUpdateBatch.from_updates(updates)
    return batch.schema.views(batch.trimmed_mean(trim))


def trimmed_mean_reference(updates: list[ModelUpdate], trim: int = 1) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`trimmed_mean`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if 2 * trim >= len(updates):
        raise ValueError(f"trim={trim} removes all of {len(updates)} updates")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in updates[0].state:
        stacked = np.sort(_stack(updates, name), axis=0)
        kept = stacked[trim : len(updates) - trim]
        out[name] = kept.mean(axis=0).astype(np.float32)
    return out


def norm_filtered_mean(
    updates: list[ModelUpdate],
    reference: dict,
    max_norm: float,
) -> "OrderedDict[str, np.ndarray]":
    """Mean of updates whose whole-model delta norm is below ``max_norm``.

    This rule couples coordinates across layers of one participant — exactly
    the kind of aggregation MixNN's mixing does *not* commute with, because a
    mixed chimera's cross-layer norm differs from any original participant's.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    batch = FlatUpdateBatch.from_updates(updates)
    kept = batch.norms(reference) <= max_norm
    if not kept.any():
        raise ValueError("norm filter rejected every update")
    return batch.schema.views(
        flat_mean(list(batch.matrix[kept]), batch.schema).astype(np.float32, copy=False)
    )


def norm_filtered_mean_reference(
    updates: list[ModelUpdate],
    reference: dict,
    max_norm: float,
) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`norm_filtered_mean`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    kept: list[ModelUpdate] = []
    for update in updates:
        delta_sq = 0.0
        for name, value in update.state.items():
            diff = np.asarray(value, dtype=np.float64) - np.asarray(reference[name], dtype=np.float64)
            delta_sq += float((diff**2).sum())
        if np.sqrt(delta_sq) <= max_norm:
            kept.append(update)
    if not kept:
        raise ValueError("norm filter rejected every update")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in kept[0].state:
        out[name] = _stack(kept, name).mean(axis=0).astype(np.float32)
    return out
