"""Alternative aggregation rules (extension).

The §4.2 utility-equivalence proof is specific to the *column mean*: a
per-layer permutation of participants does not change per-layer means.  Other
aggregation rules used for Byzantine robustness — coordinate-wise median and
trimmed mean — are permutation-invariant **per coordinate** too, so they are
also unchanged by mixing; what mixing breaks is any rule that couples
coordinates *across layers of one participant* (e.g. norm-based update
filtering).  This module provides the rules and the test suite demonstrates
both facts, which matters to anyone deploying MixNN in front of a robust
aggregator.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .update import ModelUpdate

__all__ = ["coordinate_median", "trimmed_mean", "norm_filtered_mean"]


def _stack(updates: list[ModelUpdate], name: str) -> np.ndarray:
    return np.stack([np.asarray(u.state[name], dtype=np.float32) for u in updates])


def coordinate_median(updates: list[ModelUpdate]) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise median of the updates (Byzantine-robust)."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    return OrderedDict(
        (name, np.median(_stack(updates, name), axis=0).astype(np.float32))
        for name in updates[0].state
    )


def trimmed_mean(updates: list[ModelUpdate], trim: int = 1) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise mean after dropping the ``trim`` extremes on each side."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if 2 * trim >= len(updates):
        raise ValueError(f"trim={trim} removes all of {len(updates)} updates")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in updates[0].state:
        stacked = np.sort(_stack(updates, name), axis=0)
        kept = stacked[trim : len(updates) - trim]
        out[name] = kept.mean(axis=0).astype(np.float32)
    return out


def norm_filtered_mean(
    updates: list[ModelUpdate],
    reference: dict,
    max_norm: float,
) -> "OrderedDict[str, np.ndarray]":
    """Mean of updates whose whole-model delta norm is below ``max_norm``.

    This rule couples coordinates across layers of one participant — exactly
    the kind of aggregation MixNN's mixing does *not* commute with, because a
    mixed chimera's cross-layer norm differs from any original participant's.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    kept: list[ModelUpdate] = []
    for update in updates:
        delta_sq = 0.0
        for name, value in update.state.items():
            diff = np.asarray(value, dtype=np.float64) - np.asarray(reference[name], dtype=np.float64)
            delta_sq += float((diff**2).sum())
        if np.sqrt(delta_sq) <= max_norm:
            kept.append(update)
    if not kept:
        raise ValueError("norm filter rejected every update")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in kept[0].state:
        out[name] = _stack(kept, name).mean(axis=0).astype(np.float32)
    return out
