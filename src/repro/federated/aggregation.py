"""Alternative aggregation rules (extension).

The §4.2 utility-equivalence proof is specific to the *column mean*: a
per-layer permutation of participants does not change per-layer means.  Other
aggregation rules used for Byzantine robustness — coordinate-wise median and
trimmed mean — are permutation-invariant **per coordinate** too, so they are
also unchanged by mixing; what mixing breaks is any rule that couples
coordinates *across layers of one participant* (e.g. norm-based update
filtering).  This module provides the rules and the test suite demonstrates
both facts, which matters to anyone deploying MixNN in front of a robust
aggregator.

All rules run on the flat parameter plane — one ``np.median``/``np.sort``/
``einsum`` over the round's ``(N, D)`` matrix instead of per-parameter
stacking — and each keeps its dict-based implementation as a ``*_reference``
cross-checked by the equivalence tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .flat import FlatUpdateBatch, flat_mean
from .update import ModelUpdate, aggregate_states_reference, aggregate_updates

__all__ = [
    "AGGREGATION_RULES",
    "coordinate_median",
    "coordinate_median_reference",
    "trimmed_mean",
    "trimmed_mean_reference",
    "norm_filtered_mean",
    "norm_filtered_mean_reference",
    "pairwise_sq_distances",
    "pairwise_sq_distances_reference",
    "krum",
    "krum_reference",
    "multi_krum",
    "multi_krum_reference",
    "AggregationPolicy",
    "AggregationReport",
]

#: selectable server-side aggregation rules (``SimulationConfig.aggregation``)
AGGREGATION_RULES = ("mean", "median", "trimmed", "norm_filter", "krum", "multi-krum")


def _stack(updates: list[ModelUpdate], name: str) -> np.ndarray:
    return np.stack([np.asarray(u.state[name], dtype=np.float32) for u in updates])


def coordinate_median(updates: list[ModelUpdate]) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise median of the updates (Byzantine-robust)."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    batch = FlatUpdateBatch.from_updates(updates)
    return batch.schema.views(batch.median())


def coordinate_median_reference(updates: list[ModelUpdate]) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`coordinate_median`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    return OrderedDict(
        (name, np.median(_stack(updates, name), axis=0).astype(np.float32))
        for name in updates[0].state
    )


def trimmed_mean(updates: list[ModelUpdate], trim: int = 1) -> "OrderedDict[str, np.ndarray]":
    """Coordinate-wise mean after dropping the ``trim`` extremes on each side."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if trim < 0:
        raise ValueError(f"trim must be >= 0, got {trim}")
    if 2 * trim >= len(updates):
        raise ValueError(f"trim={trim} removes all of {len(updates)} updates")
    batch = FlatUpdateBatch.from_updates(updates)
    return batch.schema.views(batch.trimmed_mean(trim))


def trimmed_mean_reference(updates: list[ModelUpdate], trim: int = 1) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`trimmed_mean`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if trim < 0:
        raise ValueError(f"trim must be >= 0, got {trim}")
    if 2 * trim >= len(updates):
        raise ValueError(f"trim={trim} removes all of {len(updates)} updates")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in updates[0].state:
        stacked = np.sort(_stack(updates, name), axis=0)
        kept = stacked[trim : len(updates) - trim]
        out[name] = kept.mean(axis=0).astype(np.float32)
    return out


def norm_filtered_mean(
    updates: list[ModelUpdate],
    reference: dict,
    max_norm: float,
) -> "OrderedDict[str, np.ndarray]":
    """Mean of updates whose whole-model delta norm is below ``max_norm``.

    This rule couples coordinates across layers of one participant — exactly
    the kind of aggregation MixNN's mixing does *not* commute with, because a
    mixed chimera's cross-layer norm differs from any original participant's.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if not max_norm > 0:
        raise ValueError(
            f"max_norm must be > 0 (a non-positive bound rejects every update), got {max_norm}"
        )
    batch = FlatUpdateBatch.from_updates(updates)
    kept = batch.norms(reference) <= max_norm
    if not kept.any():
        raise ValueError("norm filter rejected every update")
    return batch.schema.views(
        flat_mean(list(batch.matrix[kept]), batch.schema).astype(np.float32, copy=False)
    )


def norm_filtered_mean_reference(
    updates: list[ModelUpdate],
    reference: dict,
    max_norm: float,
) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`norm_filtered_mean`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if not max_norm > 0:
        raise ValueError(
            f"max_norm must be > 0 (a non-positive bound rejects every update), got {max_norm}"
        )
    kept: list[ModelUpdate] = []
    for update in updates:
        delta_sq = 0.0
        for name, value in update.state.items():
            diff = np.asarray(value, dtype=np.float64) - np.asarray(reference[name], dtype=np.float64)
            delta_sq += float((diff**2).sum())
        if np.sqrt(delta_sq) <= max_norm:
            kept.append(update)
    if not kept:
        raise ValueError("norm filter rejected every update")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in kept[0].state:
        out[name] = _stack(kept, name).mean(axis=0).astype(np.float32)
    return out


# ----------------------------------------------------------------------
# Krum / multi-Krum (Blanchard et al., NeurIPS 2017) on the flat plane
# ----------------------------------------------------------------------
def _gram_sq_distances(blocks: list[np.ndarray]) -> np.ndarray:
    """Pairwise squared L2 distances accumulated per parameter span.

    Each block is one span's ``(N, size)`` float64 matrix; the Gram trick
    (``d² = |a|² + |b|² − 2 a·b``) turns every span into one matmul.  Both
    the flat and reference paths feed C-contiguous float64 blocks holding
    identical values, so the per-span partial sums — and hence the Krum
    scores and selections downstream — are bit-identical.
    """
    count = blocks[0].shape[0]
    d2 = np.zeros((count, count), dtype=np.float64)
    for block in blocks:
        sq = np.einsum("ij,ij->i", block, block)
        d2 += sq[:, None] + sq[None, :] - 2.0 * (block @ block.T)
    np.fill_diagonal(d2, 0.0)
    return d2


def pairwise_sq_distances(updates: list[ModelUpdate]) -> np.ndarray:
    """``(N, N)`` pairwise squared distances between updates (flat plane)."""
    if not updates:
        raise ValueError("cannot compute distances over an empty update list")
    batch = FlatUpdateBatch.from_updates(updates)
    blocks = [
        batch.matrix[:, offset : offset + size].astype(np.float64)
        for offset, size in zip(batch.schema.offsets, batch.schema.sizes)
    ]
    return _gram_sq_distances(blocks)


def pairwise_sq_distances_reference(updates: list[ModelUpdate]) -> np.ndarray:
    """Retained per-parameter implementation of :func:`pairwise_sq_distances`."""
    if not updates:
        raise ValueError("cannot compute distances over an empty update list")
    blocks = [
        np.stack([np.asarray(u.state[name], dtype=np.float64).ravel() for u in updates])
        for name in updates[0].state
    ]
    return _gram_sq_distances(blocks)


def _check_krum_cohort(count: int, num_attackers: int) -> None:
    if num_attackers < 0:
        raise ValueError(f"num_attackers must be >= 0, got {num_attackers}")
    if count < num_attackers + 3:
        raise ValueError(
            f"krum needs at least num_attackers + 3 = {num_attackers + 3} updates "
            f"to score n - f - 2 neighbours, got {count}"
        )


def _krum_scores(d2: np.ndarray, num_attackers: int) -> np.ndarray:
    """Per-update Krum score: sum of its ``n - f - 2`` closest distances."""
    count = d2.shape[0]
    closest = count - num_attackers - 2
    scores = np.empty(count, dtype=np.float64)
    for i in range(count):
        others = np.sort(np.delete(d2[i], i))
        scores[i] = others[:closest].sum()
    return scores


def krum(updates: list[ModelUpdate], num_attackers: int = 0, return_index: bool = False):
    """Krum: the single update closest to its ``n - f - 2`` nearest peers.

    Byzantine-robust for up to ``num_attackers`` (``f``) colluding attackers
    when ``n >= 2f + 3``; the selected update is an *actual participant's*
    update, never a blend, so one poisoned round costs one honest update at
    worst.  Bit-identical to :func:`krum_reference`.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    _check_krum_cohort(len(updates), num_attackers)
    batch = FlatUpdateBatch.from_updates(updates)
    blocks = [
        batch.matrix[:, offset : offset + size].astype(np.float64)
        for offset, size in zip(batch.schema.offsets, batch.schema.sizes)
    ]
    scores = _krum_scores(_gram_sq_distances(blocks), num_attackers)
    index = int(np.argmin(scores))
    state = batch.schema.views(batch.matrix[index].copy())
    return (state, index) if return_index else state


def krum_reference(
    updates: list[ModelUpdate], num_attackers: int = 0, return_index: bool = False
):
    """Retained per-parameter implementation of :func:`krum`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    _check_krum_cohort(len(updates), num_attackers)
    scores = _krum_scores(pairwise_sq_distances_reference(updates), num_attackers)
    index = int(np.argmin(scores))
    state: "OrderedDict[str, np.ndarray]" = OrderedDict(
        (name, np.asarray(value, dtype=np.float32).copy())
        for name, value in updates[index].state.items()
    )
    return (state, index) if return_index else state


def _multi_krum_selection(scores: np.ndarray, select: int) -> list[int]:
    # stable argsort so ties resolve by slot order on both paths
    ranked = np.argsort(scores, kind="stable")[:select]
    return sorted(int(i) for i in ranked)


def _check_multi_krum_select(count: int, select: int) -> None:
    if not 1 <= select <= count:
        raise ValueError(f"select must be in [1, {count}], got {select}")


def multi_krum(
    updates: list[ModelUpdate],
    num_attackers: int = 0,
    select: int | None = None,
    return_selected: bool = False,
):
    """Multi-Krum: mean of the ``select`` best-scored updates.

    Defaults to ``select = n - f - 2`` (the classical choice).  Keeps Krum's
    selection guarantee while averaging enough honest updates to retain
    convergence speed.  Bit-identical to :func:`multi_krum_reference`.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    _check_krum_cohort(len(updates), num_attackers)
    if select is None:
        select = len(updates) - num_attackers - 2
    _check_multi_krum_select(len(updates), select)
    batch = FlatUpdateBatch.from_updates(updates)
    blocks = [
        batch.matrix[:, offset : offset + size].astype(np.float64)
        for offset, size in zip(batch.schema.offsets, batch.schema.sizes)
    ]
    scores = _krum_scores(_gram_sq_distances(blocks), num_attackers)
    selected = _multi_krum_selection(scores, select)
    state = batch.schema.views(
        flat_mean([batch.matrix[i] for i in selected], batch.schema)
    )
    return (state, selected) if return_selected else state


def multi_krum_reference(
    updates: list[ModelUpdate],
    num_attackers: int = 0,
    select: int | None = None,
    return_selected: bool = False,
):
    """Retained per-parameter implementation of :func:`multi_krum`."""
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    _check_krum_cohort(len(updates), num_attackers)
    if select is None:
        select = len(updates) - num_attackers - 2
    _check_multi_krum_select(len(updates), select)
    scores = _krum_scores(pairwise_sq_distances_reference(updates), num_attackers)
    selected = _multi_krum_selection(scores, select)
    state = aggregate_states_reference([updates[i].state for i in selected])
    return (state, selected) if return_selected else state


# ----------------------------------------------------------------------
# Selectable server policies
# ----------------------------------------------------------------------
@dataclass
class AggregationReport:
    """What one policy application did: which update slots survived the rule."""

    rule: str
    #: indices (into the round's received updates) that were merged
    kept: tuple[int, ...]
    #: indices the rule filtered out before merging
    dropped: tuple[int, ...]


@dataclass(frozen=True)
class AggregationPolicy:
    """A selectable, cohort-robust server aggregation rule.

    Unlike the raw rule functions (which are strict about degenerate
    cohorts), a policy must survive whatever the round loop hands it:
    ``trim`` is clamped to what the cohort supports, Krum variants fall
    back to the mean below the ``f + 3`` floor, and the adaptive norm
    bound (``norm_multiplier ×`` median delta norm) can never reject
    everything.  Coordinate-wise rules keep every update (they drop
    per-coordinate extremes, not participants), so ``kept``/``dropped``
    track *participant-level* filtering only.

    Robust rules aggregate unweighted against the pre-merge global state;
    only the ``mean`` rule applies sample/staleness weighting (where the
    §4.2 equivalence and the FedBuff discount are defined).
    """

    rule: str = "mean"
    trim: int = 1
    max_norm: float | None = None
    norm_multiplier: float = 2.0
    num_attackers: int | None = None
    multi_select: int | None = None

    def __post_init__(self) -> None:
        if self.rule not in AGGREGATION_RULES:
            raise ValueError(
                f"unknown aggregation rule {self.rule!r}; choose one of {AGGREGATION_RULES}"
            )
        if self.trim < 1:
            raise ValueError(f"trim must be >= 1, got {self.trim}")
        if self.max_norm is not None and not self.max_norm > 0:
            raise ValueError(
                f"max_norm must be > 0 (a non-positive bound rejects every update), "
                f"got {self.max_norm}"
            )
        if self.norm_multiplier < 1.0:
            raise ValueError(f"norm_multiplier must be >= 1, got {self.norm_multiplier}")
        if self.num_attackers is not None and self.num_attackers < 0:
            raise ValueError(f"num_attackers must be >= 0, got {self.num_attackers}")
        if self.multi_select is not None and self.multi_select < 1:
            raise ValueError(f"multi_select must be >= 1, got {self.multi_select}")

    def _assumed_attackers(self, count: int) -> int:
        f = self.num_attackers if self.num_attackers is not None else max(0, (count - 3) // 2)
        return max(0, min(f, count - 3))

    def aggregate(
        self,
        updates: list[ModelUpdate],
        reference: dict | None = None,
        sample_weighted: bool = False,
        staleness_alpha: float | None = None,
        shard_plan=None,
    ):
        """Apply the rule; returns ``(state, kept_indices, dropped_indices)``.

        With a :class:`~repro.federated.sharding.ShardPlan` covering the
        cohort, every rule routes through its shard-composed implementation
        (per-shard partials, pre-sorted blocks, Gram tiles) — byte-equal to
        the serial path by the sharding module's merge-order contract.
        """
        if not updates:
            raise ValueError("cannot aggregate an empty update list")
        if shard_plan is not None and shard_plan.cohort_size == len(updates):
            return self._aggregate_sharded(
                updates, shard_plan, reference, sample_weighted, staleness_alpha
            )
        count = len(updates)
        everyone = tuple(range(count))
        rule = self.rule
        if rule in ("krum", "multi-krum") and count < 3:
            rule = "mean"  # below the f + 3 floor even at f = 0
        if rule == "mean":
            state = aggregate_updates(
                updates, sample_weighted=sample_weighted, staleness_alpha=staleness_alpha
            )
            return state, everyone, ()
        if rule == "median":
            return coordinate_median(updates), everyone, ()
        if rule == "trimmed":
            trim = min(self.trim, max(0, (count - 1) // 2))
            return trimmed_mean(updates, trim), everyone, ()
        if rule == "norm_filter":
            if reference is None:
                raise ValueError("norm_filter needs the pre-merge global state as reference")
            batch = FlatUpdateBatch.from_updates(updates)
            norms = batch.norms(reference)
            if self.max_norm is not None:
                bound = self.max_norm
            else:
                bound = self.norm_multiplier * float(np.median(norms))
            mask = norms <= bound
            if not mask.any():
                raise ValueError(
                    f"norm filter rejected every update (explicit max_norm={self.max_norm})"
                )
            kept = tuple(int(i) for i in np.flatnonzero(mask))
            dropped = tuple(int(i) for i in np.flatnonzero(~mask))
            state = batch.schema.views(
                flat_mean([batch.matrix[i] for i in kept], batch.schema)
            )
            return state, kept, dropped
        f = self._assumed_attackers(count)
        if rule == "krum":
            state, index = krum(updates, f, return_index=True)
            kept = (index,)
        else:
            select = self.multi_select
            if select is None:
                select = count - f - 2
            select = max(1, min(select, count))
            state, selected = multi_krum(updates, f, select=select, return_selected=True)
            kept = tuple(selected)
        dropped = tuple(i for i in everyone if i not in kept)
        return state, kept, dropped

    def _aggregate_sharded(
        self,
        updates: list[ModelUpdate],
        plan,
        reference: dict | None,
        sample_weighted: bool,
        staleness_alpha: float | None,
    ):
        """Shard-composed rule application (byte-equal to the serial path).

        Coordinate rules compose from per-shard partials (witness-checked
        float64 sums, pre-sorted blocks, per-shard row norms); Krum variants
        select at the root over the distance matrix assembled from per-shard
        Gram tiles.  Imported lazily: sharding depends on this module's score
        helpers, so the dependency must not be circular at import time.
        """
        from . import sharding
        from .update import layerwise_staleness_mean, update_weights

        count = len(updates)
        everyone = tuple(range(count))
        rule = self.rule
        if rule in ("krum", "multi-krum") and count < 3:
            rule = "mean"  # below the f + 3 floor even at f = 0
        batch = FlatUpdateBatch.from_updates(updates)
        schema = batch.schema
        if rule == "mean":
            # mirror aggregate_updates branch for branch, adding the witness
            if staleness_alpha is not None and any(
                "param_staleness" in u.metadata for u in updates
            ):
                return layerwise_staleness_mean(updates, staleness_alpha, sample_weighted), everyone, ()
            weights = update_weights(updates, sample_weighted, staleness_alpha)
            if weights is not None:
                total = float(sum(weights))
                if total <= 0:
                    raise ValueError("weights must sum to a positive value")
            state = schema.views(
                sharding.sharded_flat_mean(batch.matrix, schema, plan, weights)
            )
            return state, everyone, ()
        if rule == "median":
            return schema.views(sharding.sharded_median(batch.matrix, plan)), everyone, ()
        if rule == "trimmed":
            trim = min(self.trim, max(0, (count - 1) // 2))
            state = schema.views(
                sharding.sharded_trimmed_mean(batch.matrix, schema, plan, trim)
            )
            return state, everyone, ()
        if rule == "norm_filter":
            if reference is None:
                raise ValueError("norm_filter needs the pre-merge global state as reference")
            if isinstance(reference, dict):
                reference = np.concatenate(
                    [
                        np.asarray(reference[name], dtype=np.float64).ravel()
                        for name in schema.names
                    ]
                )
            deltas = batch.matrix.astype(np.float64) - np.asarray(reference, dtype=np.float64)
            norms = sharding.sharded_row_norms(deltas, schema, plan)
            if self.max_norm is not None:
                bound = self.max_norm
            else:
                bound = self.norm_multiplier * float(np.median(norms))
            mask = norms <= bound
            if not mask.any():
                raise ValueError(
                    f"norm filter rejected every update (explicit max_norm={self.max_norm})"
                )
            kept = tuple(int(i) for i in np.flatnonzero(mask))
            dropped = tuple(int(i) for i in np.flatnonzero(~mask))
            # the kept subset is no longer plan-aligned: re-plan its rows for
            # the witness check, keep the canonical slot-order value walk
            kept_matrix = batch.matrix[list(kept)]
            sub_plan = sharding.ShardPlan.build(
                len(kept), min(plan.num_shards, len(kept))
            )
            state = schema.views(
                sharding.sharded_flat_mean(kept_matrix, schema, sub_plan)
            )
            return state, kept, dropped
        f = self._assumed_attackers(count)
        if rule == "krum":
            index = sharding.sharded_krum_select(batch.matrix, schema, plan, f)
            state = schema.views(batch.matrix[index].copy())
            kept = (index,)
        else:
            select = self.multi_select
            if select is None:
                select = count - f - 2
            select = max(1, min(select, count))
            selected = sharding.sharded_multi_krum_select(
                batch.matrix, schema, plan, f, select
            )
            state = schema.views(
                flat_mean([batch.matrix[i] for i in selected], schema)
            )
            kept = tuple(selected)
        dropped = tuple(i for i in everyone if i not in kept)
        return state, kept, dropped
