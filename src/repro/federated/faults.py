"""Deterministic fault plane: injection, backoff, and the fault ledger.

The scenario engine models *benign* variation — churn, stragglers,
staleness.  This module models *failures*: a client crashing mid-training, a
wire frame corrupted in transit, an enclave decrypt or attestation failing, a
MixNN proxy crashing with buffered layer pieces, a server merge that must be
retried.  Every hop of the round pipeline gains an injection point here and a
recovery policy next to it (retry with exponential backoff, failover, or
quorum-based degradation), so the "heavy traffic, production-scale" regimes
in ROADMAP can be exercised under the failure modes a real deployment sees.

Design rules, identical to the churn/latency models:

* every fault decision is a pure function of
  ``stable_seed(seed, "fault", kind, entity, round, attempt)`` — never a
  shared sequential RNG — so fault schedules are bit-identical across runs,
  execution orders, and ``parallelism`` settings;
* a rate of ``0.0`` skips the hash draw entirely, which keeps the zero-fault
  configuration bit-identical to the fault-free event path;
* every *injected* fault instance lands in the :class:`FaultLedger` with a
  resolution — ``retried``, ``failed-over``, or ``discarded`` — so the
  accounting invariant ``injected == retried + failed_over + discarded``
  holds by construction and is checkable per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..utils.rng import rng_from_seed, stable_seed

__all__ = [
    "FAULT_KINDS",
    "RESOLUTIONS",
    "POST_FLUSH_KINDS",
    "FaultConfig",
    "FaultInjector",
    "FaultRecord",
    "FaultLedger",
]

#: Every fault kind the injector can draw.  ``frame`` and ``timeout`` are
#: transport-level (handled inside the virtual-time replay); the rest are
#: handled after the round's flush and their recovery delay is appended to
#: the round's simulated duration.
FAULT_KINDS = (
    "client-crash",
    "frame",
    "timeout",
    "enclave",
    "attestation",
    "proxy-crash",
    "mixnode-crash",
    "merge",
    "shard-crash",
)

#: How a fault instance was resolved (every ledger entry carries exactly one).
RESOLUTIONS = ("retried", "failed-over", "discarded")

#: Kinds whose recovery delay happens *after* the round's flush fired (the
#: transport kinds' delays are already embodied in shifted arrival times).
#: Shard crashes belong here too: a leaf aggregator dies while reducing its
#: cohort slice, so its retry/failover delay lands on the round's recovery
#: budget, never on individual arrival times.
POST_FLUSH_KINDS = ("enclave", "attestation", "proxy-crash", "mixnode-crash", "merge", "shard-crash")


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates and recovery-policy knobs for one simulation.

    All rates are independent per-draw probabilities in ``[0, 1)``; the
    default of ``0.0`` everywhere is behaviour-identical (bit for bit) to
    running without a fault plane at all.
    """

    #: P(a surviving client dies mid-training) per (client, round)
    client_crash_rate: float = 0.0
    #: P(a wire frame is corrupted in transit) per (client, round, attempt)
    frame_corruption_rate: float = 0.0
    #: P(an enclave decrypt transiently fails) per (sender, round, attempt)
    enclave_failure_rate: float = 0.0
    #: P(an attestation round-trip fails) per (round, attempt)
    attestation_failure_rate: float = 0.0
    #: P(the MixNN proxy crashes mid-round) per round; also the per-hop
    #: mix-node crash rate of the cascade failover path
    proxy_crash_rate: float = 0.0
    #: P(a server merge attempt fails) per (round, attempt)
    merge_failure_rate: float = 0.0
    #: P(a leaf shard aggregator crashes) per (shard, round, attempt) — only
    #: consulted when the simulation runs the sharded data plane
    shard_crash_rate: float = 0.0
    #: a sync round may close once this fraction of the surviving cohort has
    #: merged (1.0 = wait for everyone, the fault-free semantics)
    quorum_fraction: float = 1.0
    #: total attempts per operation before the payload is discarded
    max_attempts: int = 4
    #: seconds before the first retry; attempt ``a`` waits
    #: ``min(backoff_max, backoff_base * backoff_factor ** a)`` ± jitter
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: deterministic jitter as a ± fraction of the computed backoff
    backoff_jitter: float = 0.1
    #: per-hop ack timeout (simulated seconds): a transmission attempt slower
    #: than this is abandoned and retried; ``None`` disables the timeout
    hop_timeout: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "client_crash_rate",
            "frame_corruption_rate",
            "enclave_failure_rate",
            "attestation_failure_rate",
            "proxy_crash_rate",
            "merge_failure_rate",
            "shard_crash_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1) (1.0 would mean the operation can "
                    f"never succeed), got {rate}"
                )
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ValueError(
                f"quorum_fraction must be in (0, 1] — the server must merge at "
                f"least one update per round — got {self.quorum_fraction}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base <= 0:
            raise ValueError(f"backoff_base must be > 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max <= 0:
            raise ValueError(f"backoff_max must be > 0, got {self.backoff_max}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}")
        if self.hop_timeout is not None and self.hop_timeout <= 0:
            raise ValueError(f"hop_timeout must be > 0 (or None), got {self.hop_timeout}")

    @property
    def any_faults(self) -> bool:
        """Whether any injection rate is non-zero."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "client_crash_rate",
                "frame_corruption_rate",
                "enclave_failure_rate",
                "attestation_failure_rate",
                "proxy_crash_rate",
                "merge_failure_rate",
                "shard_crash_rate",
            )
        )

    def quorum_count(self, cohort: int) -> int:
        """Merged updates needed to close a round over ``cohort`` survivors."""
        return max(1, math.ceil(self.quorum_fraction * cohort))


class FaultInjector:
    """Deterministic fault draws, keyed like the churn/latency models.

    Every decision hashes ``(seed, "fault", kind, entity, round, attempt)``
    into its own one-shot RNG; a zero rate returns without drawing, so the
    all-zero config leaves the RNG universe untouched.
    """

    def __init__(self, seed: int, config: FaultConfig) -> None:
        self.seed = int(seed)
        self.config = config

    def _draw(self, rate: float, *key) -> bool:
        if rate <= 0.0:
            return False
        rng = rng_from_seed(stable_seed(self.seed, "fault", *key))
        return float(rng.random()) < rate

    # ------------------------------------------------------------------
    # Injection draws (one per pipeline hop)
    # ------------------------------------------------------------------
    def client_crash(self, client_id: int, round_index: int) -> bool:
        """Does this client die mid-training this round?"""
        return self._draw(self.config.client_crash_rate, "client-crash", client_id, round_index)

    def crashed_clients(self, client_ids, round_index: int) -> list[int]:
        """The subset of a cohort that dies mid-training this round, order
        preserved.  One hash draw per cohort member — unselected clients cost
        nothing, the population-scale engine's contract."""
        if self.config.client_crash_rate <= 0.0:
            return []
        return [
            client_id
            for client_id in client_ids
            if self.client_crash(client_id, round_index)
        ]

    def frame_fault(self, client_id: int, round_index: int, attempt: int) -> bool:
        """Is this transmission attempt's wire frame corrupted in transit?"""
        return self._draw(
            self.config.frame_corruption_rate, "frame", client_id, round_index, attempt
        )

    def enclave_fault(self, entity: int, round_index: int, attempt: int) -> bool:
        """Does this enclave decrypt attempt transiently fail?"""
        return self._draw(self.config.enclave_failure_rate, "enclave", entity, round_index, attempt)

    def attestation_fault(self, round_index: int, attempt: int) -> bool:
        """Does this attestation round-trip fail?"""
        return self._draw(self.config.attestation_failure_rate, "attestation", round_index, attempt)

    def proxy_crash(self, round_index: int) -> bool:
        """Does the MixNN proxy crash during this round's batch?"""
        return self._draw(self.config.proxy_crash_rate, "proxy-crash", round_index)

    def crash_point(self, round_index: int, num_messages: int) -> int:
        """Index of the message the proxy was about to process when it died.

        Uniform over ``[0, num_messages)``: messages before the point were
        ingested (and possibly partially emitted), the rest never reached the
        proxy and simply retransmit to the failover instance.
        """
        if num_messages <= 0:
            return 0
        rng = rng_from_seed(stable_seed(self.seed, "fault", "crash-point", round_index))
        return int(rng.integers(num_messages))

    def mix_node_crash(self, node_index: int, round_index: int, attempt: int) -> bool:
        """Does cascade node ``node_index`` crash during this delivery attempt?"""
        return self._draw(
            self.config.proxy_crash_rate, "mixnode-crash", node_index, round_index, attempt
        )

    def merge_fault(self, round_index: int, attempt: int) -> bool:
        """Does this server merge attempt fail?"""
        return self._draw(self.config.merge_failure_rate, "merge", round_index, attempt)

    def shard_crash(self, shard_index: int, round_index: int, attempt: int) -> bool:
        """Does leaf shard aggregator ``shard_index`` crash on this attempt?"""
        return self._draw(
            self.config.shard_crash_rate, "shard-crash", shard_index, round_index, attempt
        )

    # ------------------------------------------------------------------
    # Recovery-policy draws
    # ------------------------------------------------------------------
    def backoff(self, kind: str, entity: int, round_index: int, attempt: int) -> float:
        """Exponential backoff with deterministic ± jitter for a retry.

        ``attempt`` is the 0-based index of the attempt that just failed; the
        returned delay precedes attempt ``attempt + 1``.
        """
        config = self.config
        base = min(config.backoff_max, config.backoff_base * config.backoff_factor**attempt)
        if config.backoff_jitter == 0.0:
            return float(base)
        rng = rng_from_seed(stable_seed(self.seed, "fault", "backoff", kind, entity, round_index, attempt))
        return float(base * (1.0 + config.backoff_jitter * (2.0 * float(rng.random()) - 1.0)))

    def retry_latency(self, base_latency: float, client_id: int, round_index: int, attempt: int) -> float:
        """Transit latency of a retransmission (attempt ``>= 1``).

        A fresh deterministic draw scales the round's base latency by a
        uniform factor in ``[0.5, 1.5)`` — network conditions vary between
        attempts, which is what gives a timed-out hop a chance to recover.
        """
        if base_latency <= 0.0:
            return 0.0
        rng = rng_from_seed(
            stable_seed(self.seed, "fault", "retry-latency", client_id, round_index, attempt)
        )
        return float(base_latency * (0.5 + float(rng.random())))

    def corrupt_frame(self, blob: bytes, entity: int, round_index: int, attempt: int = 0) -> bytes:
        """Deterministically corrupt a wire frame (for adversarial tests).

        Draws a truncation point or a bit flip from the same keyed hash
        space as the injection decisions, so a corrupted blob is reproducible
        from the tuple alone.
        """
        if not blob:
            return blob
        rng = rng_from_seed(
            stable_seed(self.seed, "fault", "corrupt", entity, round_index, attempt)
        )
        if float(rng.random()) < 0.5:
            return blob[: int(rng.integers(len(blob)))]
        mutated = bytearray(blob)
        position = int(rng.integers(len(blob)))
        mutated[position] ^= 1 << int(rng.integers(8))
        return bytes(mutated)


@dataclass
class FaultRecord:
    """One injected fault instance and how the pipeline resolved it."""

    kind: str
    #: client id, proxy/node index, or -1 for server-side faults
    entity: int
    #: the round during which the fault was *handled* (a retried payload from
    #: an earlier round is accounted to the round doing the retrying)
    round_index: int
    attempt: int = 0
    resolution: str = ""
    #: simulated seconds the recovery cost (backoff delay, failover setup)
    delay_seconds: float = 0.0


@dataclass
class FaultLedger:
    """Append-only account of every injected fault and its resolution.

    The invariant ``injected == retried + failed_over + discarded`` holds by
    construction: :meth:`record` is the only writer and requires a valid
    resolution.  ``retransmissions`` counts payload re-sends triggered by a
    failover (they are recovery work, not separately injected faults).
    """

    entries: list[FaultRecord] = field(default_factory=list)
    retransmissions: int = 0

    def record(
        self,
        kind: str,
        entity: int,
        round_index: int,
        attempt: int = 0,
        resolution: str = "",
        delay_seconds: float = 0.0,
    ) -> FaultRecord:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        if resolution not in RESOLUTIONS:
            raise ValueError(
                f"every fault needs a resolution from {RESOLUTIONS}, got {resolution!r}"
            )
        entry = FaultRecord(
            kind=kind,
            entity=int(entity),
            round_index=int(round_index),
            attempt=int(attempt),
            resolution=resolution,
            delay_seconds=float(delay_seconds),
        )
        self.entries.append(entry)
        return entry

    def note_retransmissions(self, count: int) -> None:
        """Account payload re-sends performed during a failover."""
        if count < 0:
            raise ValueError(f"retransmission count must be >= 0, got {count}")
        self.retransmissions += count

    # ------------------------------------------------------------------
    # Accounting views
    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        return len(self.entries)

    @property
    def retried(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "retried")

    @property
    def failed_over(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "failed-over")

    @property
    def discarded(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "discarded")

    def round_slice(self, round_index: int) -> list[FaultRecord]:
        """Entries handled during one round."""
        return [e for e in self.entries if e.round_index == round_index]

    def counts(self) -> dict:
        """Per-kind and per-resolution tallies."""
        by_kind: dict[str, int] = {}
        by_resolution: dict[str, int] = {}
        for entry in self.entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
            by_resolution[entry.resolution] = by_resolution.get(entry.resolution, 0) + 1
        return {"by_kind": by_kind, "by_resolution": by_resolution}

    def validate(self) -> None:
        """Check the accounting invariant; raises ``ValueError`` on breach."""
        if self.injected != self.retried + self.failed_over + self.discarded:
            raise ValueError(
                f"fault ledger out of balance: {self.injected} injected != "
                f"{self.retried} retried + {self.failed_over} failed over + "
                f"{self.discarded} discarded"
            )

    def summary(self) -> dict:
        """A serializable account for reports and benchmarks."""
        self.validate()
        return {
            "injected": self.injected,
            "retried": self.retried,
            "failed_over": self.failed_over,
            "discarded": self.discarded,
            "retransmissions": self.retransmissions,
            "recovery_seconds": round(sum(e.delay_seconds for e in self.entries), 6),
            **self.counts(),
        }
