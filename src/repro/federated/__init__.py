"""``repro.federated`` — the federated-learning substrate (Figure 2 flow)."""

from .aggregation import coordinate_median, norm_filtered_mean, trimmed_mean
from .client import (
    FederatedClient,
    LocalTrainingConfig,
    evaluate_accuracy,
    train_locally,
)
from .events import (
    BufferedFlushPolicy,
    BufferFlush,
    ClientUpdateArrival,
    EventScheduler,
    FlushPolicy,
    QuorumFlushPolicy,
    RoundDeadline,
    SyncFlushPolicy,
    TransmissionFailure,
)
from .faults import (
    FaultConfig,
    FaultInjector,
    FaultLedger,
    FaultRecord,
)
from .flat import FlatState, FlatUpdateBatch, row_norms, unit_columns
from .scenario import (
    AlwaysAvailable,
    ChurnTrace,
    ClientAvailability,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    RandomDropout,
    ScenarioConfig,
    staleness_weight,
)
from .server import AggregationServer, ServerObserver
from .simulation import (
    FederatedSimulation,
    RoundRecord,
    SimulationConfig,
    SimulationResult,
)
from .update import (
    ModelUpdate,
    aggregate_states,
    aggregate_updates,
    layer_groups,
    state_delta,
)

__all__ = [
    "ModelUpdate",
    "layer_groups",
    "aggregate_states",
    "aggregate_updates",
    "coordinate_median",
    "trimmed_mean",
    "norm_filtered_mean",
    "state_delta",
    "FlatState",
    "FlatUpdateBatch",
    "unit_columns",
    "row_norms",
    "FederatedClient",
    "LocalTrainingConfig",
    "train_locally",
    "evaluate_accuracy",
    "AggregationServer",
    "ServerObserver",
    "FederatedSimulation",
    "SimulationConfig",
    "SimulationResult",
    "RoundRecord",
    "EventScheduler",
    "ClientUpdateArrival",
    "TransmissionFailure",
    "RoundDeadline",
    "BufferFlush",
    "FlushPolicy",
    "SyncFlushPolicy",
    "QuorumFlushPolicy",
    "BufferedFlushPolicy",
    "FaultConfig",
    "FaultInjector",
    "FaultLedger",
    "FaultRecord",
    "ScenarioConfig",
    "ClientAvailability",
    "AlwaysAvailable",
    "RandomDropout",
    "ChurnTrace",
    "LatencyModel",
    "FixedLatency",
    "LogNormalLatency",
    "staleness_weight",
]
