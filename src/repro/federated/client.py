"""Federated clients (participants).

Each round, a client receives the broadcast model state, refines it locally
on its private data (step ❷ of Figure 2 — Adam, a configured number of local
epochs and batch size, per §6.1.4), and returns a :class:`ModelUpdate` with
the refined parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.base import ArrayDataset, ClientDataset, DataLoader
from ..nn import Adam, CrossEntropyLoss, Module, Tensor, no_grad
from ..utils.rng import rng_from_seed, stable_seed
from .update import ModelUpdate

__all__ = ["LocalTrainingConfig", "FederatedClient", "train_locally", "evaluate_accuracy"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Local-training hyperparameters (paper §6.1.4 per-dataset values)."""

    local_epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-3

    def __post_init__(self) -> None:
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


def train_locally(
    model: Module,
    dataset: ArrayDataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> float:
    """Run the local SGD/Adam loop in place; return the final batch loss."""
    model.train()
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    criterion = CrossEntropyLoss()
    loader = DataLoader(dataset, batch_size=config.batch_size, rng=rng, shuffle=True)
    last_loss = float("nan")
    for _ in range(config.local_epochs):
        for features, labels in loader:
            logits = model(Tensor(features))
            loss = criterion(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = loss.item()
    return last_loss


def evaluate_accuracy(model: Module, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 classification accuracy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            features = dataset.features[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            logits = model(Tensor(features))
            correct += int((logits.numpy().argmax(axis=1) == labels).sum())
    return correct / len(dataset)


class FederatedClient:
    """One participant: local data + a model replica + training config.

    The model replica is built lazily on first use: with per-round client
    subsampling, participants that are never selected never pay for weight
    initialization.  Each client owns its replica and derives its training
    RNG from ``(seed, client_id, round_index)`` alone, so ``local_update``
    calls for *different* clients are thread-safe and order-independent —
    the property the simulation's parallel round engine relies on.
    """

    def __init__(
        self,
        data: ClientDataset,
        model_fn: Callable[[np.random.Generator], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
    ) -> None:
        self.data = data
        self.config = config
        self.seed = seed
        self._model_fn = model_fn
        self._model: Module | None = None

    @property
    def model(self) -> Module:
        """The client's model replica, constructed on first access.

        Initial weights are immediately overwritten by the first broadcast;
        a fixed-seed build keeps construction deterministic regardless.
        """
        if self._model is None:
            self._model = self._model_fn(rng_from_seed(self.seed))
        return self._model

    @property
    def client_id(self) -> int:
        return self.data.client_id

    def local_update(self, broadcast_state: dict, round_index: int) -> ModelUpdate:
        """Refine the broadcast model on local data; return the new state."""
        self.model.load_state_dict(broadcast_state)
        rng = rng_from_seed(stable_seed(self.seed, self.client_id, round_index))
        loss = train_locally(self.model, self.data.train, self.config, rng)
        return ModelUpdate(
            sender_id=self.client_id,
            round_index=round_index,
            state=self.model.state_dict(),
            num_samples=len(self.data.train),
            metadata={"final_loss": loss},
        )

    def test_accuracy(self, state: dict) -> float:
        """Accuracy of a given model state on this client's local test data."""
        self.model.load_state_dict(state)
        return evaluate_accuracy(self.model, self.data.test)
