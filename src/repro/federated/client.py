"""Federated clients (participants).

Each round, a client receives the broadcast model state, refines it locally
on its private data (step ❷ of Figure 2 — Adam, a configured number of local
epochs and batch size, per §6.1.4), and returns a :class:`ModelUpdate` with
the refined parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.base import ArrayDataset, ClientDataset, DataLoader
from ..nn import Adam, CrossEntropyLoss, Module, Tensor, no_grad
from ..utils.rng import rng_from_seed, stable_seed
from .update import ModelUpdate

__all__ = [
    "LocalTrainingConfig",
    "FederatedClient",
    "ClientPopulation",
    "train_locally",
    "train_rows_into",
    "evaluate_accuracy",
]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Local-training hyperparameters (paper §6.1.4 per-dataset values)."""

    local_epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-3

    def __post_init__(self) -> None:
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


def train_locally(
    model: Module,
    dataset: ArrayDataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> float:
    """Run the local SGD/Adam loop in place; return the final batch loss."""
    model.train()
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    criterion = CrossEntropyLoss()
    loader = DataLoader(dataset, batch_size=config.batch_size, rng=rng, shuffle=True)
    last_loss = float("nan")
    for _ in range(config.local_epochs):
        for features, labels in loader:
            logits = model(Tensor(features))
            loss = criterion(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = loss.item()
    return last_loss


def train_rows_into(
    population: "ClientPopulation",
    slot_client_pairs,
    broadcast_state: dict,
    round_index: int,
    schema,
    rows: np.ndarray,
) -> list[tuple[int, int, float]]:
    """Train a cohort slice and pack each refined state into its row slot.

    The workhorse of the sharded data plane, shared verbatim by the inline
    backend and the spawn workers so both execute identical float operations:
    each ``(slot, client_id)`` pair trains through the population's ordinary
    :meth:`FederatedClient.local_update` (whose RNG is a pure function of
    ``(seed, client_id, round)``) and its parameters land in ``rows[slot]``
    in schema order — the same bytes a serial round's update would carry.

    Returns per-slot ``(client_id, num_samples, final_loss)`` bookkeeping in
    input order.
    """
    out: list[tuple[int, int, float]] = []
    for slot, client_id in slot_client_pairs:
        client = population.get(client_id)
        update = client.local_update(broadcast_state, round_index)
        schema.write_into(rows[slot], update.state)
        out.append((client_id, update.num_samples, update.metadata["final_loss"]))
    return out


def evaluate_accuracy(model: Module, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 classification accuracy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            features = dataset.features[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            logits = model(Tensor(features))
            correct += int((logits.numpy().argmax(axis=1) == labels).sum())
    return correct / len(dataset)


class FederatedClient:
    """One participant: local data + a model replica + training config.

    The model replica is built lazily on first use: with per-round client
    subsampling, participants that are never selected never pay for weight
    initialization.  Each client owns its replica and derives its training
    RNG from ``(seed, client_id, round_index)`` alone, so ``local_update``
    calls for *different* clients are thread-safe and order-independent —
    the property the simulation's parallel round engine relies on.
    """

    def __init__(
        self,
        data: ClientDataset,
        model_fn: Callable[[np.random.Generator], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
    ) -> None:
        self.data = data
        self.config = config
        self.seed = seed
        self._model_fn = model_fn
        self._model: Module | None = None

    @property
    def model(self) -> Module:
        """The client's model replica, constructed on first access.

        Initial weights are immediately overwritten by the first broadcast;
        a fixed-seed build keeps construction deterministic regardless.
        """
        if self._model is None:
            self._model = self._model_fn(rng_from_seed(self.seed))
        return self._model

    @property
    def client_id(self) -> int:
        return self.data.client_id

    def local_update(self, broadcast_state: dict, round_index: int) -> ModelUpdate:
        """Refine the broadcast model on local data; return the new state."""
        self.model.load_state_dict(broadcast_state)
        rng = rng_from_seed(stable_seed(self.seed, self.client_id, round_index))
        loss = train_locally(self.model, self.data.train, self.config, rng)
        return ModelUpdate(
            sender_id=self.client_id,
            round_index=round_index,
            state=self.model.state_dict(),
            num_samples=len(self.data.train),
            metadata={"final_loss": loss},
        )

    def test_accuracy(self, state: dict) -> float:
        """Accuracy of a given model state on this client's local test data."""
        self.model.load_state_dict(state)
        return evaluate_accuracy(self.model, self.data.test)


class ClientPopulation:
    """The client plane as a descriptor table: participants materialize on
    demand and release after their round.

    A population stores one *descriptor* per client — its id and a way to
    build its data shard — and constructs the heavyweight
    :class:`FederatedClient` (model replica + dataset view) only when a round
    actually selects the client.  Every stochastic decision about a client
    (selection, churn, latency, faults, poison, the training RNG itself) is a
    pure function of ``(seed, client_id, round)``, so an unmaterialized
    client costs zero RNG work and a client materialized in round 7 trains
    bit-identically to one that has lived since round 0: the broadcast state
    overwrites the replica's weights and the optimizer is built per call.

    Retention modes:

    * ``retain=True`` (eager datasets) — materialized clients persist for
      the run, so replicas are reused across rounds: the legacy behavior,
      taken automatically for datasets that pre-build their client list.
    * ``retain=False`` (lazy populations) — :meth:`release` drops the
      replica and the shard once the round is done, bounding peak memory by
      the materialized cohort instead of the population size.

    ``data_fn(client_id)`` must return the client's
    :class:`~repro.data.base.ClientDataset`; for lazy populations it is
    re-invoked on every materialization and must be deterministic.
    """

    def __init__(
        self,
        size: int,
        data_fn: Callable[[int], ClientDataset],
        model_fn: Callable[[np.random.Generator], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
        retain: bool = True,
        client_ids=None,
    ) -> None:
        if size < 1:
            raise ValueError(f"a population needs at least 1 client, got {size}")
        self._data_fn = data_fn
        self._model_fn = model_fn
        self._config = config
        self._seed = seed
        self._retain = retain
        # range() keeps the id table O(1) memory for the common contiguous
        # case (lazy populations require client_id == index).
        self._ids = client_ids if client_ids is not None else range(size)
        if len(self._ids) != size:
            raise ValueError(f"got {len(self._ids)} client ids for a population of {size}")
        self._cache: dict[int, FederatedClient] = {}
        #: high-water mark of simultaneously materialized clients — the
        #: memory-bound the benchmarks and the scale tests assert on
        self.peak_materialized = 0

    @classmethod
    def from_client_data(cls, datasets, model_fn, config, seed: int = 0) -> "ClientPopulation":
        """Eager population over pre-built :class:`ClientDataset` shards."""
        ids = [data.client_id for data in datasets]
        by_id = {data.client_id: data for data in datasets}
        if len(by_id) != len(datasets):
            raise ValueError("client ids must be unique within a population")
        return cls(
            len(datasets), by_id.__getitem__, model_fn, config,
            seed=seed, retain=True, client_ids=ids,
        )

    @classmethod
    def for_dataset(cls, dataset, model_fn, config, seed: int = 0) -> "ClientPopulation":
        """The right population for a dataset: descriptor-backed when the
        dataset is a lazy population (``lazy_population`` attribute), eager
        over ``dataset.clients()`` otherwise."""
        if getattr(dataset, "lazy_population", False):
            return cls(
                dataset.num_clients, dataset.client_data, model_fn, config,
                seed=seed, retain=False,
            )
        return cls.from_client_data(dataset.clients(), model_fn, config, seed=seed)

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        return (
            f"ClientPopulation(size={len(self._ids)}, materialized={len(self._cache)}, "
            f"retain={self._retain})"
        )

    @property
    def materialized(self) -> int:
        """How many clients are materialized right now."""
        return len(self._cache)

    @property
    def model_fn(self):
        """The population's model factory (shared by every client)."""
        return self._model_fn

    @property
    def local_config(self) -> LocalTrainingConfig:
        """The population's local-training hyperparameters."""
        return self._config

    @property
    def seed(self) -> int:
        """The population's base seed (training RNGs derive from it)."""
        return self._seed

    def client_ids(self, indices) -> list[int]:
        """Map population indices (the selection RNG's draw space) to ids."""
        ids = self._ids
        return [ids[i] for i in indices]

    def get(self, client_id: int) -> FederatedClient:
        """The client, materializing (and caching) it if needed."""
        client = self._cache.get(client_id)
        if client is None:
            client = FederatedClient(
                self._data_fn(client_id), self._model_fn, self._config, seed=self._seed
            )
            self._cache[client_id] = client
            if len(self._cache) > self.peak_materialized:
                self.peak_materialized = len(self._cache)
        return client

    def materialize(self, client_ids) -> list[FederatedClient]:
        """Materialize a cohort, in the given (deterministic) order."""
        return [self.get(client_id) for client_id in client_ids]

    def release(self, client_ids=None) -> None:
        """Drop materialized clients (all of them when ``client_ids`` is
        ``None``).  A no-op for retaining populations, where replica reuse
        across rounds is the point."""
        if self._retain:
            return
        if client_ids is None:
            self._cache.clear()
        else:
            for client_id in client_ids:
                self._cache.pop(client_id, None)

    def clients(self) -> list[FederatedClient]:
        """Every client, materialized — compatibility surface for eager-era
        callers and small populations; defeats the memory bound at scale."""
        return self.materialize(self._ids)
