"""Deterministic Byzantine adversary plane: poisoning, replay, and the ledger.

The fault plane (:mod:`repro.federated.faults`) models *crash/omission*
failures — every surviving participant is still honest.  This module models
the Byzantine half: participants that survive and report, but report
*poison*.  Attack kinds cover the standard model-poisoning taxonomy (sign
flip, scaling, additive Gaussian, targeted backdoor, and the adaptive
within-variance ALIE-style attack computed on the round's flat ``(N, D)``
plane), plus proxy-level replay injection.

Design rules, identical to the fault plane:

* every adversary decision is a pure function of
  ``stable_seed(seed, "adv", kind, client, round)`` — never a shared
  sequential RNG — so attacker schedules are bit-identical across runs,
  execution orders, and ``parallelism`` settings;
* a fraction of ``0.0`` (and no explicit attacker ids) skips the hash draw
  entirely, which keeps the zero-adversary configuration bit-identical to
  the adversary-free pipeline;
* every *injected* attack instance lands in the :class:`AdversaryLedger`
  with a resolution — ``merged``, ``filtered``, or ``rejected`` — so the
  accounting invariant ``injected == merged + filtered + rejected`` holds by
  construction and is checkable per round.  Poisoned updates are registered
  *pending* at injection and resolved when the server's aggregation policy
  decides their fate; replays are rejected at the proxy by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.serialization import schema_of
from ..utils.rng import rng_from_seed, stable_seed

__all__ = [
    "ATTACK_KINDS",
    "ADVERSARY_KINDS",
    "ADVERSARY_RESOLUTIONS",
    "AdversaryConfig",
    "AdversaryInjector",
    "AdversaryRecord",
    "AdversaryLedger",
    "update_contributors",
]

#: Every poisoning attack the injector can apply to a trained update.
ATTACK_KINDS = ("sign-flip", "scaling", "gaussian", "backdoor", "alie")

#: Every kind a ledger entry can carry (attacks plus proxy-level replays).
ADVERSARY_KINDS = ATTACK_KINDS + ("replay",)

#: How an injected adversary instance was resolved (exactly one each):
#: ``merged`` — the poison reached the global model; ``filtered`` — a robust
#: policy (or the pipeline) dropped it; ``rejected`` — the proxy refused it
#: outright (replays).
ADVERSARY_RESOLUTIONS = ("merged", "filtered", "rejected")


@dataclass(frozen=True)
class AdversaryConfig:
    """Attacker population and attack parameters for one simulation.

    Attackers are chosen either by ``fraction`` (independent per-``(client,
    round)`` hash draws, like the fault rates) or by explicit
    ``attacker_ids`` (a fixed malicious coalition) — exactly one of the two.
    The default config (zero fraction, no ids, zero replay rate) is
    behaviour-identical (bit for bit) to running without an adversary plane.
    """

    #: P(a participant is Byzantine) per (client, round) hash draw
    fraction: float = 0.0
    #: explicit malicious coalition (mutually exclusive with ``fraction``)
    attacker_ids: tuple[int, ...] | None = None
    #: attack applied by every active attacker, from :data:`ATTACK_KINDS`
    kind: str = "sign-flip"
    #: sign-flip / scaling magnitude: the poisoned delta is ``-scale`` (sign
    #: flip) or ``+scale`` (scaling) times the honest delta
    scale: float = 1.0
    #: additive-Gaussian noise level (per-coordinate std dev)
    noise_sigma: float = 1.0
    #: ALIE deviation: attackers submit ``mean + alie_z * std`` of the benign
    #: cohort per coordinate — large enough to bias, small enough to hide
    #: within the benign variance
    alie_z: float = 1.0
    #: value the backdoor writes into its target coordinates
    backdoor_value: float = 5.0
    #: number of (deterministically drawn) coordinates the backdoor targets
    backdoor_dims: int = 16
    #: P(an attacker replays its own ciphertext to the proxy) per
    #: (client, round); rejected at the proxy by the replay guard
    replay_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in [0, 1) (at least one honest participant "
                f"must remain), got {self.fraction}"
            )
        if self.attacker_ids is not None:
            if self.fraction > 0.0:
                raise ValueError(
                    "fraction and attacker_ids are mutually exclusive; pick one "
                    "way to choose the malicious coalition"
                )
            object.__setattr__(
                self, "attacker_ids", tuple(sorted({int(i) for i in self.attacker_ids}))
            )
        if self.kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind {self.kind!r}; choose from {ATTACK_KINDS}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.noise_sigma <= 0.0:
            raise ValueError(f"noise_sigma must be > 0, got {self.noise_sigma}")
        if self.alie_z < 0.0:
            raise ValueError(f"alie_z must be >= 0, got {self.alie_z}")
        if not np.isfinite(self.backdoor_value):
            raise ValueError(f"backdoor_value must be finite, got {self.backdoor_value}")
        if self.backdoor_dims < 1:
            raise ValueError(f"backdoor_dims must be >= 1, got {self.backdoor_dims}")
        if not 0.0 <= self.replay_rate < 1.0:
            raise ValueError(f"replay_rate must be in [0, 1), got {self.replay_rate}")

    @property
    def any_adversaries(self) -> bool:
        """Whether this config can ever activate an attacker."""
        return (
            self.fraction > 0.0
            or bool(self.attacker_ids)
            or self.replay_rate > 0.0
        )


class AdversaryInjector:
    """Deterministic attacker activation and poisoning, keyed like the faults.

    Every decision hashes ``(seed, "adv", kind, client, round)`` into its own
    one-shot RNG; a zero fraction (and empty coalition) returns without
    drawing, so the all-zero config leaves the RNG universe untouched.
    """

    def __init__(self, seed: int, config: AdversaryConfig) -> None:
        self.seed = int(seed)
        self.config = config
        self._attacker_set = (
            frozenset(config.attacker_ids) if config.attacker_ids is not None else None
        )
        #: backdoor target coordinates, drawn once per (seed, D) — a backdoor
        #: aims at the *same* coordinates every round, or it isn't a backdoor
        self._backdoor_coords: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Activation draws
    # ------------------------------------------------------------------
    def is_attacker(self, client_id: int, round_index: int) -> bool:
        """Is this participant Byzantine this round?"""
        if self._attacker_set is not None:
            return client_id in self._attacker_set
        fraction = self.config.fraction
        if fraction <= 0.0:
            return False
        rng = rng_from_seed(
            stable_seed(self.seed, "adv", self.config.kind, client_id, round_index)
        )
        return float(rng.random()) < fraction

    def should_replay(self, client_id: int, round_index: int) -> bool:
        """Does this attacker replay its ciphertext to the proxy this round?"""
        rate = self.config.replay_rate
        if rate <= 0.0:
            return False
        if not self.is_attacker(client_id, round_index):
            return False
        rng = rng_from_seed(stable_seed(self.seed, "adv", "replay", client_id, round_index))
        return float(rng.random()) < rate

    # ------------------------------------------------------------------
    # Poisoning (in place, on the flat plane)
    # ------------------------------------------------------------------
    def backdoor_coordinates(self, total_size: int) -> np.ndarray:
        """The backdoor's target coordinates for a ``D``-sized model."""
        coords = self._backdoor_coords.get(total_size)
        if coords is None:
            rng = rng_from_seed(stable_seed(self.seed, "adv", "backdoor-coords"))
            dims = min(self.config.backdoor_dims, total_size)
            coords = np.sort(rng.choice(total_size, size=dims, replace=False))
            self._backdoor_coords[total_size] = coords
        return coords

    def poison_round(
        self,
        updates: list,
        broadcast_state: dict,
        round_index: int,
        ledger: "AdversaryLedger | None" = None,
    ) -> list[int]:
        """Poison the active attackers' updates in place; return their ids.

        Runs on the flat plane: each attacker's update is materialized as a
        flat vector and mutated in place (its state dict views follow).  The
        honest updates are never touched, and a config that can never
        activate an attacker returns before reading anything — the
        zero-adversary bit-identity guarantee.
        """
        config = self.config
        if not (config.fraction > 0.0 or self._attacker_set):
            return []
        attacker_slots = [
            i
            for i, update in enumerate(updates)
            if self.is_attacker(update.sender_id, round_index)
        ]
        if not attacker_slots:
            return []
        schema = schema_of(updates[0].state)
        reference = schema.pack(broadcast_state)
        alie_target: np.ndarray | None = None
        if config.kind == "alie":
            # Within-variance target: per-coordinate benign mean + z·std,
            # computed over the honest cohort *before* any row is mutated.
            # An all-attacker round falls back to the full (pre-attack) batch.
            benign = [u.ensure_flat() for i, u in enumerate(updates) if i not in set(attacker_slots)]
            pool = benign if benign else [updates[i].ensure_flat() for i in attacker_slots]
            stacked = np.stack(pool).astype(np.float64)
            mu = stacked.mean(axis=0)
            sigma = stacked.std(axis=0)
            alie_target = (mu + config.alie_z * sigma).astype(np.float32)
        for i in attacker_slots:
            update = updates[i]
            row = update.ensure_flat()
            self._apply_attack(row, reference, alie_target, update.sender_id, round_index)
            update.metadata["poisoned"] = config.kind
            update.metadata["poison_round"] = round_index
            if ledger is not None:
                ledger.register(config.kind, update.sender_id, round_index)
        return [updates[i].sender_id for i in attacker_slots]

    def _apply_attack(
        self,
        row: np.ndarray,
        reference: np.ndarray,
        alie_target: np.ndarray | None,
        client_id: int,
        round_index: int,
    ) -> None:
        config = self.config
        kind = config.kind
        if kind == "sign-flip":
            # w' = ref − scale·(w − ref): the honest delta, reversed and scaled.
            row -= reference
            row *= np.float32(-config.scale)
            row += reference
        elif kind == "scaling":
            row -= reference
            row *= np.float32(config.scale)
            row += reference
        elif kind == "gaussian":
            rng = rng_from_seed(
                stable_seed(self.seed, "adv", "gaussian", client_id, round_index)
            )
            row += (config.noise_sigma * rng.standard_normal(row.shape)).astype(np.float32)
        elif kind == "backdoor":
            row[self.backdoor_coordinates(row.size)] = np.float32(config.backdoor_value)
        elif kind == "alie":
            row[:] = alie_target
        else:  # pragma: no cover - closed by config validation
            raise ValueError(f"unknown attack kind {kind!r}")


@dataclass
class AdversaryRecord:
    """One injected adversary instance and how the pipeline resolved it."""

    kind: str
    client_id: int
    #: the round the attack was *injected* (the attacker's dispatch round)
    round_index: int
    resolution: str = ""


@dataclass
class AdversaryLedger:
    """Append-only account of every injected attack and its resolution.

    The invariant ``injected == merged + filtered + rejected`` holds by
    construction: :meth:`record` is the only entry writer and requires a
    valid resolution.  Poisoned updates whose fate is not yet known (they
    are still in the pipeline) sit in a *pending* set — registered at
    injection, resolved at the server merge via the contributor mapping
    (:func:`update_contributors`) or swept as ``filtered`` at the end of a
    run if they never arrived.
    """

    entries: list[AdversaryRecord] = field(default_factory=list)
    #: (client_id, round_index) -> attack kind, awaiting a merge decision
    pending: dict[tuple[int, int], str] = field(default_factory=dict)

    def record(
        self, kind: str, client_id: int, round_index: int, resolution: str
    ) -> AdversaryRecord:
        if kind not in ADVERSARY_KINDS:
            raise ValueError(f"unknown adversary kind {kind!r}; choose from {ADVERSARY_KINDS}")
        if resolution not in ADVERSARY_RESOLUTIONS:
            raise ValueError(
                f"every adversary instance needs a resolution from "
                f"{ADVERSARY_RESOLUTIONS}, got {resolution!r}"
            )
        entry = AdversaryRecord(
            kind=kind,
            client_id=int(client_id),
            round_index=int(round_index),
            resolution=resolution,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Pending poison bookkeeping
    # ------------------------------------------------------------------
    def register(self, kind: str, client_id: int, round_index: int) -> None:
        """Note an injected poison whose merge fate is not yet decided."""
        if kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind {kind!r}; choose from {ATTACK_KINDS}")
        self.pending[(int(client_id), int(round_index))] = kind

    def resolve(self, client_id: int, round_index: int, resolution: str) -> None:
        """Resolve one pending poison into a ledger entry."""
        kind = self.pending.pop((int(client_id), int(round_index)), None)
        if kind is None:
            raise KeyError(
                f"no pending poison for client {client_id} round {round_index}"
            )
        self.record(kind, client_id, round_index, resolution)

    def resolve_contributors(self, kept_ids: set[int], dropped_ids: set[int]) -> None:
        """Resolve pending poison by who contributed to the merged model.

        A pending attacker whose id contributed to a *kept* update (directly,
        or as a layer source of a MixNN chimera) is ``merged`` — its poison
        reached the model.  One that only contributed to *dropped* updates is
        ``filtered``.  Ids in neither set stay pending (still in flight).
        """
        for (client_id, round_index) in list(self.pending):
            if client_id in kept_ids:
                self.resolve(client_id, round_index, "merged")
            elif client_id in dropped_ids:
                self.resolve(client_id, round_index, "filtered")

    def resolve_stranded(self, resolution: str = "filtered") -> int:
        """Resolve every still-pending poison (end of run: it never merged)."""
        stranded = list(self.pending)
        for client_id, round_index in stranded:
            self.resolve(client_id, round_index, resolution)
        return len(stranded)

    # ------------------------------------------------------------------
    # Accounting views
    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        return len(self.entries)

    @property
    def merged(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "merged")

    @property
    def filtered(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "filtered")

    @property
    def rejected(self) -> int:
        return sum(1 for e in self.entries if e.resolution == "rejected")

    def round_slice(self, round_index: int) -> list[AdversaryRecord]:
        """Entries injected during one round."""
        return [e for e in self.entries if e.round_index == round_index]

    def counts(self) -> dict:
        """Per-kind and per-resolution tallies."""
        by_kind: dict[str, int] = {}
        by_resolution: dict[str, int] = {}
        for entry in self.entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
            by_resolution[entry.resolution] = by_resolution.get(entry.resolution, 0) + 1
        return {"by_kind": by_kind, "by_resolution": by_resolution}

    def validate(self) -> None:
        """Check the accounting invariant; raises ``ValueError`` on breach."""
        if self.injected != self.merged + self.filtered + self.rejected:
            raise ValueError(
                f"adversary ledger out of balance: {self.injected} injected != "
                f"{self.merged} merged + {self.filtered} filtered + "
                f"{self.rejected} rejected"
            )
        if self.pending:
            raise ValueError(
                f"adversary ledger has {len(self.pending)} unresolved pending "
                f"poisons; resolve or sweep them before validating"
            )

    def summary(self) -> dict:
        """A serializable account for reports and benchmarks."""
        self.validate()
        return {
            "injected": self.injected,
            "merged": self.merged,
            "filtered": self.filtered,
            "rejected": self.rejected,
            **self.counts(),
        }


def update_contributors(update) -> set[int]:
    """Participant ids whose parameters an update (or chimera) contains.

    A plain update contributes its sender; a MixNN chimera contributes every
    layer source recorded in its ``unit_sources`` metadata — poison merged
    through mixing is still merged poison.
    """
    sources = update.metadata.get("unit_sources")
    if sources:
        return {int(s) for s in sources}
    return {int(update.sender_id)}
