"""End-to-end update integrity: provenance digests and the round transcript.

Three layers of the pipeline cooperate on update integrity:

* **transport** (:mod:`repro.mixnn.transport`) carries a provenance digest
  and a round-scoped nonce inside every encrypted envelope, verified at
  unpack — a frame whose body was tampered in transit dies with a typed
  error, never a silent value change;
* **proxy** (:mod:`repro.mixnn.proxy`) rejects replayed nonces and threads
  per-layer source digests through chimera emissions (``unit_digests``);
* **server** appends every merge to the hash-chained :class:`RoundTranscript`
  here, so a post-hoc audit can replay a round — recompute each update's
  digest and the aggregate's digest from retained updates — and verify the
  chain end to end.

Digests are SHA-256 over the update's flat float32 parameter buffer (the
same bytes every consumer shares on the flat plane), so the digest a client
computes at pack time, the proxy forwards, and the auditor recomputes from
``received_updates`` all agree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "state_digest",
    "update_digest",
    "TranscriptError",
    "TranscriptEntry",
    "RoundTranscript",
]


def state_digest(state) -> str:
    """SHA-256 hex digest of a parameter state (dict or flat vector)."""
    if isinstance(state, np.ndarray):
        data = np.ascontiguousarray(state, dtype=np.float32).tobytes()
    else:
        data = b"".join(
            np.ascontiguousarray(np.asarray(value, dtype=np.float32)).tobytes()
            for value in state.values()
        )
    return hashlib.sha256(data).hexdigest()


def update_digest(update) -> str:
    """SHA-256 hex digest of one update's flat parameter buffer.

    Flat-backed updates hash their backing vector directly; dict-backed
    updates hash the same bytes via per-parameter concatenation — identical
    by the flat-plane packing invariant (schema order, float32).
    """
    if getattr(update, "flat_vector", None) is not None:
        return hashlib.sha256(
            np.ascontiguousarray(update.flat_vector, dtype=np.float32).tobytes()
        ).hexdigest()
    return state_digest(update.state)


class TranscriptError(ValueError):
    """A round transcript failed verification (chain break or tampering)."""


#: chain anchor: every transcript starts from the same well-known head
_GENESIS = hashlib.sha256(b"round-transcript-v1").hexdigest()


@dataclass
class TranscriptEntry:
    """One merged round, hash-chained to its predecessor."""

    round_index: int
    #: aggregation rule that produced this round's model
    rule: str
    #: ``(apparent_id, digest)`` of every update the server received, in
    #: consumption order
    updates: tuple[tuple[int, str], ...]
    #: indices (into ``updates``) the policy actually merged
    kept: tuple[int, ...]
    #: digest of the post-merge global state
    aggregate_digest: str
    prev_hash: str
    entry_hash: str

    def payload(self) -> dict:
        """The hashed content (everything except the hashes themselves)."""
        return {
            "round_index": self.round_index,
            "rule": self.rule,
            "updates": [[int(i), d] for i, d in self.updates],
            "kept": [int(i) for i in self.kept],
            "aggregate_digest": self.aggregate_digest,
        }


def _entry_hash(prev_hash: str, payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(prev_hash.encode() + canonical.encode()).hexdigest()


@dataclass
class RoundTranscript:
    """Append-only hash chain of every server merge.

    Each entry binds the round's inputs (per-update provenance digests and
    apparent ids), the aggregation rule, which inputs were kept, and the
    resulting aggregate digest to the previous entry's hash.  Rewriting any
    field of any past round breaks every subsequent hash, which
    :meth:`verify` detects; :meth:`audit_round` additionally recomputes one
    round's digests from retained updates — the post-hoc replay check.
    """

    entries: list[TranscriptEntry] = field(default_factory=list)
    head: str = _GENESIS

    def __len__(self) -> int:
        return len(self.entries)

    def append(
        self,
        round_index: int,
        rule: str,
        updates: list[tuple[int, str]],
        kept: list[int],
        aggregate_digest: str,
    ) -> TranscriptEntry:
        entry = TranscriptEntry(
            round_index=int(round_index),
            rule=str(rule),
            updates=tuple((int(i), str(d)) for i, d in updates),
            kept=tuple(int(i) for i in kept),
            aggregate_digest=str(aggregate_digest),
            prev_hash=self.head,
            entry_hash="",
        )
        entry.entry_hash = _entry_hash(self.head, entry.payload())
        self.entries.append(entry)
        self.head = entry.entry_hash
        return entry

    def verify(self) -> None:
        """Re-walk the chain; raises :class:`TranscriptError` on any breach."""
        running = _GENESIS
        for position, entry in enumerate(self.entries):
            if entry.prev_hash != running:
                raise TranscriptError(
                    f"transcript chain broken at entry {position} (round "
                    f"{entry.round_index}): prev_hash does not match the "
                    f"preceding entry"
                )
            expected = _entry_hash(running, entry.payload())
            if entry.entry_hash != expected:
                raise TranscriptError(
                    f"transcript entry {position} (round {entry.round_index}) "
                    f"was tampered with: recorded hash does not match its content"
                )
            running = entry.entry_hash
        if self.head != running:
            raise TranscriptError("transcript head does not match the last entry")

    def audit_round(self, position: int, received_updates: list) -> None:
        """Replay one round's inputs against the transcript.

        Recomputes every received update's digest and compares it (and the
        recorded apparent ids, in order) to what the server committed to the
        chain — the check an external auditor with the retained updates runs.
        Raises :class:`TranscriptError` on mismatch.
        """
        self.verify()
        entry = self.entries[position]
        observed = tuple(
            (int(u.apparent_id), update_digest(u)) for u in received_updates
        )
        if observed != entry.updates:
            raise TranscriptError(
                f"round {entry.round_index} audit failed: retained updates do "
                f"not match the transcribed (apparent_id, digest) sequence"
            )
