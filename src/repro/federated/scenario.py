"""Scenario models: client churn, stragglers, and asynchronous rounds.

The paper evaluates MixNN under an idealized synchronous flow — every
selected client trains and reports each round (Figures 2–3).  Real
deployments see *churn* (devices go offline), *stragglers* (slow devices
miss the round), and *asynchrony* (the server cannot afford to wait for the
slowest participant).  This module models those regimes on top of the
existing round engine without perturbing it when no scenario is configured.

Design rules, mirroring the training RNGs:

* every stochastic scenario decision is derived from
  ``stable_seed(seed, label, client_id, round_index)`` alone — never from a
  shared sequential RNG — so availability and latency draws are identical
  across ``parallelism`` settings and independent of execution order;
* :class:`ScenarioConfig` with all defaults is behaviour-identical to no
  scenario at all (full participation, synchronous aggregation);
* scenario metadata (``staleness``, ``latency``, ``origin_round``) rides on
  :class:`~repro.federated.update.ModelUpdate.metadata` so downstream
  consumers (aggregation weighting, benchmarks) need no new plumbing.

Aggregation modes
-----------------
``"sync"``
    The server waits for every surviving participant (optionally cut by a
    ``deadline`` against the latency model) and averages them — today's flow.
``"buffered-async"``
    FedBuff-style (Nguyen et al., AISTATS'22): the server aggregates the
    first ``buffer_size`` *arrivals* each round; later arrivals stay in
    flight and join a future round carrying ``staleness = rounds late``,
    down-weighted by ``(1 + staleness) ** -staleness_alpha`` inside
    :func:`~repro.federated.update.aggregate_updates`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..utils.rng import rng_from_seed, stable_seed
from .adversary import AdversaryConfig
from .faults import FaultConfig

__all__ = [
    "ClientAvailability",
    "AlwaysAvailable",
    "RandomDropout",
    "ChurnTrace",
    "LatencyModel",
    "FixedLatency",
    "LogNormalLatency",
    "ScenarioConfig",
    "staleness_weight",
]

AGGREGATION_MODES = ("sync", "buffered-async")


# ----------------------------------------------------------------------
# Availability (churn)
# ----------------------------------------------------------------------
class ClientAvailability(abc.ABC):
    """Decides, per round, whether a selected client actually participates.

    Implementations must be pure functions of ``(seed, client_id,
    round_index)`` so the decision is reproducible across runs, execution
    orders, and parallelism settings.
    """

    @abc.abstractmethod
    def is_available(self, seed: int, client_id: int, round_index: int) -> bool:
        """Whether ``client_id`` shows up for ``round_index``."""

    def filter_available(
        self, seed: int, client_ids: Iterable[int], round_index: int
    ) -> list[int]:
        """The subset of ``client_ids`` that shows up this round, order
        preserved.  One hash draw per *selected* client — the population-scale
        engine funnels cohorts through here before materializing anyone, so
        churn costs nothing for the unselected millions."""
        return [
            client_id
            for client_id in client_ids
            if self.is_available(seed, client_id, round_index)
        ]


class AlwaysAvailable(ClientAvailability):
    """No churn: every selected client participates (the paper's setting)."""

    def is_available(self, seed: int, client_id: int, round_index: int) -> bool:
        return True

    def filter_available(
        self, seed: int, client_ids: Iterable[int], round_index: int
    ) -> list[int]:
        return list(client_ids)


@dataclass(frozen=True)
class RandomDropout(ClientAvailability):
    """Independent per-(client, round) dropout with a fixed probability.

    The draw comes from ``stable_seed(seed, "availability", client_id,
    round_index)`` — the same derivation scheme as the training RNGs — so a
    client's fate this round is a pure function of the tuple, not of how many
    other clients were polled before it.
    """

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {self.probability}")

    def is_available(self, seed: int, client_id: int, round_index: int) -> bool:
        if self.probability == 0.0:
            return True
        rng = rng_from_seed(stable_seed(seed, "availability", client_id, round_index))
        return float(rng.random()) >= self.probability


class ChurnTrace(ClientAvailability):
    """Replay an explicit availability trace (round → available client ids).

    Rounds absent from the trace fall back to ``default_available`` — so a
    trace can describe only the outage windows of interest.
    """

    def __init__(self, trace: Mapping[int, Iterable[int]], default_available: bool = True) -> None:
        self.trace = {int(r): frozenset(int(c) for c in ids) for r, ids in trace.items()}
        self.default_available = default_available

    def is_available(self, seed: int, client_id: int, round_index: int) -> bool:
        available = self.trace.get(round_index)
        if available is None:
            return self.default_available
        return client_id in available

    def __repr__(self) -> str:
        return f"ChurnTrace(rounds={sorted(self.trace)}, default={self.default_available})"


# ----------------------------------------------------------------------
# Stragglers (latency)
# ----------------------------------------------------------------------
class LatencyModel(abc.ABC):
    """Simulated wall-clock seconds between broadcast and an update's arrival.

    Like availability, a pure function of ``(seed, client_id, round_index)``.
    """

    @abc.abstractmethod
    def latency(self, seed: int, client_id: int, round_index: int) -> float:
        """Simulated seconds for ``client_id``'s round-trip this round."""


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant per-client latency — handy for deterministic tests and traces.

    ``per_client`` overrides the default for specific client ids.
    """

    seconds: float = 1.0
    per_client: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"latency must be >= 0, got {self.seconds}")
        if isinstance(self.per_client, Mapping):  # accept a plain dict too
            object.__setattr__(self, "per_client", tuple(self.per_client.items()))
        object.__setattr__(self, "_table", dict(self.per_client))

    def latency(self, seed: int, client_id: int, round_index: int) -> float:
        return float(self._table.get(client_id, self.seconds))


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal round-trip times with an optional heavy straggler tail.

    ``median`` is the typical round-trip; ``sigma`` the log-scale spread.  A
    ``straggler_fraction`` of (client, round) pairs additionally multiply
    their draw by ``straggler_multiplier`` — the bimodal "phone went to the
    pocket" tail that deadline-based cutting is designed for.

    ``client_spread`` adds a *systematic* per-client speed factor
    ``exp(client_spread · z_c)`` with ``z_c ~ N(0, 1)`` drawn once per client
    (a pure function of ``(seed, client_id)``): real fleets mix fast and slow
    devices whose relative speed persists across rounds.  This is exactly the
    component a timing side-channel adversary
    (:class:`~repro.attacks.timing.TimingSideChannel`) can profile — with the
    default ``0.0`` every draw is i.i.d. across rounds and arrival order
    carries no identity signal.
    """

    median: float = 1.0
    sigma: float = 0.5
    straggler_fraction: float = 0.0
    straggler_multiplier: float = 10.0
    client_spread: float = 0.0

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median latency must be > 0, got {self.median}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ValueError(
                f"straggler_fraction must be in [0, 1], got {self.straggler_fraction}"
            )
        if self.straggler_multiplier < 1.0:
            raise ValueError(
                f"straggler_multiplier must be >= 1, got {self.straggler_multiplier}"
            )
        if self.client_spread < 0:
            raise ValueError(f"client_spread must be >= 0, got {self.client_spread}")

    def latency(self, seed: int, client_id: int, round_index: int) -> float:
        rng = rng_from_seed(stable_seed(seed, "latency", client_id, round_index))
        value = self.median * math.exp(self.sigma * float(rng.standard_normal()))
        if self.straggler_fraction and float(rng.random()) < self.straggler_fraction:
            value *= self.straggler_multiplier
        if self.client_spread:
            speed_rng = rng_from_seed(stable_seed(seed, "client-speed", client_id))
            value *= math.exp(self.client_spread * float(speed_rng.standard_normal()))
        return float(value)


# ----------------------------------------------------------------------
# Staleness weighting
# ----------------------------------------------------------------------
def staleness_weight(staleness: int, alpha: float) -> float:
    """FedBuff-style polynomial down-weighting: ``(1 + s) ** -alpha``.

    ``staleness`` is how many rounds late the update arrived (0 = on time,
    weight 1); larger ``alpha`` discounts stale contributions harder.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be >= 0, got {staleness}")
    if staleness == 0:
        return 1.0
    return float((1.0 + staleness) ** (-alpha))


# ----------------------------------------------------------------------
# The scenario bundle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioConfig:
    """Operating-regime knobs for :class:`~repro.federated.simulation.FederatedSimulation`.

    All defaults are behaviour-identical to running without a scenario: full
    availability, no latency model, synchronous aggregation.  Mix and match:

    * ``availability`` — churn model (:class:`RandomDropout`,
      :class:`ChurnTrace`); dropped clients neither train nor report.
    * ``latency`` + ``deadline`` — stragglers; in ``"sync"`` mode a client
      whose simulated latency exceeds the deadline misses the round entirely.
    * ``aggregation="buffered-async"`` + ``buffer_size`` — the server
      aggregates the first ``buffer_size`` arrivals; the rest stay in flight
      and land in a later round with ``staleness`` metadata, down-weighted by
      ``staleness_alpha`` (and discarded beyond ``max_staleness``).
    """

    availability: ClientAvailability | None = None
    latency: LatencyModel | None = None
    #: simulated seconds after which a sync round closes (requires ``latency``)
    deadline: float | None = None
    aggregation: str = "sync"
    #: K of the FedBuff-style buffer (buffered-async mode takes exactly one
    #: of ``buffer_size`` and ``buffer_fraction``)
    buffer_size: int | None = None
    #: alternative to ``buffer_size``: K as a fraction of the cohort that
    #: actually dispatched each round, resolved via :meth:`effective_buffer_size`
    buffer_fraction: float | None = None
    #: polynomial staleness discount exponent (0 = no down-weighting)
    staleness_alpha: float = 0.5
    #: in-flight updates older than this many rounds are discarded, not
    #: merged.  The default (10) also bounds the async backlog: without it a
    #: buffer persistently smaller than the arrival rate would accumulate
    #: full model states without limit.  ``None`` = keep everything forever.
    max_staleness: int | None = 10
    #: fault-injection rates and recovery policy; ``None`` (and likewise a
    #: :class:`~repro.federated.faults.FaultConfig` with all-zero rates) is
    #: bit-identical to the fault-free event path.
    faults: FaultConfig | None = None
    #: Byzantine adversary plane; ``None`` (and likewise an
    #: :class:`~repro.federated.adversary.AdversaryConfig` with zero fraction
    #: and no explicit attackers) is bit-identical to the adversary-free path.
    adversary: AdversaryConfig | None = None

    def __post_init__(self) -> None:
        if self.aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"unknown aggregation mode {self.aggregation!r}; choose from {AGGREGATION_MODES}"
            )
        if self.deadline is not None:
            if self.deadline <= 0:
                raise ValueError(
                    f"deadline must be > 0 simulated seconds (a non-positive deadline "
                    f"would close every round before anything can arrive), got {self.deadline}"
                )
            if self.latency is None:
                raise ValueError("a deadline requires a latency model to measure against")
        if self.buffer_fraction is not None and not 0.0 < self.buffer_fraction <= 1.0:
            raise ValueError(
                f"buffer_fraction must be in (0, 1] — it is the share of each "
                f"round's dispatched cohort the async buffer waits for — got "
                f"{self.buffer_fraction}"
            )
        if self.aggregation == "buffered-async":
            if self.buffer_size is None and self.buffer_fraction is None:
                raise ValueError(
                    "buffered-async aggregation requires buffer_size >= 1 or "
                    "buffer_fraction in (0, 1]"
                )
            if self.buffer_size is not None and self.buffer_fraction is not None:
                raise ValueError(
                    "buffer_size and buffer_fraction are mutually exclusive; "
                    "pick one way to size the async buffer"
                )
            if self.buffer_size is not None and self.buffer_size < 1:
                raise ValueError(
                    f"buffered-async aggregation requires buffer_size >= 1, got {self.buffer_size}"
                )
        else:
            if self.buffer_size is not None:
                raise ValueError("buffer_size only applies to buffered-async aggregation")
            if self.buffer_fraction is not None:
                raise ValueError("buffer_fraction only applies to buffered-async aggregation")
        if self.staleness_alpha < 0:
            raise ValueError(
                f"staleness_alpha must be >= 0 (it is the exponent of the "
                f"(1 + staleness)^-alpha discount; negative values would "
                f"up-weight stale updates), got {self.staleness_alpha}"
            )
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {self.max_staleness}")

    @property
    def is_async(self) -> bool:
        return self.aggregation == "buffered-async"

    def effective_buffer_size(self, dispatched: int) -> int:
        """Resolve the async buffer's K for a round that dispatched ``dispatched``
        clients: ``buffer_size`` verbatim, or ``buffer_fraction`` of the cohort
        (at least 1)."""
        if self.buffer_size is not None:
            return self.buffer_size
        if self.buffer_fraction is None:
            raise ValueError("neither buffer_size nor buffer_fraction is configured")
        return max(1, int(round(self.buffer_fraction * dispatched)))
