"""Aggregation server.

Implements step ❶ (broadcast) and step ❸ (aggregate) of the classical FL
flow (Figure 2).  The server is the *adversary* in the paper's threat model
(§3): hooks allow an attack to observe every received update (passive ∇Sim)
and to replace the broadcast model (active ∇Sim).  The aggregation logic
itself is honest in both cases — the paper's malicious server still wants the
main task to converge.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..nn import Module
from .update import ModelUpdate, aggregate_updates

__all__ = ["ServerObserver", "AggregationServer"]


class ServerObserver(Protocol):
    """Interface for adversarial (or monitoring) observers on the server.

    ``on_round`` is invoked once per round with the state that was broadcast
    and the updates as the server received them (post-defense, post-proxy).
    """

    def on_round(self, round_index: int, broadcast_state: dict, updates: list[ModelUpdate]) -> None:
        ...  # pragma: no cover - protocol


class AggregationServer:
    """FedAvg server with adversarial hooks."""

    def __init__(
        self,
        initial_state: dict,
        sample_weighted: bool = False,
        broadcast_hook: Callable[[int, dict], dict] | None = None,
    ) -> None:
        self.global_state = {k: np.asarray(v, dtype=np.float32).copy() for k, v in initial_state.items()}
        self.sample_weighted = sample_weighted
        self.broadcast_hook = broadcast_hook
        self.observers: list[ServerObserver] = []
        self.round_index = 0
        self.received_log: list[list[ModelUpdate]] = []

    @classmethod
    def from_model(cls, model: Module, **kwargs) -> "AggregationServer":
        return cls(model.state_dict(), **kwargs)

    def add_observer(self, observer: ServerObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def broadcast(self) -> dict:
        """Model state disseminated this round (step ❶).

        A malicious server (active ∇Sim) substitutes a crafted model through
        ``broadcast_hook``; an honest server sends the current aggregate.
        """
        state = self.global_state
        if self.broadcast_hook is not None:
            state = self.broadcast_hook(self.round_index, state)
        self._last_broadcast = {k: v.copy() for k, v in state.items()}
        return self._last_broadcast

    def receive_and_aggregate(self, updates: list[ModelUpdate]) -> dict:
        """Aggregate received updates into the next global model (step ❸)."""
        if not updates:
            raise ValueError("no updates received this round")
        for observer in self.observers:
            observer.on_round(self.round_index, self._last_broadcast, updates)
        self.received_log.append(updates)
        self.global_state = aggregate_updates(updates, sample_weighted=self.sample_weighted)
        self.round_index += 1
        return self.global_state
