"""Aggregation server.

Implements step ❶ (broadcast) and step ❸ (aggregate) of the classical FL
flow (Figure 2).  The server is the *adversary* in the paper's threat model
(§3): hooks allow an attack to observe every received update (passive ∇Sim)
and to replace the broadcast model (active ∇Sim).  The aggregation logic
itself is honest in both cases — the paper's malicious server still wants the
main task to converge.

Memory model: the server keeps **no per-round history by default**.  Earlier
versions retained every update of every round in ``received_log``, which
grows without bound in long-running deployments; retention is now opt-in via
``retain_received`` (``None`` = unlimited, ``n`` = a bounded ring of the last
``n`` rounds, ``0`` = off).  Attacks and analyses that need history register
a :class:`ServerObserver` instead and decide their own retention.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

import numpy as np

from ..nn import Module
from .aggregation import AggregationPolicy, AggregationReport
from .integrity import RoundTranscript, state_digest, update_digest
from .update import ModelUpdate, aggregate_updates

__all__ = ["ServerObserver", "AggregationServer"]


class ServerObserver(Protocol):
    """Interface for adversarial (or monitoring) observers on the server.

    ``on_round`` is invoked once per round with the state that was broadcast
    and the updates as the server received them (post-defense, post-proxy).
    """

    def on_round(self, round_index: int, broadcast_state: dict, updates: list[ModelUpdate]) -> None:
        ...  # pragma: no cover - protocol


class AggregationServer:
    """FedAvg server with adversarial hooks."""

    def __init__(
        self,
        initial_state: dict,
        sample_weighted: bool = False,
        broadcast_hook: Callable[[int, dict], dict] | None = None,
        retain_received: int | None = 0,
        staleness_alpha: float | None = None,
        fault_injector=None,
        fault_ledger=None,
        policy: AggregationPolicy | None = None,
        transcript: RoundTranscript | None = None,
        num_shards: int = 0,
    ) -> None:
        self.global_state = {k: np.asarray(v, dtype=np.float32).copy() for k, v in initial_state.items()}
        self.sample_weighted = sample_weighted
        #: FedBuff-style staleness discount for buffered-async rounds; ``None``
        #: (the default) aggregates every update at full weight.
        self.staleness_alpha = staleness_alpha
        self.broadcast_hook = broadcast_hook
        self.observers: list[ServerObserver] = []
        self.round_index = 0
        if retain_received is not None and retain_received < 0:
            raise ValueError(f"retain_received must be >= 0 or None, got {retain_received}")
        self._retain_received = retain_received
        #: fault plane hooks — injected merge failures retry with backoff
        self._fault_injector = fault_injector
        self._fault_ledger = fault_ledger
        #: selectable robust-aggregation rule; ``None`` is the classical mean
        self.policy = policy
        if num_shards < 0:
            raise ValueError(f"num_shards must be >= 0, got {num_shards}")
        #: leaf-shard count of the sharded merge path (0 = the serial
        #: reference).  Clamped per round to the cohort size: every rule then
        #: composes from per-shard partials / Gram tiles, byte-equal to the
        #: serial path by the sharding module's merge-order contract.
        self.num_shards = num_shards
        #: hash-chained audit log of every merge (always on — pure SHA-256
        #: bookkeeping, no RNG or numeric effect on the aggregate)
        self.transcript = transcript if transcript is not None else RoundTranscript()
        #: what the last merge kept/dropped (participant-level filtering)
        self.last_aggregation_report: AggregationReport | None = None
        #: rounds of received updates, newest last (empty unless opted in)
        self.received_log: "deque[list[ModelUpdate]]" = deque(
            maxlen=retain_received if retain_received is not None else None
        )
        self._last_broadcast: dict | None = None

    @classmethod
    def from_model(cls, model: Module, **kwargs) -> "AggregationServer":
        return cls(model.state_dict(), **kwargs)

    def add_observer(self, observer: ServerObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def broadcast(self) -> dict:
        """Model state disseminated this round (step ❶).

        A malicious server (active ∇Sim) substitutes a crafted model through
        ``broadcast_hook``; an honest server sends the current aggregate.

        The returned dict is the live state — treat it as read-only (clients
        copy on :meth:`~repro.nn.module.Module.load_state_dict`).  A pristine
        per-parameter copy for observers is only taken when observers are
        registered, so the hook-less, observer-less fast path broadcasts with
        zero copies.
        """
        state = self.global_state
        if self.broadcast_hook is not None:
            state = self.broadcast_hook(self.round_index, state)
        if self.observers:
            self._last_broadcast = {k: np.asarray(v).copy() for k, v in state.items()}
        else:
            self._last_broadcast = state
        return state

    def receive_and_aggregate(self, updates: list[ModelUpdate]) -> dict:
        """Aggregate received updates into the next global model (step ❸)."""
        if not updates:
            raise ValueError(
                f"no updates received in round {self.round_index} — either no clients "
                "were selected (check clients_per_round) or every selected client "
                "dropped out / missed the deadline (check the scenario's "
                "availability, latency, and deadline settings)"
            )
        for observer in self.observers:
            observer.on_round(self.round_index, self._last_broadcast, updates)
        injector, ledger = self._fault_injector, self._fault_ledger
        if injector is not None and injector.config.merge_failure_rate > 0:
            # A crashed/delayed merge is retried against the same buffered
            # updates; the delay lands on the round's recovery time budget.
            for attempt in range(injector.config.max_attempts):
                if not injector.merge_fault(self.round_index, attempt):
                    break
                delay = injector.backoff("merge", -1, self.round_index, attempt)
                ledger.record(
                    "merge", -1, self.round_index, attempt, "retried", delay_seconds=delay
                )
        if self._retain_received is None or self._retain_received > 0:
            self.received_log.append(updates)
        policy = self.policy
        shard_plan = self._shard_plan(len(updates))
        if shard_plan is not None:
            effective = policy if policy is not None else AggregationPolicy()
            new_state, kept, dropped = effective.aggregate(
                updates,
                reference=self.global_state,
                sample_weighted=self.sample_weighted,
                staleness_alpha=self.staleness_alpha,
                shard_plan=shard_plan,
            )
            rule = effective.rule
        elif policy is None or policy.rule == "mean":
            new_state = aggregate_updates(
                updates,
                sample_weighted=self.sample_weighted,
                staleness_alpha=self.staleness_alpha,
            )
            kept: tuple[int, ...] = tuple(range(len(updates)))
            dropped: tuple[int, ...] = ()
            rule = "mean"
        else:
            new_state, kept, dropped = policy.aggregate(
                updates,
                reference=self.global_state,
                sample_weighted=self.sample_weighted,
                staleness_alpha=self.staleness_alpha,
            )
            rule = policy.rule
        self.last_aggregation_report = AggregationReport(rule=rule, kept=kept, dropped=dropped)
        self.transcript.append(
            round_index=self.round_index,
            rule=rule,
            updates=[(u.apparent_id, update_digest(u)) for u in updates],
            kept=list(kept),
            aggregate_digest=state_digest(new_state),
        )
        self.global_state = new_state
        self.round_index += 1
        return self.global_state

    def _shard_plan(self, cohort_size: int):
        """The round's merge-side shard plan, or ``None`` for the serial path."""
        if self.num_shards <= 0:
            return None
        from .sharding import ShardPlan

        return ShardPlan.build(cohort_size, min(self.num_shards, cohort_size))
