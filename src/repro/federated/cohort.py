"""Cohort-batched local training: one stacked forward/backward per round.

Every selected client shares one architecture, so a round's local SGD is M
independent instances of the same small computation.  This module fuses them:
the cohort's weights live in one ``(M, D)`` flat block (rows in
:class:`~repro.nn.serialization.StateSchema` order, exactly the row layout of
the sharded data plane), each parameter is an ``(M, *shape)`` zero-copy view
into that block, and each Adam step trains all M clients in a single batched
forward/backward over ``(M, B, ...)`` minibatches.

Numerical contract (also in README "Cohort-batched training"):

* Clients whose architecture uses only ``Linear`` / ``Flatten`` / elementwise
  activations and the softmax cross-entropy loss (e.g. ``linear_probe``)
  train **bit-identically** to the serial :func:`~repro.federated.client.
  train_locally` path: broadcast ``np.matmul`` dispatches one 2-D GEMM per
  leading slice with the same accumulation order as the serial call.
* ``Conv2d`` / ``LocallyConnected2d`` architectures batch their einsum
  contractions over the client axis, which may reassociate reductions —
  per-client results agree with serial within **1e-6 relative tolerance**.
* Per-client batch sampling is *exactly* the serial schedule: the same
  ``rng_from_seed(stable_seed(seed, client_id, round))`` generator drawing
  ``permutation(n)`` once per epoch.

Clients with different local dataset sizes have different batch schedules, so
the trainer groups the cohort by training-set size and runs one stacked pass
per group; per-client results do not depend on the grouping.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    CohortAdam,
    CohortAvgPool2d,
    CohortConv2d,
    CohortFlatten,
    CohortLinear,
    CohortLocallyConnected2d,
    CohortMaxPool2d,
    GradTape,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)
from ..nn import functional as F
from ..nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LocallyConnected2d,
    MaxPool2d,
)
from ..nn.serialization import StateSchema
from ..utils.rng import rng_from_seed, stable_seed
from .client import ClientPopulation
from .update import ModelUpdate

__all__ = ["CohortBatchingError", "CohortTrainer", "build_cohort_model"]


class CohortBatchingError(TypeError):
    """The model architecture cannot be trained in cohort-batched mode."""


#: template layer type -> builder(layer, params) for the batched twin.
#: ``params`` is the (weight, bias) pair of block views, or ``None`` for
#: parameterless layers.
_STATELESS = (ReLU, Tanh, Sigmoid)


def _cohort_layer(layer: Module, weight: Parameter | None, bias: Parameter | None) -> Module:
    if isinstance(layer, Linear):
        return CohortLinear(weight, bias)
    if isinstance(layer, Conv2d):
        return CohortConv2d(weight, bias, stride=layer.stride, padding=layer.padding)
    if isinstance(layer, LocallyConnected2d):
        return CohortLocallyConnected2d(weight, bias, stride=layer.stride)
    if isinstance(layer, MaxPool2d):
        return CohortMaxPool2d(layer.kernel_size)
    if isinstance(layer, AvgPool2d):
        return CohortAvgPool2d(layer.kernel_size)
    if isinstance(layer, Flatten):
        return CohortFlatten()
    if isinstance(layer, _STATELESS):
        return type(layer)()
    if isinstance(layer, Dropout):
        raise CohortBatchingError(
            "Dropout draws from per-replica RNG state and is not supported in "
            "cohort-batched mode; train with cohort_batching=False"
        )
    raise CohortBatchingError(
        f"layer {type(layer).__name__} has no cohort-batched twin; "
        "train with cohort_batching=False"
    )


def validate_cohort_template(template: Module) -> None:
    """Raise :class:`CohortBatchingError` if ``template`` cannot be batched."""
    if not isinstance(template, Sequential):
        raise CohortBatchingError(
            f"cohort batching requires a Sequential model, got {type(template).__name__}"
        )
    for layer in template:
        _cohort_layer(layer, None, None)


def build_cohort_model(template: Sequential, block: np.ndarray, schema: StateSchema) -> Module:
    """The batched twin of ``template`` over an ``(M, D)`` flat weight block.

    Every parameter of the returned model is a zero-copy ``(M, *shape)`` view
    into ``block`` — training writes straight through, so after the local
    loop row ``m`` of ``block`` *is* client ``m``'s refined flat state.
    """
    if not isinstance(template, Sequential):
        raise CohortBatchingError(
            f"cohort batching requires a Sequential model, got {type(template).__name__}"
        )
    m = block.shape[0]

    def view_param(name: str) -> Parameter:
        offset, size, shape = schema._index[name]
        view = block[:, offset : offset + size].reshape((m,) + tuple(shape))
        if not np.shares_memory(view, block):  # pragma: no cover - layout guard
            raise CohortBatchingError(f"parameter {name!r} view does not alias the block")
        return Parameter(view)

    layers: list[Module] = []
    for index, layer in enumerate(template):
        weight = bias = None
        if getattr(layer, "weight", None) is not None:
            weight = view_param(f"layer{index}.weight")
        if getattr(layer, "bias", None) is not None:
            bias = view_param(f"layer{index}.bias")
        layers.append(_cohort_layer(layer, weight, bias))
    return Sequential(*layers)


class CohortTrainer:
    """Trains a round's cohort as stacked ``(M, ...)`` batched passes.

    Drop-in companion to :func:`~repro.federated.client.train_rows_into`:
    :meth:`train_rows` has the same slot/row contract (refined flat states
    land in ``rows[slot]``, bookkeeping returned in input order), so both the
    serial simulation path and the sharded plane's :class:`ShardWorker` can
    route through it unchanged.
    """

    def __init__(self, population: ClientPopulation, schema: StateSchema) -> None:
        self.population = population
        self.schema = schema
        self._model_fn = population.model_fn
        self._config = population.local_config
        self._seed = population.seed
        #: architecture template (weights irrelevant — overwritten by the
        #: broadcast block); built once, validated once.
        self.template = self._model_fn(rng_from_seed(self._seed))
        validate_cohort_template(self.template)

    # ------------------------------------------------------------------
    # Core batched loop
    # ------------------------------------------------------------------
    def _train_block(
        self,
        block: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        rngs: list[np.random.Generator],
    ) -> np.ndarray:
        """Local-SGD the ``(M, D)`` block in place; return per-client losses.

        ``features``/``labels`` are ``(M, n, ...)`` stacks; ``rngs`` the
        per-client generators (same construction as the serial path).
        """
        m, n = labels.shape
        config = self._config
        model = build_cohort_model(self.template, block, self.schema)
        optimizer = CohortAdam(model.parameters(), lr=config.learning_rate)
        batch = config.batch_size
        row_sel = np.arange(m)[:, None]
        seed_grad = np.ones(m, dtype=np.float32)
        last_losses = np.full(m, np.nan, dtype=np.float32)
        tape = GradTape()
        for _ in range(config.local_epochs):
            # One permutation per client per epoch — the DataLoader schedule.
            orders = np.stack([rng.permutation(n) for rng in rngs])
            for start in range(0, n, batch):
                idx = orders[:, start : start + batch]
                xb = features[row_sel, idx]
                yb = labels[row_sel, idx]
                with tape:
                    logits = model(Tensor(xb))
                    loss = F.cohort_cross_entropy(logits, yb)
                    optimizer.zero_grad()
                    tape.backward(loss, seed_grad)
                    optimizer.step()
                tape.clear()
                last_losses = loss.data
        return last_losses

    # ------------------------------------------------------------------
    # Row-plane entry points
    # ------------------------------------------------------------------
    def train_rows(
        self,
        slot_client_pairs,
        broadcast_state: dict,
        round_index: int,
        rows: np.ndarray,
    ) -> list[tuple[int, int, float]]:
        """Train a cohort slice, landing refined states in ``rows[slot]``.

        Same contract as :func:`~repro.federated.client.train_rows_into`:
        returns ``(client_id, num_samples, final_loss)`` in input order.
        """
        pairs = list(slot_client_pairs)
        datasets = [self.population.get(client_id).data.train for _, client_id in pairs]
        out: list[tuple[int, int, float] | None] = [None] * len(pairs)

        # Stack clients with equal training-set size (identical batch
        # schedules); grouping is by first appearance and does not affect
        # per-client results.
        groups: dict[int, list[int]] = {}
        for position, dataset in enumerate(datasets):
            groups.setdefault(len(dataset), []).append(position)

        broadcast_row = self.schema.pack(broadcast_state)
        seed = self._seed
        for n, positions in groups.items():
            if n == 0:
                raise CohortBatchingError("cannot train a client with an empty dataset")
            m = len(positions)
            block = np.repeat(broadcast_row[None, :], m, axis=0)
            features = np.stack([datasets[p].features for p in positions])
            labels = np.stack([datasets[p].labels for p in positions])
            rngs = [
                rng_from_seed(stable_seed(seed, pairs[p][1], round_index)) for p in positions
            ]
            losses = self._train_block(block, features, labels, rngs)
            for j, p in enumerate(positions):
                slot, client_id = pairs[p]
                rows[slot] = block[j]
                out[p] = (client_id, n, float(losses[j]))
        return out  # type: ignore[return-value]

    def train_updates(
        self, client_ids, broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Train a cohort and return flat-backed updates in cohort order.

        The non-sharded simulation entry point: each update's ``state`` holds
        zero-copy views into its own row of one fresh ``(M, D)`` plane.
        """
        cohort = [int(c) for c in client_ids]
        rows = np.empty((len(cohort), self.schema.total_size), dtype=np.float32)
        metas = self.train_rows(
            list(enumerate(cohort)), broadcast_state, round_index, rows
        )
        updates = []
        for slot, (client_id, num_samples, final_loss) in enumerate(metas):
            row = rows[slot]
            updates.append(
                ModelUpdate(
                    sender_id=client_id,
                    round_index=round_index,
                    state=self.schema.views(row),
                    num_samples=num_samples,
                    metadata={"final_loss": final_loss},
                    flat_vector=row,
                )
            )
        return updates
