"""Sharded hierarchical aggregation over a multiprocess shared-memory plane.

The flat parameter plane (PR 2) made a round one contiguous ``(N, D)``
float32 matrix.  This module splits that matrix *hierarchically*, mirroring
the paper's mix-cascade topology: a :class:`ShardPlan` deterministically
partitions the selected cohort into contiguous row-slices, one per **leaf
aggregator**; a :class:`ShardWorker` process pool trains each slice and
reduces its shard partials out-of-GIL, writing rows in place over
``multiprocessing.shared_memory``; and the **root** assembles the plane,
cross-checks every leaf's partial reduction, and merges.

Merge-order determinism contract
--------------------------------
Float addition is not associative, so naively adding per-shard partial sums
in shard order would *not* reproduce the serial reduction bit for bit.  The
contract that keeps every aggregate byte-identical to the ``shards=0``
reference is therefore fixed and documented here:

* **Leaf reduction** — each leaf accumulates its rows *sequentially in slot
  order* into a float64 partial.  These partials are **integrity witnesses**:
  the root checks that their shard-ordered sum matches the plane's canonical
  column sum (a corrupted or torn shard write fails loudly with
  :class:`ShardIntegrityError`), but they are never the value source.
* **Root merge** — the root reduces the *assembled* plane with the exact
  slot-order walk of :func:`~repro.federated.flat.flat_mean` (including its
  size-1-span re-reduction).  Because every shard plan partitions the slots
  into contiguous ascending slices, the canonical walk is independent of the
  plan — aggregates are bit-identical for every ``num_shards`` by
  construction, which the property tests regression-lock.
* **Order statistics** (median / trimmed mean) — each leaf pre-sorts its row
  block per column; the root merges the pre-sorted runs.  Sorting is
  value-exact (no arithmetic), so the merged order statistics equal the
  global ones byte for byte.
* **Krum / multi-Krum** — distances are global, so selection runs *at the
  root* over the pairwise distance matrix assembled from per-shard partial
  Gram tiles: for spans ``X`` of shards ``s, t``, the tile
  ``d²[s,t] = |X_s|² + |X_t|² − 2·X_s X_tᵀ`` is accumulated per parameter
  span in float64 via ``np.einsum`` (whose row-blocked products are
  bitwise-reproducible, unlike BLAS GEMM tiling) — the assembled matrix is
  bit-identical to the single-tile Gram, property-tested.

Trust boundary: the shard chains of :class:`ShardedTranscript` attest the
*data plane* — which leaf trained which clients and the exact bytes each row
carried before any defense ran — while the server's
:class:`~repro.federated.integrity.RoundTranscript` continues to attest the
post-defense merge.  Krum's selection requires the full distance matrix, so
it executes inside the root's trust domain; the leaves only ever see their
own rows plus the Gram tiles they export.

Fault model: a leaf aggregator is just another crashable entity.
``FaultConfig.shard_crash_rate`` drives deterministic crash draws per
``(shard, round, attempt)``; recovery retries with exponential backoff and,
once the attempt budget is exhausted, degrades the quorum by re-assigning
the orphaned cohort slice to the root (executor ``"failover-root"``).  Every
instance resolves through the same :class:`~repro.federated.faults.FaultLedger`
invariant, and because the re-assigned slice still computes the identical
pure-function training rows, results stay bit-identical under any crash
schedule.
"""

from __future__ import annotations

import hashlib
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from ..nn.serialization import StateSchema, _intern_schema, schema_of
from ..utils.rng import stable_seed  # noqa: F401  (re-exported draw key space)
from .aggregation import _check_krum_cohort, _krum_scores, _multi_krum_selection
from .client import ClientPopulation, train_rows_into
from .cohort import CohortTrainer
from .flat import flat_mean, row_norms
from .integrity import TranscriptError, _entry_hash, update_digest
from .update import ModelUpdate

__all__ = [
    "SHARD_BACKENDS",
    "ShardingError",
    "ShardPlanError",
    "ShardIntegrityError",
    "ShardPlan",
    "ShardWorker",
    "ShardedRoundEngine",
    "ShardChainEntry",
    "ShardRootEntry",
    "ShardedTranscript",
    "shard_partial_sum",
    "sharded_flat_mean",
    "sharded_sorted",
    "sharded_median",
    "sharded_trimmed_mean",
    "sharded_row_norms",
    "einsum_gram_sq_distances",
    "sharded_gram_sq_distances",
    "sharded_krum_select",
    "sharded_multi_krum_select",
]

#: execution backends for the sharded plane — ``inline`` runs every leaf in
#: the parent process (the deterministic reference for the sharded algebra,
#: no IPC), ``process`` runs leaves in a spawn pool over shared memory
SHARD_BACKENDS = ("inline", "process")


class ShardingError(ValueError):
    """Base error of the sharded aggregation plane."""


class ShardPlanError(ShardingError):
    """A shard plan cannot be built (e.g. more shards than cohort members)."""


class ShardIntegrityError(ShardingError):
    """A leaf's partial reduction disagrees with the root's canonical sum."""


# ----------------------------------------------------------------------
# Shard plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Deterministic contiguous partition of a cohort into leaf shards.

    Slot ``i`` of the round's ``(N, D)`` matrix belongs to exactly one shard;
    shard ``s`` owns the contiguous slice ``bounds[s] = (start, end)``.  The
    first ``N mod num_shards`` shards carry one extra row, so the plan is a
    pure function of ``(cohort_size, num_shards)`` — identical on every
    replay, which the transcript binds and the checkpoint round-trips.
    """

    cohort_size: int
    bounds: tuple[tuple[int, int], ...]

    @classmethod
    def build(cls, cohort_size: int, num_shards: int) -> "ShardPlan":
        if cohort_size < 1:
            raise ShardPlanError(f"cannot plan over an empty cohort (size {cohort_size})")
        if num_shards < 1:
            raise ShardPlanError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > cohort_size:
            raise ShardPlanError(
                f"num_shards={num_shards} exceeds the cohort size {cohort_size} — "
                f"a leaf aggregator with no rows cannot reduce anything; lower "
                f"num_shards or select more clients per round"
            )
        base, extra = divmod(cohort_size, num_shards)
        bounds: list[tuple[int, int]] = []
        start = 0
        for shard in range(num_shards):
            size = base + (1 if shard < extra else 0)
            bounds.append((start, start + size))
            start += size
        return cls(cohort_size=cohort_size, bounds=tuple(bounds))

    @property
    def num_shards(self) -> int:
        return len(self.bounds)

    def slots(self, shard: int) -> range:
        start, end = self.bounds[shard]
        return range(start, end)

    def shard_of(self, slot: int) -> int:
        """The shard owning a global row slot."""
        if not 0 <= slot < self.cohort_size:
            raise IndexError(f"slot {slot} outside cohort of {self.cohort_size}")
        for shard, (start, end) in enumerate(self.bounds):
            if slot < end:
                return shard
        raise IndexError(f"slot {slot} not covered by any shard")  # pragma: no cover


# ----------------------------------------------------------------------
# Shard algebra (each byte-equal to the serial flat-plane path)
# ----------------------------------------------------------------------
def shard_partial_sum(rows: np.ndarray) -> np.ndarray:
    """One leaf's partial reduction: sequential slot-order float64 row sum.

    This is the integrity witness of the merge-order contract — never the
    aggregate's value source (see the module docstring).
    """
    partial = np.zeros(rows.shape[1] if rows.ndim == 2 else rows.shape[0], dtype=np.float64)
    for row in rows:
        partial += row
    return partial


def _check_partials(
    matrix: np.ndarray, plan: ShardPlan, partials: list[np.ndarray]
) -> None:
    """Cross-check leaf witnesses against the plane's canonical column sum."""
    if len(partials) != plan.num_shards:
        raise ShardIntegrityError(
            f"{len(partials)} shard partials for {plan.num_shards} shards"
        )
    witness = np.zeros(matrix.shape[1], dtype=np.float64)
    for partial in partials:  # shard order — the documented witness order
        witness += partial
    canonical = matrix.sum(axis=0, dtype=np.float64)
    if not np.allclose(witness, canonical, rtol=1e-9, atol=1e-8):
        worst = float(np.max(np.abs(witness - canonical)))
        raise ShardIntegrityError(
            f"shard partial sums disagree with the canonical column sum "
            f"(max abs deviation {worst:.3e}) — a leaf wrote a torn or "
            f"corrupted row slice"
        )


def sharded_flat_mean(
    matrix: np.ndarray,
    schema: StateSchema,
    plan: ShardPlan,
    weights: list[float] | None = None,
    check: bool = True,
) -> np.ndarray:
    """Shard-composed mean: leaf witnesses + the root's canonical slot walk.

    Byte-equal to ``flat_mean(list(matrix), schema, weights)`` for every
    plan by the merge-order contract.  With ``check`` (unweighted only), the
    per-shard float64 partial sums are verified against the canonical column
    sum before the merge is trusted.
    """
    if matrix.shape[0] != plan.cohort_size:
        raise ShardingError(
            f"matrix has {matrix.shape[0]} rows but the plan covers {plan.cohort_size}"
        )
    if check and weights is None:
        partials = [shard_partial_sum(matrix[a:b]) for a, b in plan.bounds]
        _check_partials(matrix, plan, partials)
    return flat_mean(list(matrix), schema, weights)


def sharded_sorted(matrix: np.ndarray, plan: ShardPlan) -> np.ndarray:
    """Column-wise sort composed from per-shard pre-sorted blocks.

    Each leaf sorts its own row block (the parallelizable bulk of the
    comparisons); the root merges the pre-sorted runs.  Sorting is
    value-exact, so the result is byte-equal to ``np.sort(matrix, axis=0)``.
    """
    blocks = [np.sort(matrix[a:b], axis=0) for a, b in plan.bounds]
    if len(blocks) == 1:
        return blocks[0]
    return np.sort(np.concatenate(blocks, axis=0), axis=0)


def sharded_median(matrix: np.ndarray, plan: ShardPlan) -> np.ndarray:
    """Coordinate-wise median over pre-sorted shard blocks (byte-equal)."""
    return np.median(sharded_sorted(matrix, plan), axis=0).astype(np.float32)


def sharded_trimmed_mean(
    matrix: np.ndarray, schema: StateSchema, plan: ShardPlan, trim: int
) -> np.ndarray:
    """Trimmed mean over pre-sorted shard blocks, canonical-order merged."""
    count = matrix.shape[0]
    if trim < 0:
        raise ValueError(f"trim must be >= 0, got {trim}")
    if 2 * trim >= count:
        raise ValueError(f"trim={trim} removes all of {count} updates")
    ordered = sharded_sorted(matrix, plan)
    kept = ordered[trim : count - trim]
    return flat_mean(list(kept), schema).astype(np.float32)


def sharded_row_norms(
    matrix: np.ndarray, schema: StateSchema, plan: ShardPlan
) -> np.ndarray:
    """Per-row norms computed leaf-by-leaf (row-independent, byte-equal)."""
    return np.concatenate([row_norms(matrix[a:b], schema) for a, b in plan.bounds])


def einsum_gram_sq_distances(matrix: np.ndarray, schema: StateSchema) -> np.ndarray:
    """Pairwise squared distances via per-span float64 ``einsum`` Grams.

    The single-tile reference the sharded tile assembly is property-tested
    against.  ``einsum`` (not BLAS GEMM) because its row-blocked products are
    bitwise-reproducible under partitioning, which GEMM's cache-tiled
    accumulation order is not.
    """
    count = matrix.shape[0]
    d2 = np.zeros((count, count), dtype=np.float64)
    for offset, size in zip(schema.offsets, schema.sizes):
        block = matrix[:, offset : offset + size].astype(np.float64)
        sq = np.einsum("ij,ij->i", block, block)
        d2 += sq[:, None] + sq[None, :] - 2.0 * np.einsum("ik,jk->ij", block, block)
    np.fill_diagonal(d2, 0.0)
    return d2


def sharded_gram_sq_distances(
    matrix: np.ndarray, schema: StateSchema, plan: ShardPlan
) -> np.ndarray:
    """Pairwise squared distances assembled from per-shard Gram tiles.

    Each leaf pair ``(s, t)`` contributes the tile
    ``|X_s|² + |X_t|² − 2·X_s X_tᵀ`` per parameter span, accumulated in
    schema order — bit-identical to :func:`einsum_gram_sq_distances` for
    every plan, so root-side Krum sees exactly the global distance matrix.
    """
    count = matrix.shape[0]
    if count != plan.cohort_size:
        raise ShardingError(
            f"matrix has {count} rows but the plan covers {plan.cohort_size}"
        )
    d2 = np.zeros((count, count), dtype=np.float64)
    for offset, size in zip(schema.offsets, schema.sizes):
        blocks = [
            matrix[a:b, offset : offset + size].astype(np.float64) for a, b in plan.bounds
        ]
        sqs = [np.einsum("ij,ij->i", block, block) for block in blocks]
        for s, (a, b) in enumerate(plan.bounds):
            for t, (c, d) in enumerate(plan.bounds):
                tile = np.einsum("ik,jk->ij", blocks[s], blocks[t])
                d2[a:b, c:d] += sqs[s][:, None] + sqs[t][None, :] - 2.0 * tile
    np.fill_diagonal(d2, 0.0)
    return d2


def sharded_krum_select(
    matrix: np.ndarray, schema: StateSchema, plan: ShardPlan, num_attackers: int
) -> int:
    """Root-side Krum selection over shard-assembled Gram tiles."""
    _check_krum_cohort(matrix.shape[0], num_attackers)
    scores = _krum_scores(sharded_gram_sq_distances(matrix, schema, plan), num_attackers)
    return int(np.argmin(scores))


def sharded_multi_krum_select(
    matrix: np.ndarray,
    schema: StateSchema,
    plan: ShardPlan,
    num_attackers: int,
    select: int,
) -> list[int]:
    """Root-side multi-Krum selection over shard-assembled Gram tiles."""
    _check_krum_cohort(matrix.shape[0], num_attackers)
    scores = _krum_scores(sharded_gram_sq_distances(matrix, schema, plan), num_attackers)
    return _multi_krum_selection(scores, select)


# ----------------------------------------------------------------------
# Hierarchical transcript: one chain per shard + a root chain over heads
# ----------------------------------------------------------------------
#: root-chain anchor of every sharded transcript
_SHARD_GENESIS = hashlib.sha256(b"shard-transcript-v1").hexdigest()


def _chain_genesis(shard_index: int) -> str:
    """Per-shard chain anchor (each leaf chain starts from its own head)."""
    return hashlib.sha256(f"shard-chain-v1:{int(shard_index)}".encode()).hexdigest()


def _row_digest(row: np.ndarray) -> str:
    """SHA-256 of one row's float32 bytes (same bytes ``update_digest`` hashes)."""
    return hashlib.sha256(
        np.ascontiguousarray(row, dtype=np.float32).tobytes()
    ).hexdigest()


@dataclass
class ShardChainEntry:
    """One leaf aggregator's round, hash-chained along its shard."""

    round_index: int
    shard_index: int
    #: who actually reduced the slice — ``"worker"`` (the leaf itself, inline
    #: or in its process) or ``"failover-root"`` (quorum degradation after
    #: the leaf exhausted its crash-retry budget)
    executor: str
    #: clients whose rows this shard holds, in slot order
    client_ids: tuple[int, ...]
    #: SHA-256 of each row's bytes as assembled at the root, in slot order
    row_digests: tuple[str, ...]
    #: SHA-256 of the leaf's float64 partial-sum witness
    partial_digest: str
    prev_hash: str
    entry_hash: str

    def payload(self) -> dict:
        return {
            "round_index": self.round_index,
            "shard_index": self.shard_index,
            "executor": self.executor,
            "client_ids": [int(c) for c in self.client_ids],
            "row_digests": list(self.row_digests),
            "partial_digest": self.partial_digest,
        }


@dataclass
class ShardRootEntry:
    """One round of the root chain, binding every shard head of that round."""

    round_index: int
    bounds: tuple[tuple[int, int], ...]
    shard_heads: tuple[str, ...]
    prev_hash: str
    entry_hash: str

    def payload(self) -> dict:
        return {
            "round_index": self.round_index,
            "bounds": [[int(a), int(b)] for a, b in self.bounds],
            "shard_heads": list(self.shard_heads),
        }


@dataclass
class _ShardRoundRecord:
    """Internal: what one shard did this round, before it enters the chain."""

    shard_index: int
    executor: str
    client_ids: tuple[int, ...]
    row_digests: tuple[str, ...]
    partial_digest: str


@dataclass
class ShardedTranscript:
    """Hierarchical hash-chained transcript of the sharded data plane.

    One append-only chain per leaf shard (each entry binds the shard's
    clients, its rows' bytes, and its partial-sum witness to the previous
    entry) plus a root chain whose entries bind every shard's head for that
    round together with the plan bounds.  :meth:`verify` re-walks the whole
    tree; :meth:`audit_round` additionally replays one round's trained
    updates against the recorded row digests.
    """

    chains: dict[int, list[ShardChainEntry]] = field(default_factory=dict)
    chain_heads: dict[int, str] = field(default_factory=dict)
    root: list[ShardRootEntry] = field(default_factory=list)
    root_head: str = _SHARD_GENESIS

    def __len__(self) -> int:
        return len(self.root)

    def append_round(
        self, round_index: int, plan: ShardPlan, records: list[_ShardRoundRecord]
    ) -> ShardRootEntry:
        heads: list[str] = []
        for record in records:  # shard order
            prev = self.chain_heads.get(
                record.shard_index, _chain_genesis(record.shard_index)
            )
            entry = ShardChainEntry(
                round_index=int(round_index),
                shard_index=int(record.shard_index),
                executor=str(record.executor),
                client_ids=tuple(int(c) for c in record.client_ids),
                row_digests=tuple(record.row_digests),
                partial_digest=str(record.partial_digest),
                prev_hash=prev,
                entry_hash="",
            )
            entry.entry_hash = _entry_hash(prev, entry.payload())
            self.chains.setdefault(record.shard_index, []).append(entry)
            self.chain_heads[record.shard_index] = entry.entry_hash
            heads.append(entry.entry_hash)
        root_entry = ShardRootEntry(
            round_index=int(round_index),
            bounds=plan.bounds,
            shard_heads=tuple(heads),
            prev_hash=self.root_head,
            entry_hash="",
        )
        root_entry.entry_hash = _entry_hash(self.root_head, root_entry.payload())
        self.root.append(root_entry)
        self.root_head = root_entry.entry_hash
        return root_entry

    def verify(self) -> None:
        """Walk every shard chain and the root chain; raise on any breach."""
        for shard_index, chain in sorted(self.chains.items()):
            running = _chain_genesis(shard_index)
            for position, entry in enumerate(chain):
                if entry.prev_hash != running:
                    raise TranscriptError(
                        f"shard {shard_index} chain broken at entry {position} "
                        f"(round {entry.round_index}): prev_hash mismatch"
                    )
                expected = _entry_hash(running, entry.payload())
                if entry.entry_hash != expected:
                    raise TranscriptError(
                        f"shard {shard_index} entry {position} (round "
                        f"{entry.round_index}) was tampered with"
                    )
                running = entry.entry_hash
            if self.chain_heads.get(shard_index) != running:
                raise TranscriptError(
                    f"shard {shard_index} head does not match its last entry"
                )
        running = _SHARD_GENESIS
        for position, entry in enumerate(self.root):
            if entry.prev_hash != running:
                raise TranscriptError(
                    f"root chain broken at entry {position} (round "
                    f"{entry.round_index}): prev_hash mismatch"
                )
            expected = _entry_hash(running, entry.payload())
            if entry.entry_hash != expected:
                raise TranscriptError(
                    f"root entry {position} (round {entry.round_index}) was "
                    f"tampered with"
                )
            for shard_index in range(len(entry.shard_heads)):
                chain = self.chains.get(shard_index, [])
                if position >= len(chain) or (
                    chain[position].entry_hash != entry.shard_heads[shard_index]
                ):
                    raise TranscriptError(
                        f"root entry {position} (round {entry.round_index}) does "
                        f"not bind shard {shard_index}'s chain entry"
                    )
            running = entry.entry_hash
        if self.root_head != running:
            raise TranscriptError("root head does not match the last root entry")

    def audit_round(self, position: int, trained_updates: list) -> None:
        """Replay one round's trained updates against the shard chains.

        ``trained_updates`` must be the round's *pre-defense* updates in slot
        order (the data plane's view — the server transcript audits the
        post-defense merge).  Recomputes each row digest and the slot → shard
        assignment; raises :class:`TranscriptError` on any mismatch.
        """
        self.verify()
        entry = self.root[position]
        if len(trained_updates) != entry.bounds[-1][1]:
            raise TranscriptError(
                f"round {entry.round_index} audit failed: {len(trained_updates)} "
                f"updates for a plan over {entry.bounds[-1][1]} slots"
            )
        for shard_index, (start, end) in enumerate(entry.bounds):
            chain_entry = self.chains[shard_index][position]
            observed_ids = tuple(
                int(u.sender_id) for u in trained_updates[start:end]
            )
            observed_digests = tuple(
                update_digest(u) for u in trained_updates[start:end]
            )
            if observed_ids != chain_entry.client_ids:
                raise TranscriptError(
                    f"round {entry.round_index} audit failed: shard {shard_index} "
                    f"client ids do not match the chained assignment"
                )
            if observed_digests != chain_entry.row_digests:
                raise TranscriptError(
                    f"round {entry.round_index} audit failed: shard {shard_index} "
                    f"row bytes do not match the chained digests"
                )


# ----------------------------------------------------------------------
# Worker side (runs in the spawn pool; also reused verbatim inline)
# ----------------------------------------------------------------------
class ShardWorker:
    """One leaf aggregator's runtime: a population replica plus plane views.

    In the ``process`` backend each pool worker holds one instance (rebuilt
    from pickled constructor inputs at spawn); the ``inline`` backend drives
    the same :meth:`run` against parent-process arrays, so both backends
    execute identical float operations.
    """

    def __init__(
        self,
        population: ClientPopulation,
        schema: StateSchema,
        rows: np.ndarray,
        broadcast: np.ndarray | None,
        release_after_round: bool = False,
        cohort_batching: bool = False,
    ) -> None:
        self.population = population
        self.schema = schema
        #: the shared ``(capacity, D)`` row plane this worker writes in place
        self.rows = rows
        #: the shared broadcast vector (``None`` inline: state passed directly)
        self.broadcast = broadcast
        self._release = release_after_round
        #: cohort-batched trainer: the shard's slice trains as one stacked
        #: pass instead of client-by-client (same row/meta contract)
        self._trainer = CohortTrainer(population, schema) if cohort_batching else None

    def run(
        self,
        shard_index: int,
        slot_client_pairs: list[tuple[int, int]],
        round_index: int,
        broadcast_state: dict | None = None,
    ):
        """Train one shard's slice and reduce its partial witness.

        Returns ``(shard_index, metas, partial, train_seconds, reduce_seconds)``
        where ``metas`` is ``[(client_id, num_samples, final_loss), ...]`` in
        slot order and ``partial`` is the float64 slot-order witness sum.
        """
        if broadcast_state is None:
            broadcast_state = self.schema.views(self.broadcast)
        start = time.perf_counter()
        if self._trainer is not None:
            metas = self._trainer.train_rows(
                slot_client_pairs, broadcast_state, round_index, self.rows
            )
        else:
            metas = train_rows_into(
                self.population,
                slot_client_pairs,
                broadcast_state,
                round_index,
                self.schema,
                self.rows,
            )
        trained = time.perf_counter()
        slots = [slot for slot, _ in slot_client_pairs]
        partial = shard_partial_sum(self.rows[slots[0] : slots[-1] + 1])
        reduced = time.perf_counter()
        if self._release:
            self.population.release([client_id for _, client_id in slot_client_pairs])
        return shard_index, metas, partial, trained - start, reduced - trained


#: per-process worker singleton of the spawn pool
_WORKER: ShardWorker | None = None


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership of its name.

    The parent owns (and unlinks) every segment.  Python >= 3.13 exposes
    ``track=False``; on older versions the attach re-registers the name with
    the *shared* resource tracker — harmless, because the tracker's cache is
    a set (the parent registered the same name at create) and the parent's
    single ``unlink`` unregisters it exactly once.  Workers must NOT
    unregister themselves: N workers racing to remove one set entry leaves
    N-1 KeyErrors in the tracker and strips the parent's crash-safety net.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _worker_init(
    dataset,
    model_fn,
    local_config,
    seed: int,
    names: tuple[str, ...],
    shapes: tuple[tuple[int, ...], ...],
    rows_name: str,
    capacity: int,
    broadcast_name: str,
    cohort_batching: bool = False,
) -> None:
    """Spawn-pool initializer: rebuild the leaf runtime from picklable parts."""
    global _WORKER
    schema = _intern_schema(tuple(names), tuple(tuple(s) for s in shapes))
    rows_segment = _attach_segment(rows_name)
    broadcast_segment = _attach_segment(broadcast_name)
    rows = np.ndarray((capacity, schema.total_size), dtype=np.float32, buffer=rows_segment.buf)
    broadcast = np.ndarray((schema.total_size,), dtype=np.float32, buffer=broadcast_segment.buf)
    population = ClientPopulation.for_dataset(dataset, model_fn, local_config, seed=seed)
    worker = ShardWorker(
        population, schema, rows, broadcast,
        release_after_round=True, cohort_batching=cohort_batching,
    )
    # keep the segments alive for the worker's lifetime
    worker._segments = [rows_segment, broadcast_segment]
    _WORKER = worker


def _worker_run_shard(shard_index, slot_client_pairs, round_index):
    """Pool task: run one shard on this process's :class:`ShardWorker`."""
    return _WORKER.run(shard_index, slot_client_pairs, round_index)


# ----------------------------------------------------------------------
# Root-side engine
# ----------------------------------------------------------------------
class _ShardResources:
    """The engine's closeable handles (pool + shared segments)."""

    __slots__ = ("pool", "segments", "capacity")

    def __init__(self) -> None:
        self.pool = None
        self.segments: list[shared_memory.SharedMemory] = []
        self.capacity = 0


def _release_resources(resources: _ShardResources) -> None:
    """Shut the pool down and unlink every segment (idempotent)."""
    pool, resources.pool = resources.pool, None
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    segments, resources.segments = resources.segments, []
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    resources.capacity = 0


class ShardedRoundEngine:
    """The root of the sharded data plane: plans, dispatches, and merges.

    Owns the per-round :class:`ShardPlan`, the (optional) spawn pool plus its
    shared-memory plane, the crash/retry/failover resolution through the
    fault ledger, and the hierarchical :class:`ShardedTranscript`.  Training
    results are bit-identical to the serial path for every backend, shard
    count, and crash schedule — see the module docstring's contract.

    Shared segments are unlinked on :meth:`close`, which runs in a
    ``finally`` whenever a round raises and again at garbage collection
    (``weakref.finalize``), so no ``/dev/shm`` segment outlives the engine.
    """

    def __init__(
        self,
        population: ClientPopulation,
        schema: StateSchema,
        num_shards: int,
        backend: str = "inline",
        seed: int = 0,
        fault_injector=None,
        fault_ledger=None,
        dataset=None,
        model_fn=None,
        local_config=None,
        capacity: int | None = None,
        cohort_batching: bool = False,
    ) -> None:
        if num_shards < 1:
            raise ShardPlanError(f"num_shards must be >= 1, got {num_shards}")
        if backend not in SHARD_BACKENDS:
            raise ShardingError(
                f"unknown shard backend {backend!r}; choose from {SHARD_BACKENDS}"
            )
        if backend == "process" and (dataset is None or model_fn is None or local_config is None):
            raise ShardingError(
                "the process backend needs (dataset, model_fn, local_config) to "
                "rebuild client populations inside its spawn workers"
            )
        self.population = population
        self.schema = schema
        self.num_shards = int(num_shards)
        self.backend = backend
        self.seed = int(seed)
        self._fault_injector = fault_injector
        self._fault_ledger = fault_ledger
        self._dataset = dataset
        self._model_fn = model_fn
        self._local_config = local_config
        self._capacity_hint = int(capacity) if capacity else 0
        self.cohort_batching = bool(cohort_batching)
        #: hierarchical transcript of the data plane (one chain per shard)
        self.transcript = ShardedTranscript()
        #: the most recent round's plan (checkpoint round-trips it)
        self.last_plan: ShardPlan | None = None
        #: shards currently dispatched (empty between rounds; checkpoint
        #: round-trips it so a mid-round snapshot is honest about in-flight work)
        self.pending_shards: tuple[int, ...] = ()
        #: per-phase wall-clock of the last round, for the benchmarks
        self.last_timings: dict | None = None
        self._resources = _ShardResources()
        self._finalizer = weakref.finalize(self, _release_resources, self._resources)
        #: inline scratch plane, grown on demand
        self._inline_rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the shared plane (idempotent).

        The engine stays usable: the next round lazily respawns what it
        needs.
        """
        _release_resources(self._resources)

    def __enter__(self) -> "ShardedRoundEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_plane(self, rows_needed: int) -> tuple[np.ndarray, np.ndarray]:
        """The shared ``(capacity, D)`` row plane + broadcast vector, (re)built
        with the spawn pool whenever capacity must grow."""
        resources = self._resources
        if resources.pool is not None and resources.capacity >= rows_needed:
            rows_segment, broadcast_segment = resources.segments
            rows = np.ndarray(
                (resources.capacity, self.schema.total_size),
                dtype=np.float32,
                buffer=rows_segment.buf,
            )
            broadcast = np.ndarray(
                (self.schema.total_size,), dtype=np.float32, buffer=broadcast_segment.buf
            )
            return rows, broadcast
        self.close()
        capacity = max(rows_needed, self._capacity_hint)
        total = self.schema.total_size
        rows_segment = shared_memory.SharedMemory(
            create=True, size=max(1, capacity * total * 4)
        )
        resources.segments.append(rows_segment)
        broadcast_segment = shared_memory.SharedMemory(create=True, size=max(1, total * 4))
        resources.segments.append(broadcast_segment)
        resources.capacity = capacity
        resources.pool = ProcessPoolExecutor(
            max_workers=self.num_shards,
            mp_context=get_context("spawn"),  # explicit: deterministic across platforms
            initializer=_worker_init,
            initargs=(
                self._dataset,
                self._model_fn,
                self._local_config,
                self.seed,
                self.schema.names,
                self.schema.shapes,
                rows_segment.name,
                capacity,
                broadcast_segment.name,
                self.cohort_batching,
            ),
        )
        rows = np.ndarray((capacity, total), dtype=np.float32, buffer=rows_segment.buf)
        broadcast = np.ndarray((total,), dtype=np.float32, buffer=broadcast_segment.buf)
        return rows, broadcast

    # ------------------------------------------------------------------
    # Fault resolution
    # ------------------------------------------------------------------
    def _resolve_shard_executors(self, plan: ShardPlan, round_index: int) -> list[str]:
        """Draw each shard's crash schedule; resolve through the ledger.

        A crash on attempt ``a < max_attempts - 1`` retries with backoff
        (``"retried"``); exhausting the budget fails the leaf over to the
        root, which adopts the orphaned slice (``"failed-over"`` — quorum
        degradation).  Every entry carries a resolution, so the ledger
        invariant holds by construction; and because the failover executor
        computes the identical pure-function rows, results are bit-identical
        under any crash schedule.
        """
        injector, ledger = self._fault_injector, self._fault_ledger
        executors = ["worker"] * plan.num_shards
        if injector is None or injector.config.shard_crash_rate <= 0.0:
            return executors
        max_attempts = injector.config.max_attempts
        for shard in range(plan.num_shards):
            for attempt in range(max_attempts):
                if not injector.shard_crash(shard, round_index, attempt):
                    break
                delay = injector.backoff("shard-crash", shard, round_index, attempt)
                if attempt + 1 >= max_attempts:
                    ledger.record(
                        "shard-crash", shard, round_index, attempt,
                        "failed-over", delay_seconds=delay,
                    )
                    executors[shard] = "failover-root"
                else:
                    ledger.record(
                        "shard-crash", shard, round_index, attempt,
                        "retried", delay_seconds=delay,
                    )
        return executors

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def train_round(
        self, client_ids: list[int], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Train one round's cohort through the sharded plane.

        Returns flat-backed updates in cohort order, bit-identical to what
        the serial path would produce.  On any failure the shared plane is
        torn down (segments unlinked) before the exception propagates.
        """
        try:
            return self._train_round(client_ids, broadcast_state, round_index)
        except Exception:
            self.close()
            raise

    def _train_round(
        self, client_ids: list[int], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        wall_start = time.perf_counter()
        cohort = [int(c) for c in client_ids]
        plan = ShardPlan.build(len(cohort), self.num_shards)
        self.last_plan = plan
        executors = self._resolve_shard_executors(plan, round_index)
        use_pool = self.backend == "process" and any(e == "worker" for e in executors)

        if use_pool:
            shared_rows, shared_broadcast = self._ensure_plane(len(cohort))
            self.schema.write_into(shared_broadcast, broadcast_state)
        else:
            if self._inline_rows is None or self._inline_rows.shape[0] < len(cohort):
                self._inline_rows = np.empty(
                    (len(cohort), self.schema.total_size), dtype=np.float32
                )
            shared_rows = self._inline_rows

        pairs_of = {
            shard: [(slot, cohort[slot]) for slot in plan.slots(shard)]
            for shard in range(plan.num_shards)
        }
        results: dict[int, tuple] = {}
        self.pending_shards = tuple(range(plan.num_shards))
        try:
            if use_pool:
                pool = self._resources.pool
                futures = [
                    pool.submit(_worker_run_shard, shard, pairs_of[shard], round_index)
                    for shard in range(plan.num_shards)
                    if executors[shard] == "worker"
                ]
                for future in futures:
                    shard, metas, partial, train_s, reduce_s = future.result()
                    results[shard] = (metas, partial, train_s, reduce_s)
            inline_worker = None
            for shard in range(plan.num_shards):
                if shard in results:
                    continue
                # inline backend, or a failed-over slice the root adopts
                if inline_worker is None:
                    inline_worker = ShardWorker(
                        self.population, self.schema, shared_rows, None,
                        cohort_batching=self.cohort_batching,
                    )
                _, metas, partial, train_s, reduce_s = inline_worker.run(
                    shard, pairs_of[shard], round_index, broadcast_state=broadcast_state
                )
                results[shard] = (metas, partial, train_s, reduce_s)
        finally:
            self.pending_shards = ()

        merge_start = time.perf_counter()
        # Root assembly: one copy out of the shared plane (the segment is
        # reused next round), then the canonical cross-checked reduction.
        matrix = np.array(shared_rows[: len(cohort)], dtype=np.float32, copy=True)
        partials = [results[shard][1] for shard in range(plan.num_shards)]
        _check_partials(matrix, plan, partials)

        records = []
        for shard in range(plan.num_shards):
            start, end = plan.bounds[shard]
            records.append(
                _ShardRoundRecord(
                    shard_index=shard,
                    executor=executors[shard],
                    client_ids=tuple(cohort[start:end]),
                    row_digests=tuple(_row_digest(matrix[slot]) for slot in range(start, end)),
                    partial_digest=hashlib.sha256(
                        np.ascontiguousarray(partials[shard]).tobytes()
                    ).hexdigest(),
                )
            )
        self.transcript.append_round(round_index, plan, records)

        updates: list[ModelUpdate] = []
        for shard in range(plan.num_shards):
            for slot, (client_id, num_samples, final_loss) in zip(
                plan.slots(shard), results[shard][0]
            ):
                row = matrix[slot]
                updates.append(
                    ModelUpdate(
                        sender_id=client_id,
                        round_index=round_index,
                        state=self.schema.views(row),
                        num_samples=num_samples,
                        metadata={"final_loss": final_loss},
                        flat_vector=row,
                    )
                )
        merge_end = time.perf_counter()
        self.last_timings = {
            "per_shard_train_seconds": [
                results[shard][2] for shard in range(plan.num_shards)
            ],
            "per_shard_reduce_seconds": [
                results[shard][3] for shard in range(plan.num_shards)
            ],
            "merge_seconds": merge_end - merge_start,
            "wall_seconds": merge_end - wall_start,
        }
        return updates

    # ------------------------------------------------------------------
    # Checkpoint plumbing (the pool/plane is rebuilt lazily, never pickled)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """The engine's persistent state: plan, in-flight set, transcript."""
        return {
            "plan": self.last_plan,
            "pending_shards": self.pending_shards,
            "transcript": self.transcript,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self.last_plan = state.get("plan")
        self.pending_shards = tuple(state.get("pending_shards", ()))
        transcript = state.get("transcript")
        self.transcript = transcript if transcript is not None else ShardedTranscript()
