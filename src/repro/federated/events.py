"""Virtual-time discrete-event scheduler for the wall-clock round engine.

The scenario engine of :mod:`repro.federated.scenario` models *who* shows up
and *how slow* they are; this module models *when*.  A federation run is a
stream of timestamped events on one virtual clock:

* :class:`ClientUpdateArrival` — a dispatched client's training finishes and
  its update reaches the server at ``dispatch_time + latency``;
* :class:`RoundDeadline` — the server's timer for the current round fires;
* :class:`BufferFlush` — the round's flush condition (all expected arrivals,
  or the K-th arrival of a FedBuff-style buffer) has been met.

The server consumes arrivals **in time order** — not in client-index order —
and the three round-closure schemes become three *flush policies* over the
same event stream:

==================  =====================================================
``sync``            flush when every dispatched client has arrived
``sync`` + deadline flush at ``T`` if anyone is still outstanding
``buffered-async``  flush on the K-th buffered arrival (deadline optional)
==================  =====================================================

Determinism contract
--------------------
Event times are pure functions of ``(seed, client_id, round)`` (the scenario
models' contract), and ties are broken by ``(time, priority, seq)`` where
``seq`` is the deterministic insertion index.  Heap order therefore never
depends on wall-clock execution, thread scheduling, or ``parallelism`` — the
same seed always yields the same event trace.  At equal timestamps a
:class:`BufferFlush` sorts first (the round closes before same-instant
arrivals from other rounds leak in), an arrival sorts before a
:class:`RoundDeadline` (an update landing exactly at ``T`` is on time), and
equal-time arrivals pop in insertion order (client order) — which is what
keeps the default no-latency scenario bit-identical to the legacy barrier
loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = [
    "Event",
    "ClientUpdateArrival",
    "TransmissionFailure",
    "RoundDeadline",
    "BufferFlush",
    "EventScheduler",
    "FlushPolicy",
    "SyncFlushPolicy",
    "QuorumFlushPolicy",
    "BufferedFlushPolicy",
]


# Tie-break ranks at equal timestamps (see module docstring).
_PRIORITY_FLUSH = 0
_PRIORITY_ARRIVAL = 1
_PRIORITY_DEADLINE = 2


@dataclass(frozen=True)
class Event:
    """Base timestamped event; subclasses define their tie-break priority."""

    time: float
    priority: int = field(init=False, default=_PRIORITY_ARRIVAL, repr=False)


@dataclass(frozen=True)
class ClientUpdateArrival(Event):
    """A client's trained update reaches the server.

    ``time = dispatch_time + latency``; the :class:`~repro.federated.update.
    ModelUpdate` payload is attached by the round engine after training (the
    event's identity and ordering never depend on the payload).
    """

    client_id: int = -1
    origin_round: int = -1
    dispatch_time: float = 0.0
    latency: float = 0.0
    update: object = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_ARRIVAL)


@dataclass(frozen=True)
class TransmissionFailure(Event):
    """A transmission attempt failed in transit; the sender learns at ``time``.

    ``kind`` is ``"frame"`` (the receiver detected a corrupt frame at what
    would have been the arrival instant) or ``"timeout"`` (the per-hop ack
    timer expired before the frame landed).  The round engine answers with a
    backoff-delayed retry or, once the attempt budget is exhausted, discards
    the payload.  Arrival priority: a failure detected at the same instant as
    a round close never reopens the round.
    """

    client_id: int = -1
    origin_round: int = -1
    dispatch_time: float = 0.0
    #: transit latency of the failed attempt (the retry redraws its own)
    latency: float = 0.0
    #: 0-based index of the attempt that failed
    attempt: int = 0
    kind: str = "frame"
    update: object = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_ARRIVAL)


@dataclass(frozen=True)
class RoundDeadline(Event):
    """The server's round timer fires at ``round_start + deadline``."""

    round_index: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_DEADLINE)


@dataclass(frozen=True)
class BufferFlush(Event):
    """The round's flush condition was met at ``time`` (close immediately)."""

    round_index: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_FLUSH)


class EventScheduler:
    """Deterministic min-heap of events on one monotonic virtual clock.

    ``pop`` advances :attr:`now` to the popped event's timestamp; the clock
    never runs backwards (events scheduled in the past pop "immediately", at
    the current time).  Ties are broken by ``(priority, seq)`` — ``seq`` is
    the global insertion index, so equal-time, equal-priority events pop in
    the order they were scheduled.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return f"EventScheduler(now={self.now:.3f}, pending={len(self._heap)})"

    def schedule(self, event: Event) -> None:
        """Queue an event; insertion order is the final tie-breaker."""
        heapq.heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1

    def peek(self) -> Event | None:
        """The next event without popping it, or ``None`` when drained."""
        return self._heap[0][3] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event scheduler")
        time, _, _, event = heapq.heappop(self._heap)
        if time > self.now:
            self.now = time
        return event

    def advance(self, seconds: float) -> None:
        """Advance the clock by a recovery delay spent outside the heap
        (post-flush failover/retry work); the clock never runs backwards."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock backwards, got {seconds}")
        self.now += seconds

    def pending_arrivals(self) -> list[ClientUpdateArrival]:
        """Arrival events still queued (in-transit updates), in heap order."""
        return sorted(
            (entry[3] for entry in self._heap if isinstance(entry[3], ClientUpdateArrival)),
            key=lambda e: e.time,
        )

    def in_flight_payloads(self) -> list[Event]:
        """Every queued event that carries a payload still in transit —
        arrivals plus transmission failures awaiting their retry — in time
        order.  This is the backlog a fault-aware round must still expect."""
        return sorted(
            (
                entry[3]
                for entry in self._heap
                if isinstance(entry[3], (ClientUpdateArrival, TransmissionFailure))
            ),
            key=lambda e: e.time,
        )


# ----------------------------------------------------------------------
# Flush policies: when does the current round close?
# ----------------------------------------------------------------------
class FlushPolicy:
    """Decides, per buffered arrival, whether the round's flush fires now.

    A policy sees only counts — how many updates are buffered and how many
    dispatched clients could still arrive — so the decision is independent of
    payload contents and execution order.
    """

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class SyncFlushPolicy(FlushPolicy):
    """Flush when every dispatched client has arrived (``outstanding == 0``).

    ``expected_absent`` counts dispatched clients that will *never* arrive
    this round (sync-mode stragglers beyond the deadline): while any exist
    the all-arrived condition is unreachable and the round can only close at
    its :class:`RoundDeadline`.
    """

    expected_absent: int = 0

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        return outstanding <= 0 and self.expected_absent == 0


@dataclass(frozen=True)
class QuorumFlushPolicy(FlushPolicy):
    """Sync with graceful degradation: close once a quorum has merged.

    Identical to :class:`SyncFlushPolicy` (flush when every reachable
    dispatch arrived), *plus* an early exit once ``quorum_count`` updates
    have been merged — the server stops waiting for a faulty tail and carries
    whatever is still in transit forward as stale.  With ``quorum_count``
    equal to the full surviving cohort the early exit can only fire at the
    same instant the all-arrived condition does, which keeps the zero-fault
    path bit-identical.
    """

    quorum_count: int
    expected_absent: int = 0

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        if outstanding <= 0 and self.expected_absent == 0:
            return True
        return buffered >= self.quorum_count


@dataclass(frozen=True)
class BufferedFlushPolicy(FlushPolicy):
    """FedBuff-style: flush on the K-th buffered arrival."""

    buffer_size: int

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        return buffered >= self.buffer_size
