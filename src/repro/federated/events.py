"""Virtual-time discrete-event scheduler for the wall-clock round engine.

The scenario engine of :mod:`repro.federated.scenario` models *who* shows up
and *how slow* they are; this module models *when*.  A federation run is a
stream of timestamped events on one virtual clock:

* :class:`ClientUpdateArrival` — a dispatched client's training finishes and
  its update reaches the server at ``dispatch_time + latency``;
* :class:`RoundDeadline` — the server's timer for the current round fires;
* :class:`BufferFlush` — the round's flush condition (all expected arrivals,
  or the K-th arrival of a FedBuff-style buffer) has been met.

The server consumes arrivals **in time order** — not in client-index order —
and the three round-closure schemes become three *flush policies* over the
same event stream:

==================  =====================================================
``sync``            flush when every dispatched client has arrived
``sync`` + deadline flush at ``T`` if anyone is still outstanding
``buffered-async``  flush on the K-th buffered arrival (deadline optional)
==================  =====================================================

Determinism contract
--------------------
Event times are pure functions of ``(seed, client_id, round)`` (the scenario
models' contract), and ties are broken by ``(time, priority, seq)`` where
``seq`` is the deterministic insertion index.  Event order therefore never
depends on wall-clock execution, thread scheduling, or ``parallelism`` — the
same seed always yields the same event trace.  At equal timestamps a
:class:`BufferFlush` sorts first (the round closes before same-instant
arrivals from other rounds leak in), an arrival sorts before a
:class:`RoundDeadline` (an update landing exactly at ``T`` is on time), and
equal-time arrivals pop in insertion order (client order) — which is what
keeps the default no-latency scenario bit-identical to the legacy barrier
loop.

Scheduler backends
------------------
Two implementations share the contract above (and a property-tested,
bit-identical event trace):

* :class:`EventScheduler` — the binary-heap reference.  ``schedule``/``pop``
  are ``O(log n)`` in the number of pending events, which is fine for
  hundreds of in-flight arrivals and increasingly wasteful at 10⁵+.
* :class:`CalendarQueue` — a calendar/ladder queue.  Pending events are
  bucketed by virtual-time epoch (``bucket_width`` simulated seconds per
  bucket); the earliest bucket is promoted to a sorted *run* that pops by
  pointer increment, events landing before the promotion boundary go to a
  small overflow heap, and far-future events spill onto a coarse *ladder*
  rung that is exploded into fine buckets only when the clock approaches it.
  ``schedule`` is ``O(1)`` (an integer division and a list append) and
  ``pop`` is ``O(1)`` amortized — the per-bucket sort touches each event
  once, at C speed, regardless of how many other events are pending.

Both backends keep incremental in-flight counters, so
:meth:`VirtualClockScheduler.pending_arrival_count` and
:meth:`VirtualClockScheduler.in_flight_count` are ``O(1)`` — the round loop
never scans the queue just to count the backlog.  The list-returning scans
(:meth:`~VirtualClockScheduler.pending_arrivals`,
:meth:`~VirtualClockScheduler.in_flight_payloads`) sort by the full
``(time, priority, seq)`` key, so their output order is deterministic even
at equal timestamps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = [
    "Event",
    "ClientUpdateArrival",
    "TransmissionFailure",
    "RoundDeadline",
    "BufferFlush",
    "VirtualClockScheduler",
    "EventScheduler",
    "CalendarQueue",
    "SCHEDULER_BACKENDS",
    "make_scheduler",
    "FlushPolicy",
    "SyncFlushPolicy",
    "QuorumFlushPolicy",
    "BufferedFlushPolicy",
]


# Tie-break ranks at equal timestamps (see module docstring).
_PRIORITY_FLUSH = 0
_PRIORITY_ARRIVAL = 1
_PRIORITY_DEADLINE = 2


@dataclass(frozen=True)
class Event:
    """Base timestamped event; subclasses define their tie-break priority."""

    time: float
    priority: int = field(init=False, default=_PRIORITY_ARRIVAL, repr=False)


@dataclass(frozen=True)
class ClientUpdateArrival(Event):
    """A client's trained update reaches the server.

    ``time = dispatch_time + latency``; the :class:`~repro.federated.update.
    ModelUpdate` payload is attached by the round engine after training (the
    event's identity and ordering never depend on the payload).
    """

    client_id: int = -1
    origin_round: int = -1
    dispatch_time: float = 0.0
    latency: float = 0.0
    update: object = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_ARRIVAL)


@dataclass(frozen=True)
class TransmissionFailure(Event):
    """A transmission attempt failed in transit; the sender learns at ``time``.

    ``kind`` is ``"frame"`` (the receiver detected a corrupt frame at what
    would have been the arrival instant) or ``"timeout"`` (the per-hop ack
    timer expired before the frame landed).  The round engine answers with a
    backoff-delayed retry or, once the attempt budget is exhausted, discards
    the payload.  Arrival priority: a failure detected at the same instant as
    a round close never reopens the round.
    """

    client_id: int = -1
    origin_round: int = -1
    dispatch_time: float = 0.0
    #: transit latency of the failed attempt (the retry redraws its own)
    latency: float = 0.0
    #: 0-based index of the attempt that failed
    attempt: int = 0
    kind: str = "frame"
    update: object = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_ARRIVAL)


@dataclass(frozen=True)
class RoundDeadline(Event):
    """The server's round timer fires at ``round_start + deadline``."""

    round_index: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_DEADLINE)


@dataclass(frozen=True)
class BufferFlush(Event):
    """The round's flush condition was met at ``time`` (close immediately)."""

    round_index: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", _PRIORITY_FLUSH)


class VirtualClockScheduler:
    """Shared contract of the event-queue backends: one monotonic virtual
    clock, ``(time, priority, seq)`` total order, incremental in-flight
    counters.

    ``pop`` advances :attr:`now` to the popped event's timestamp; the clock
    never runs backwards (events scheduled in the past pop "immediately", at
    the current time).  Ties are broken by ``(priority, seq)`` — ``seq`` is
    the global insertion index, so equal-time, equal-priority events pop in
    the order they were scheduled.  Because ``seq`` is unique, entry tuples
    form a total order and comparisons never reach the event object itself.

    Subclasses implement the storage: :meth:`_insert`, :meth:`_pop_entry`,
    :meth:`_peek_entry`, and :meth:`_entries` over ``(time, priority, seq,
    event)`` tuples.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._seq = 0
        self._size = 0
        # Incremental backlog counters: arrivals, and payloads still in
        # transit (arrivals + failures awaiting their retry).  Maintained on
        # schedule/pop so counting the backlog never scans the queue.
        self._num_arrivals = 0
        self._num_payloads = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"{type(self).__name__}(now={self.now:.3f}, pending={self._size})"

    # -- storage primitives implemented by each backend ------------------
    def _insert(self, entry: tuple[float, int, int, Event]) -> None:
        raise NotImplementedError

    def _pop_entry(self) -> tuple[float, int, int, Event]:
        raise NotImplementedError

    def _peek_entry(self) -> tuple[float, int, int, Event] | None:
        raise NotImplementedError

    def _entries(self) -> list[tuple[float, int, int, Event]]:
        raise NotImplementedError

    # -- shared behavior -------------------------------------------------
    def schedule(self, event: Event) -> None:
        """Queue an event; insertion order is the final tie-breaker."""
        self._insert((event.time, event.priority, self._seq, event))
        self._seq += 1
        self._size += 1
        if isinstance(event, ClientUpdateArrival):
            self._num_arrivals += 1
            self._num_payloads += 1
        elif isinstance(event, TransmissionFailure):
            self._num_payloads += 1

    def peek(self) -> Event | None:
        """The next event without popping it, or ``None`` when drained."""
        entry = self._peek_entry()
        return entry[3] if entry is not None else None

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        time, _, _, event = self._pop_entry()
        if time > self.now:
            self.now = time
        self._size -= 1
        if isinstance(event, ClientUpdateArrival):
            self._num_arrivals -= 1
            self._num_payloads -= 1
        elif isinstance(event, TransmissionFailure):
            self._num_payloads -= 1
        return event

    def advance(self, seconds: float) -> None:
        """Advance the clock by a recovery delay spent outside the queue
        (post-flush failover/retry work); the clock never runs backwards."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock backwards, got {seconds}")
        self.now += seconds

    # -- backlog accounting ----------------------------------------------
    def pending_arrival_count(self) -> int:
        """Arrival events still queued — O(1), no scan."""
        return self._num_arrivals

    def in_flight_count(self) -> int:
        """Payload events still in transit (arrivals + pending retries) —
        O(1), no scan."""
        return self._num_payloads

    def pending_arrivals(self) -> list[ClientUpdateArrival]:
        """Arrival events still queued (in-transit updates), in pop order.

        A full snapshot sorted by the ``(time, priority, seq)`` key, so the
        output order is deterministic even at equal timestamps.  O(n log n);
        use :meth:`pending_arrival_count` when only the count matters.
        """
        return [
            entry[3]
            for entry in sorted(
                e for e in self._entries() if isinstance(e[3], ClientUpdateArrival)
            )
        ]

    def in_flight_payloads(self) -> list[Event]:
        """Every queued event that carries a payload still in transit —
        arrivals plus transmission failures awaiting their retry — in pop
        order (full ``(time, priority, seq)`` key).  This is the backlog a
        fault-aware round must still expect; use :meth:`in_flight_count`
        when only the count matters."""
        return [
            entry[3]
            for entry in sorted(
                e
                for e in self._entries()
                if isinstance(e[3], (ClientUpdateArrival, TransmissionFailure))
            )
        ]


class EventScheduler(VirtualClockScheduler):
    """Deterministic min-heap of events — the O(log n) reference backend.

    Kept as the property-test oracle for :class:`CalendarQueue`: both must
    pop bit-identical event traces for any schedule/pop/advance stream.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []

    def _insert(self, entry: tuple[float, int, int, Event]) -> None:
        heapq.heappush(self._heap, entry)

    def _pop_entry(self) -> tuple[float, int, int, Event]:
        if not self._heap:
            raise IndexError("pop from an empty event scheduler")
        return heapq.heappop(self._heap)

    def _peek_entry(self) -> tuple[float, int, int, Event] | None:
        return self._heap[0] if self._heap else None

    def _entries(self) -> list[tuple[float, int, int, Event]]:
        return self._heap


class CalendarQueue(VirtualClockScheduler):
    """Calendar/ladder queue: O(1) schedule, O(1) amortized pop.

    Pending events are bucketed by virtual-time epoch (``time //
    bucket_width``).  When the consumption frontier needs events, the
    earliest fine bucket is *promoted*: sorted once (C-speed Timsort over a
    bucket whose size tracks event density, not total backlog) into the
    current *run*, which then pops by pointer increment.  Promotion advances
    the frontier epoch; events scheduled behind it — flushes at the current
    instant, retries landing inside the promoted window — go to a small
    overflow heap (``_active``) that is merged with the run head at pop
    time.  Events beyond ``horizon`` fine epochs spill to a coarse
    ladder rung of ``spill_factor`` fine epochs each, exploded into fine
    buckets only when the clock approaches — so a far-future deadline costs
    one list append, not a heap percolation through the whole backlog.

    Ordering is exact, not approximate: every pop compares full ``(time,
    priority, seq)`` entry tuples between the run head and the overflow
    head, and bucket promotion consumes epochs in increasing order, so the
    pop sequence is bit-identical to :class:`EventScheduler` by
    construction (and property-tested).  All state is plain containers, so
    checkpointing pickles a mid-round queue wholesale.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        bucket_width: float = 0.5,
        spill_factor: int = 1024,
        horizon: int = 8192,
    ) -> None:
        super().__init__(start_time)
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0 simulated seconds, got {bucket_width}")
        if spill_factor < 2:
            raise ValueError(f"spill_factor must be >= 2, got {spill_factor}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1 fine epoch, got {horizon}")
        self._width = float(bucket_width)
        self._spill = int(spill_factor)
        self._horizon = int(horizon)
        # Promotion frontier: entries whose epoch precedes it land in the
        # overflow heap, everything else in a (fine or coarse) bucket.  The
        # frontier is an *epoch*, not a raw time, so the routing function is
        # identical for equal timestamps — a boundary-time event can never
        # slip into an already-promoted bucket behind the run (float division
        # makes time-based boundary checks unreliable: with width 0.1,
        # ``int(2.5 // 0.1) == 24``).
        self._limit_epoch = self._epoch(self.now)
        self._active: list[tuple[float, int, int, Event]] = []  # overflow heap
        self._run: list[tuple[float, int, int, Event]] = []  # promoted bucket
        self._run_pos = 0
        self._fine: dict[int, list[tuple[float, int, int, Event]]] = {}
        self._fine_epochs: list[int] = []  # min-heap of occupied fine epochs
        self._coarse: dict[int, list[tuple[float, int, int, Event]]] = {}
        self._coarse_epochs: list[int] = []  # min-heap of occupied rungs

    def _epoch(self, time: float) -> int:
        return int(time // self._width)

    @staticmethod
    def _bucket_add(buckets, epochs, epoch, entry) -> None:
        bucket = buckets.get(epoch)
        if bucket is None:
            buckets[epoch] = [entry]
            heapq.heappush(epochs, epoch)
        else:
            bucket.append(entry)

    def _insert(self, entry: tuple[float, int, int, Event]) -> None:
        # Hot path (every schedule): the fine-bucket case is inlined rather
        # than routed through _epoch/_bucket_add — at 10⁴+ ops per simulated
        # round the two extra Python calls are the dominant cost.
        epoch = int(entry[0] // self._width)
        limit = self._limit_epoch
        if epoch >= limit:
            if epoch < limit + self._horizon:
                bucket = self._fine.get(epoch)
                if bucket is None:
                    self._fine[epoch] = [entry]
                    heapq.heappush(self._fine_epochs, epoch)
                else:
                    bucket.append(entry)
            else:
                self._bucket_add(
                    self._coarse, self._coarse_epochs, epoch // self._spill, entry
                )
        else:
            heapq.heappush(self._active, entry)

    def _promote(self) -> None:
        """Sort the earliest pending bucket into the run, exploding any
        coarse rung that may overlap it first (rung ``c`` covers fine epochs
        ``[c*spill, (c+1)*spill)``, so at ``c*spill <= earliest_fine`` its
        entries can precede the fine bucket's and must be re-bucketed before
        promotion)."""
        while self._fine_epochs or self._coarse_epochs:
            fine_head = self._fine_epochs[0] if self._fine_epochs else None
            coarse_head = self._coarse_epochs[0] if self._coarse_epochs else None
            if coarse_head is not None and (
                fine_head is None or coarse_head * self._spill <= fine_head
            ):
                heapq.heappop(self._coarse_epochs)
                for entry in self._coarse.pop(coarse_head):
                    epoch = self._epoch(entry[0])
                    if epoch < self._limit_epoch:  # unreachable; guards edits
                        heapq.heappush(self._active, entry)
                    else:
                        self._bucket_add(self._fine, self._fine_epochs, epoch, entry)
                continue
            heapq.heappop(self._fine_epochs)
            bucket = self._fine.pop(fine_head)
            bucket.sort()
            self._run = bucket
            self._run_pos = 0
            self._limit_epoch = fine_head + 1
            return

    def _head(self):
        """``(source, entry)`` of the earliest pending entry; source is the
        overflow heap or the run.  Bucketed entries all live at epochs at or
        past the promotion frontier while run/overflow entries precede it,
        so buckets only need consulting when both are exhausted."""
        if self._run_pos >= len(self._run) and not self._active:
            self._run = []
            self._run_pos = 0
            self._promote()
        run_head = self._run[self._run_pos] if self._run_pos < len(self._run) else None
        active_head = self._active[0] if self._active else None
        if active_head is not None and (run_head is None or active_head < run_head):
            return self._active, active_head
        if run_head is not None:
            return self._run, run_head
        return None, None

    def _peek_entry(self) -> tuple[float, int, int, Event] | None:
        return self._head()[1]

    def _pop_entry(self) -> tuple[float, int, int, Event]:
        # Hot path (every pop): run populated, overflow heap empty — a
        # pointer increment, no _head() call.
        run = self._run
        pos = self._run_pos
        if pos < len(run) and not self._active:
            entry = run[pos]
            pos += 1
            if pos == len(run):
                self._run = []
                self._run_pos = 0
            else:
                self._run_pos = pos
            return entry
        source, head = self._head()
        if head is None:
            raise IndexError("pop from an empty event scheduler")
        if source is self._active:
            return heapq.heappop(self._active)
        self._run_pos += 1
        if self._run_pos >= len(self._run):
            self._run = []
            self._run_pos = 0
        return head

    def _entries(self) -> list[tuple[float, int, int, Event]]:
        entries = list(self._active)
        entries.extend(self._run[self._run_pos :])
        for bucket in self._fine.values():
            entries.extend(bucket)
        for bucket in self._coarse.values():
            entries.extend(bucket)
        return entries


#: Selectable virtual-clock backends, by name.
SCHEDULER_BACKENDS = ("calendar", "heap")


def make_scheduler(backend: str = "calendar", start_time: float = 0.0) -> VirtualClockScheduler:
    """Instantiate a scheduler backend by name (see :data:`SCHEDULER_BACKENDS`)."""
    if backend == "calendar":
        return CalendarQueue(start_time)
    if backend == "heap":
        return EventScheduler(start_time)
    raise ValueError(
        f"unknown scheduler backend {backend!r}; choose from {SCHEDULER_BACKENDS}"
    )


# ----------------------------------------------------------------------
# Flush policies: when does the current round close?
# ----------------------------------------------------------------------
class FlushPolicy:
    """Decides, per buffered arrival, whether the round's flush fires now.

    A policy sees only counts — how many updates are buffered and how many
    dispatched clients could still arrive — so the decision is independent of
    payload contents and execution order.
    """

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class SyncFlushPolicy(FlushPolicy):
    """Flush when every dispatched client has arrived (``outstanding == 0``).

    ``expected_absent`` counts dispatched clients that will *never* arrive
    this round (sync-mode stragglers beyond the deadline): while any exist
    the all-arrived condition is unreachable and the round can only close at
    its :class:`RoundDeadline`.
    """

    expected_absent: int = 0

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        return outstanding <= 0 and self.expected_absent == 0


@dataclass(frozen=True)
class QuorumFlushPolicy(FlushPolicy):
    """Sync with graceful degradation: close once a quorum has merged.

    Identical to :class:`SyncFlushPolicy` (flush when every reachable
    dispatch arrived), *plus* an early exit once ``quorum_count`` updates
    have been merged — the server stops waiting for a faulty tail and carries
    whatever is still in transit forward as stale.  With ``quorum_count``
    equal to the full surviving cohort the early exit can only fire at the
    same instant the all-arrived condition does, which keeps the zero-fault
    path bit-identical.
    """

    quorum_count: int
    expected_absent: int = 0

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        if outstanding <= 0 and self.expected_absent == 0:
            return True
        return buffered >= self.quorum_count


@dataclass(frozen=True)
class BufferedFlushPolicy(FlushPolicy):
    """FedBuff-style: flush on the K-th buffered arrival."""

    buffer_size: int

    def should_flush(self, buffered: int, outstanding: int) -> bool:
        return buffered >= self.buffer_size
