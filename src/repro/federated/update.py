"""Model-update representation and aggregation algebra.

A :class:`ModelUpdate` is what a participant sends after local training: the
full refined parameter state (TensorFlow-style FedAvg, as in the paper), keyed
by parameter name.  Parameter names are grouped into *layers* — the mixing
unit of the MixNN proxy (a layer's weight and bias travel together, exactly as
the paper mixes whole layers ``l_1 … l_n``).

Identity model
--------------
``sender_id`` is the participant that produced the update.  ``apparent_id``
is the identity the *server* ascribes to the update: equal to ``sender_id``
in classical FL, but after MixNN mixing an emitted update is a chimera and
``apparent_id`` only names the arrival slot the server observes.  Attack
accuracy is always scored against the apparent participant's true attribute,
which is what makes the paper's "inference accuracy" measurable in both
configurations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..nn.serialization import flatten

__all__ = ["ModelUpdate", "layer_groups", "aggregate_states", "aggregate_updates", "state_delta"]


def layer_groups(names: list[str] | tuple[str, ...]) -> "OrderedDict[str, list[str]]":
    """Group parameter names into layers.

    ``"layer0.weight"`` and ``"layer0.bias"`` share the layer key
    ``"layer0"``; a bare name (no dot) forms its own group.  Order follows
    first appearance, i.e. network depth for sequentially built models.
    """
    groups: "OrderedDict[str, list[str]]" = OrderedDict()
    for name in names:
        key = name.rsplit(".", 1)[0] if "." in name else name
        groups.setdefault(key, []).append(name)
    return groups


@dataclass
class ModelUpdate:
    """One participant's post-training parameter state for one round."""

    sender_id: int
    round_index: int
    state: "OrderedDict[str, np.ndarray]"
    num_samples: int = 1
    apparent_id: int | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.apparent_id is None:
            self.apparent_id = self.sender_id

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self.state.keys())

    @property
    def layers(self) -> "OrderedDict[str, list[str]]":
        return layer_groups(list(self.state.keys()))

    def flat(self) -> np.ndarray:
        """Concatenated float32 vector of all parameters."""
        return flatten(self.state)

    def layer_state(self, layer: str) -> "OrderedDict[str, np.ndarray]":
        """The sub-state belonging to one layer group."""
        names = self.layers.get(layer)
        if names is None:
            raise KeyError(f"unknown layer {layer!r}; have {list(self.layers)}")
        return OrderedDict((name, self.state[name]) for name in names)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def delta(self, reference: dict) -> "OrderedDict[str, np.ndarray]":
        """Gradient direction relative to ``reference`` (θ_local − θ_broadcast).

        This is the fingerprint ∇Sim consumes (§5): the direction in which the
        participant's local data pulled the broadcast model.
        """
        return state_delta(self.state, reference)

    def copy(self) -> "ModelUpdate":
        return replace(self, state=OrderedDict((k, v.copy()) for k, v in self.state.items()))

    def with_state(self, state: "OrderedDict[str, np.ndarray]") -> "ModelUpdate":
        return replace(self, state=state)

    def __repr__(self) -> str:
        return (
            f"ModelUpdate(sender={self.sender_id}, apparent={self.apparent_id}, "
            f"round={self.round_index}, params={len(self.state)})"
        )


def state_delta(state: dict, reference: dict) -> "OrderedDict[str, np.ndarray]":
    """Per-parameter difference ``state − reference``."""
    if set(state) != set(reference):
        raise KeyError("state and reference have different parameter sets")
    return OrderedDict(
        (name, np.asarray(state[name], dtype=np.float32) - np.asarray(reference[name], dtype=np.float32))
        for name in state
    )


def aggregate_states(states: list[dict], weights: list[float] | None = None) -> "OrderedDict[str, np.ndarray]":
    """Weighted mean of parameter states (FedAvg's column-mean ``Agr``, §4.2).

    With ``weights=None`` this is the plain mean the utility-equivalence proof
    assumes.
    """
    if not states:
        raise ValueError("cannot aggregate an empty state list")
    names = list(states[0].keys())
    for other in states[1:]:
        if list(other.keys()) != names:
            raise KeyError("all states must share the same parameter schema")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError(f"{len(weights)} weights for {len(states)} states")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in names:
        stacked = np.stack([np.asarray(s[name], dtype=np.float32) for s in states])
        w = np.asarray(weights, dtype=np.float32).reshape((-1,) + (1,) * (stacked.ndim - 1))
        out[name] = (stacked * w).sum(axis=0) / total
    return out


def aggregate_updates(
    updates: list[ModelUpdate],
    sample_weighted: bool = False,
) -> "OrderedDict[str, np.ndarray]":
    """Aggregate updates; plain mean by default (paper §4.2)."""
    weights = [float(u.num_samples) for u in updates] if sample_weighted else None
    return aggregate_states([u.state for u in updates], weights)
