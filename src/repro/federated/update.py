"""Model-update representation and aggregation algebra.

A :class:`ModelUpdate` is what a participant sends after local training: the
full refined parameter state (TensorFlow-style FedAvg, as in the paper), keyed
by parameter name.  Parameter names are grouped into *layers* — the mixing
unit of the MixNN proxy (a layer's weight and bias travel together, exactly as
the paper mixes whole layers ``l_1 … l_n``).

Flat parameter plane
--------------------
The round-critical algebra (aggregation, deltas, mixing, defenses, ∇Sim)
runs on the **flat parameter plane**: a model state is one contiguous float32
vector under a :class:`~repro.nn.serialization.StateSchema`, and a round's
``N`` updates are one ``(N, D)`` matrix (:mod:`repro.federated.flat`).  The
dict-of-arrays API remains the public surface, as cheap zero-copy views into
the flat buffer.  An update whose state is backed by a flat buffer exposes it
via ``flat_vector``; consumers that hold one skip all per-parameter
re-marshalling.  The original per-parameter dict implementations are retained
as ``*_reference`` and cross-checked bit-for-bit by the equivalence tests.

Invariant: once an update is flat-backed, its ``state`` entries are views into
``flat_vector`` — mutate parameters in place (``state[n][...] = x``) or build
a new update (``with_state``/``copy``); never rebind ``state[n]`` wholesale.

Identity model
--------------
``sender_id`` is the participant that produced the update.  ``apparent_id``
is the identity the *server* ascribes to the update: equal to ``sender_id``
in classical FL, but after MixNN mixing an emitted update is a chimera and
``apparent_id`` only names the arrival slot the server observes.  Attack
accuracy is always scored against the apparent participant's true attribute,
which is what makes the paper's "inference accuracy" measurable in both
configurations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..nn.serialization import flatten, schema_of

__all__ = [
    "ModelUpdate",
    "layer_groups",
    "aggregate_states",
    "aggregate_states_reference",
    "aggregate_updates",
    "aggregate_updates_reference",
    "layerwise_staleness_mean",
    "layerwise_staleness_mean_reference",
    "update_weights",
    "state_delta",
    "state_delta_reference",
]


def layer_groups(names: list[str] | tuple[str, ...]) -> "OrderedDict[str, list[str]]":
    """Group parameter names into layers.

    ``"layer0.weight"`` and ``"layer0.bias"`` share the layer key
    ``"layer0"``; a bare name (no dot) forms its own group.  Order follows
    first appearance, i.e. network depth for sequentially built models.

    Results are memoized per name tuple (every update of a model shares one
    grouping); treat the returned mapping as read-only.
    """
    key = tuple(names)
    groups = _LAYER_GROUPS_CACHE.get(key)
    if groups is None:
        groups = OrderedDict()
        for name in key:
            group_key = name.rsplit(".", 1)[0] if "." in name else name
            groups.setdefault(group_key, []).append(name)
        _LAYER_GROUPS_CACHE[key] = groups
    return groups


#: memo: names tuple -> layer grouping (shared across all same-schema updates)
_LAYER_GROUPS_CACHE: dict[tuple[str, ...], "OrderedDict[str, list[str]]"] = {}


@dataclass
class ModelUpdate:
    """One participant's post-training parameter state for one round."""

    sender_id: int
    round_index: int
    state: "OrderedDict[str, np.ndarray]"
    num_samples: int = 1
    apparent_id: int | None = None
    metadata: dict = field(default_factory=dict)
    #: contiguous float32 buffer backing ``state`` (flat-plane fast path);
    #: ``None`` until the update is materialized on the flat plane.
    flat_vector: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.apparent_id is None:
            self.apparent_id = self.sender_id

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self.state.keys())

    @property
    def layers(self) -> "OrderedDict[str, list[str]]":
        return layer_groups(tuple(self.state.keys()))

    def flat(self) -> np.ndarray:
        """Concatenated float32 vector of all parameters.

        Flat-backed updates return the backing buffer itself (treat it as
        read-only); others pay one concatenation.
        """
        if self.flat_vector is not None:
            return self.flat_vector
        return flatten(self.state)

    def ensure_flat(self) -> np.ndarray:
        """Materialize this update on the flat plane and return the buffer.

        After this call ``state`` holds zero-copy views into ``flat_vector``,
        so every flat-plane consumer (aggregation, mixing, defenses, attacks,
        transport) shares the single allocation.
        """
        if self.flat_vector is None:
            schema = schema_of(self.state)
            vector = schema.pack(self.state)
            self.flat_vector = vector
            self.state = schema.views(vector)
        return self.flat_vector

    def layer_state(self, layer: str) -> "OrderedDict[str, np.ndarray]":
        """The sub-state belonging to one layer group."""
        names = self.layers.get(layer)
        if names is None:
            raise KeyError(f"unknown layer {layer!r}; have {list(self.layers)}")
        return OrderedDict((name, self.state[name]) for name in names)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def delta(self, reference: dict) -> "OrderedDict[str, np.ndarray]":
        """Gradient direction relative to ``reference`` (θ_local − θ_broadcast).

        This is the fingerprint ∇Sim consumes (§5): the direction in which the
        participant's local data pulled the broadcast model.
        """
        return state_delta(self.state, reference)

    def copy(self) -> "ModelUpdate":
        return replace(
            self,
            state=OrderedDict((k, v.copy()) for k, v in self.state.items()),
            flat_vector=None,
        )

    def with_state(self, state: "OrderedDict[str, np.ndarray]") -> "ModelUpdate":
        return replace(self, state=state, flat_vector=None)

    def __repr__(self) -> str:
        return (
            f"ModelUpdate(sender={self.sender_id}, apparent={self.apparent_id}, "
            f"round={self.round_index}, params={len(self.state)})"
        )


def state_delta(state: dict, reference: dict) -> "OrderedDict[str, np.ndarray]":
    """Per-parameter difference ``state − reference``.

    Computed as one vectorized subtract into a single flat buffer; the
    returned per-parameter arrays are views into it (bit-identical to
    :func:`state_delta_reference`).
    """
    if set(state) != set(reference):
        raise KeyError("state and reference have different parameter sets")
    schema = schema_of(state)
    vector = np.empty(schema.total_size, dtype=np.float32)
    out = schema.views(vector)
    for name, view in out.items():
        np.subtract(
            np.asarray(state[name], dtype=np.float32),
            np.asarray(reference[name], dtype=np.float32),
            out=view,
        )
    return out


def state_delta_reference(state: dict, reference: dict) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`state_delta`."""
    if set(state) != set(reference):
        raise KeyError("state and reference have different parameter sets")
    return OrderedDict(
        (name, np.asarray(state[name], dtype=np.float32) - np.asarray(reference[name], dtype=np.float32))
        for name in state
    )


def aggregate_states(states: list[dict], weights: list[float] | None = None) -> "OrderedDict[str, np.ndarray]":
    """Weighted mean of parameter states (FedAvg's column-mean ``Agr``, §4.2).

    With ``weights=None`` this is the plain mean the utility-equivalence proof
    assumes.  Runs on the flat plane — one ``(N, D)`` matrix, one reduction —
    and is bit-identical to :func:`aggregate_states_reference`.
    """
    if not states:
        raise ValueError("cannot aggregate an empty state list")
    if weights is not None:
        if len(weights) != len(states):
            raise ValueError(f"{len(weights)} weights for {len(states)} states")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
    from .flat import flat_mean

    schema = schema_of(states[0])
    for other in states[1:]:
        if tuple(other.keys()) != schema.names:
            raise KeyError("all states must share the same parameter schema")
        if not schema.matches(other):
            raise ValueError("all states must share the same parameter shapes")
    rows = [schema.pack(state) for state in states]
    return schema.views(flat_mean(rows, schema, weights))


def aggregate_states_reference(
    states: list[dict], weights: list[float] | None = None
) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`aggregate_states`."""
    if not states:
        raise ValueError("cannot aggregate an empty state list")
    names = list(states[0].keys())
    for other in states[1:]:
        if list(other.keys()) != names:
            raise KeyError("all states must share the same parameter schema")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError(f"{len(weights)} weights for {len(states)} states")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name in names:
        stacked = np.stack([np.asarray(s[name], dtype=np.float32) for s in states])
        w = np.asarray(weights, dtype=np.float32).reshape((-1,) + (1,) * (stacked.ndim - 1))
        out[name] = (stacked * w).sum(axis=0) / total
    return out


def update_weights(
    updates: list[ModelUpdate],
    sample_weighted: bool = False,
    staleness_alpha: float | None = None,
) -> list[float] | None:
    """Per-update aggregation weights, or ``None`` for the plain mean.

    ``sample_weighted`` scales by each update's ``num_samples`` (classical
    FedAvg).  ``staleness_alpha`` additionally applies the FedBuff-style
    polynomial discount ``(1 + staleness) ** -alpha`` to updates that carry
    ``staleness`` metadata (buffered-async rounds); fresh updates keep weight
    1, so a round where everything arrived on time aggregates exactly like
    the plain mean.
    """
    if not sample_weighted and staleness_alpha is None:
        return None
    from .scenario import staleness_weight

    weights: list[float] = []
    for update in updates:
        weight = float(update.num_samples) if sample_weighted else 1.0
        if staleness_alpha is not None:
            weight *= staleness_weight(int(update.metadata.get("staleness", 0)), staleness_alpha)
        weights.append(weight)
    if staleness_alpha is not None and not sample_weighted and all(w == 1.0 for w in weights):
        return None  # nothing stale: keep the unweighted (bit-identical) path
    return weights


def layerwise_staleness_mean(
    updates: list[ModelUpdate],
    staleness_alpha: float,
    sample_weighted: bool = False,
) -> "OrderedDict[str, np.ndarray]":
    """Staleness-weighted mean with *per-parameter* weights (MixNN passthrough).

    A MixNN chimera is composed of layers from different source updates, each
    with its own lateness; its ``param_staleness`` metadata (written by
    :meth:`~repro.mixnn.proxy.MixNNProxy._compose`) maps each parameter name
    to its source's staleness.  This aggregation discounts every parameter
    span by its own ``(1 + s) ** -alpha`` weight — so a chimera whose conv
    layer is fresh but whose head is three rounds old contributes fully in
    the former and is down-weighted only in the latter.  Updates without the
    metadata fall back to their scalar ``staleness`` uniformly, which makes
    the result identical to :func:`aggregate_updates` for unmixed batches.
    """
    from .flat import flat_rows
    from .scenario import staleness_weight

    schema = schema_of(updates[0].state)
    rows = flat_rows(updates, schema)
    numerator = np.zeros(schema.total_size, dtype=np.float32)
    denominator = np.zeros(schema.total_size, dtype=np.float32)
    weight_row = np.empty(schema.total_size, dtype=np.float32)
    for update, row in zip(updates, rows):
        base = float(update.num_samples) if sample_weighted else 1.0
        scalar = staleness_weight(int(update.metadata.get("staleness", 0)), staleness_alpha)
        weight_row.fill(base * scalar)
        per_param = update.metadata.get("param_staleness")
        if per_param:
            for name, staleness in per_param.items():
                start, end = schema.span(name)
                weight_row[start:end] = base * staleness_weight(
                    int(staleness), staleness_alpha
                )
        numerator += row * weight_row
        denominator += weight_row
    if not np.all(denominator > 0):
        raise ValueError("weights must sum to a positive value in every parameter")
    return schema.views(numerator / denominator)


def aggregate_updates(
    updates: list[ModelUpdate],
    sample_weighted: bool = False,
    staleness_alpha: float | None = None,
) -> "OrderedDict[str, np.ndarray]":
    """Aggregate updates; plain mean by default (paper §4.2).

    ``staleness_alpha`` enables staleness-aware down-weighting for
    buffered-async rounds — see :func:`update_weights`.  Batches containing
    MixNN chimeras with ``param_staleness`` metadata take the per-layer
    weighting of :func:`layerwise_staleness_mean` instead of one scalar
    weight per update.
    """
    if not updates:
        raise ValueError("cannot aggregate an empty update list")
    if staleness_alpha is not None and any(
        "param_staleness" in u.metadata for u in updates
    ):
        return layerwise_staleness_mean(updates, staleness_alpha, sample_weighted)
    weights = update_weights(updates, sample_weighted, staleness_alpha)
    if weights is not None:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
    from .flat import flat_mean, flat_rows

    schema = schema_of(updates[0].state)
    rows = flat_rows(updates, schema)
    return schema.views(flat_mean(rows, schema, weights))


def layerwise_staleness_mean_reference(
    updates: list[ModelUpdate],
    staleness_alpha: float,
    sample_weighted: bool = False,
) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`layerwise_staleness_mean`.

    Accumulates per-update numerator/denominator in the same float32 order as
    the flat path, so the two agree bit for bit.
    """
    from .scenario import staleness_weight

    names = list(updates[0].state.keys())
    numerator = {
        name: np.zeros_like(np.asarray(updates[0].state[name], dtype=np.float32))
        for name in names
    }
    denominator = {name: np.zeros_like(numerator[name]) for name in names}
    for update in updates:
        base = float(update.num_samples) if sample_weighted else 1.0
        scalar = staleness_weight(int(update.metadata.get("staleness", 0)), staleness_alpha)
        per_param = update.metadata.get("param_staleness", {})
        for name in names:
            if name in per_param:
                weight = base * staleness_weight(int(per_param[name]), staleness_alpha)
            else:
                weight = base * scalar
            weight = np.float32(weight)
            numerator[name] += np.asarray(update.state[name], dtype=np.float32) * weight
            denominator[name] += weight
    for name in names:
        if not np.all(denominator[name] > 0):
            raise ValueError("weights must sum to a positive value in every parameter")
    return OrderedDict((name, numerator[name] / denominator[name]) for name in names)


def aggregate_updates_reference(
    updates: list[ModelUpdate],
    sample_weighted: bool = False,
    staleness_alpha: float | None = None,
) -> "OrderedDict[str, np.ndarray]":
    """Retained per-parameter implementation of :func:`aggregate_updates`."""
    if staleness_alpha is not None and any(
        "param_staleness" in u.metadata for u in updates
    ):
        return layerwise_staleness_mean_reference(updates, staleness_alpha, sample_weighted)
    weights = update_weights(updates, sample_weighted, staleness_alpha)
    return aggregate_states_reference([u.state for u in updates], weights)
