"""Round orchestration: the full federated pipeline of Figures 2 and 3.

:class:`FederatedSimulation` wires together a dataset simulator, the client
fleet, an optional defense (noisy gradient or the MixNN proxy), an optional
∇Sim adversary on the server, and the aggregation server itself, then runs
the configured number of learning rounds while recording the metrics the
paper's figures are built from:

* per-round global-model accuracy (Figure 5),
* per-client accuracy at each round (Figure 6),
* cumulative inference accuracy of the attack (Figures 7–8),
* received raw updates for the §6.4 neighbor analysis (Figure 9).

Scenario engine
---------------
A :class:`~repro.federated.scenario.ScenarioConfig` on the simulation config
moves the round loop from the paper's idealized synchronous flow to a
production regime: per-round client churn (availability models), stragglers
cut by a deadline (latency models), and FedBuff-style buffered-async
aggregation where the server merges the first ``buffer_size`` arrivals and
late updates land in later rounds down-weighted by their staleness.  With no
scenario configured the round loop takes exactly the legacy code path, and
every scenario decision is a pure function of ``(seed, client_id, round)``,
so results remain bit-identical across ``parallelism`` settings.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from typing import TYPE_CHECKING

from ..data.federated import FederatedDataset
from ..metrics.accuracy import model_accuracy, per_client_accuracies

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..defenses.base import Defense
from ..nn import Module
from ..utils.rng import rng_from_seed, stable_seed
from .client import FederatedClient, LocalTrainingConfig
from .scenario import AlwaysAvailable, ScenarioConfig
from .server import AggregationServer
from .update import ModelUpdate

__all__ = ["SimulationConfig", "RoundRecord", "SimulationResult", "FederatedSimulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Experiment-level knobs (paper §6.1.4 per-dataset values).

    ``parallelism`` controls how many clients train concurrently each round
    (a thread pool; the numpy/BLAS kernels release the GIL).  Every client
    derives its training RNG from ``stable_seed(seed, client_id, round)``
    independently of execution order, so results are bit-identical across
    parallelism settings — and ``parallelism=1`` takes the exact sequential
    code path.  ``None`` sizes the pool to the machine.

    ``scenario`` opts the round loop into churn/straggler/async operation
    (see :class:`~repro.federated.scenario.ScenarioConfig`); ``None`` keeps
    the paper's idealized synchronous flow, bit for bit.
    """

    rounds: int
    local: LocalTrainingConfig
    clients_per_round: int | None = None  # None = all clients every round
    seed: int = 0
    sample_weighted: bool = False
    track_per_client_accuracy: bool = True
    parallelism: int | None = 1
    #: keep every round's received updates for post-hoc analysis (Figure 9,
    #: mixing-quality extensions).  Disable for long/large runs where the
    #: per-round history would grow without bound.
    retain_received_updates: bool = True
    #: churn / straggler / async operating regime; ``None`` = paper flow.
    scenario: ScenarioConfig | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.clients_per_round is not None and self.clients_per_round < 1:
            raise ValueError(
                f"clients_per_round must be >= 1 (or None for the full cohort), "
                f"got {self.clients_per_round} — a round with no selected clients "
                "can never produce updates to aggregate"
            )
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1 (or None for auto), got {self.parallelism}")


@dataclass
class RoundRecord:
    """Metrics captured at the end of one learning round.

    The ``num_*`` counters and ``simulated_duration`` describe the scenario
    engine's view of the round (selection → churn → deadline → buffer); under
    the legacy flow they degenerate to "everyone selected arrived, nothing
    was stale, duration 0".
    """

    round_index: int
    global_accuracy: float
    per_client_accuracy: dict[int, float] = field(default_factory=dict)
    mean_local_loss: float = float("nan")
    inference_accuracy: float | None = None
    #: clients picked by the selection RNG this round
    num_selected: int = 0
    #: selected clients lost to churn (availability model said no)
    num_dropped: int = 0
    #: surviving clients that missed the sync deadline (trained in async mode)
    num_stragglers: int = 0
    #: updates the server actually merged this round (post defense)
    num_aggregated: int = 0
    #: merged updates that arrived late (staleness >= 1, async mode)
    num_stale: int = 0
    #: in-flight updates discarded for exceeding max_staleness
    num_discarded: int = 0
    #: simulated wall-clock seconds from broadcast to aggregation
    simulated_duration: float = 0.0


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    rounds: list[RoundRecord]
    final_state: dict
    defense_name: str
    #: raw updates per round as received by the server (Figure 9 input)
    received_updates: list[list[ModelUpdate]]
    attack: object | None = None

    def accuracy_curve(self) -> list[float]:
        return [r.global_accuracy for r in self.rounds]

    def inference_curve(self) -> list[tuple[int, float]]:
        """Attack accuracy as explicit ``(round_index, value)`` pairs.

        Rounds without a measurement (no attack attached, or an attack that
        starts late) are omitted — carrying the round index keeps the curve
        alignable with :meth:`accuracy_curve`, which covers every round.
        Use :meth:`inference_values` for the bare value list.
        """
        return [
            (r.round_index, r.inference_accuracy)
            for r in self.rounds
            if r.inference_accuracy is not None
        ]

    def inference_values(self) -> list[float]:
        """Just the measured attack-accuracy values, in round order."""
        return [value for _, value in self.inference_curve()]

    def per_client_accuracy_at(self, round_index: int) -> dict[int, float]:
        """Per-client accuracies at a given round (Figure 6 uses round 6)."""
        for record in self.rounds:
            if record.round_index == round_index:
                if not record.per_client_accuracy:
                    raise ValueError(f"per-client accuracy was not tracked at round {round_index}")
                return record.per_client_accuracy
        raise KeyError(f"no record for round {round_index}")


class FederatedSimulation:
    """End-to-end federated run with pluggable defense and adversary."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_fn: Callable[[np.random.Generator], Module],
        config: SimulationConfig,
        defense: "Defense | None" = None,
        attack=None,
    ) -> None:
        from ..defenses.base import NoDefense

        self.dataset = dataset
        self.model_fn = model_fn
        self.config = config
        self.defense = defense or NoDefense()
        self.attack = attack
        # Independent streams: client sampling must be identical across runs
        # that differ only in defense, so utility curves are comparable
        # point-for-point (and exactly equal for MixNN vs classical FL).
        self._selection_rng = rng_from_seed(stable_seed(config.seed, "selection"))
        self._defense_rng = rng_from_seed(stable_seed(config.seed, "defense"))
        # The simulation owns its received-update history (the server keeps
        # none by default — see AggregationServer.retain_received).
        self._received_log: list[list[ModelUpdate]] = []
        # Buffered-async backlog: updates dispatched but not yet aggregated,
        # each as (origin_round, latency, client_id, update), kept in
        # arrival order.
        self._in_flight: list[tuple[int, float, int, ModelUpdate]] = []
        # One evaluation replica per simulation: model_accuracy would
        # otherwise rebuild a scratch model from model_fn every round.
        self._eval_model: Module | None = None

        self.clients = [
            FederatedClient(data, model_fn, config.local, seed=config.seed)
            for data in dataset.clients()
        ]
        initial_model = model_fn(rng_from_seed(config.seed))
        broadcast_hook = None
        if attack is not None and getattr(attack, "mode", None) == "active":
            broadcast_hook = attack.craft_broadcast
        scenario = config.scenario
        self.server = AggregationServer(
            initial_model.state_dict(),
            sample_weighted=config.sample_weighted,
            broadcast_hook=broadcast_hook,
            staleness_alpha=(
                scenario.staleness_alpha if scenario is not None and scenario.is_async else None
            ),
        )
        if attack is not None:
            if getattr(attack, "truth", None) is None:
                attack.truth = {c.client_id: c.attribute for c in dataset.clients()}
            self.server.add_observer(attack)

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def _select_clients(self) -> list[FederatedClient]:
        count = self.config.clients_per_round
        if count is None or count >= len(self.clients):
            return self.clients
        chosen = self._selection_rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in sorted(chosen)]

    def _train_clients(
        self, participants: list[FederatedClient], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Run local training for all selected clients, possibly in parallel.

        The update list is always in ``participants`` order, and each client's
        RNG is derived from its id and the round alone, so the result does not
        depend on the parallelism setting.
        """
        workers = self.config.parallelism
        if workers is None:
            workers = min(len(participants), os.cpu_count() or 1)
        if workers <= 1 or len(participants) <= 1:
            return [client.local_update(broadcast_state, round_index) for client in participants]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda c: c.local_update(broadcast_state, round_index), participants)
            )

    @staticmethod
    def _mean_local_loss(updates: list[ModelUpdate]) -> float:
        """Mean of the reported final losses, NaN-safe.

        Defense-only or instrumentation runs may produce updates without a
        ``final_loss`` (or with a NaN one); those are excluded rather than
        poisoning the mean or emitting a RuntimeWarning on an empty slice.
        """
        losses = [
            loss
            for u in updates
            if (loss := u.metadata.get("final_loss")) is not None and np.isfinite(loss)
        ]
        if not losses:
            return float("nan")
        return float(np.mean(losses))

    @property
    def _evaluation_model(self) -> Module:
        """Cached scratch replica for accuracy evaluation (built once)."""
        if self._eval_model is None:
            self._eval_model = self.model_fn(rng_from_seed(0))
        return self._eval_model

    # ------------------------------------------------------------------
    # Scenario engine
    # ------------------------------------------------------------------
    def _scenario_round(
        self, broadcast_state: dict, round_index: int
    ) -> tuple[list[ModelUpdate], list[ModelUpdate], RoundRecord]:
        """One churn/straggler/async round.

        Returns ``(arrivals, trained, stats)``: the updates the server will
        see this round (what the defense processes), the updates trained this
        round (for the local-loss metric), and a partially filled
        :class:`RoundRecord` carrying the scenario counters.
        """
        scenario = self.config.scenario
        seed = self.config.seed
        selected = self._select_clients()
        availability = scenario.availability or AlwaysAvailable()
        surviving = [
            client
            for client in selected
            if availability.is_available(seed, client.client_id, round_index)
        ]
        latencies: dict[int, float] = {}
        if scenario.latency is not None:
            latencies = {
                client.client_id: scenario.latency.latency(seed, client.client_id, round_index)
                for client in surviving
            }
        stats = RoundRecord(
            round_index=round_index,
            global_accuracy=float("nan"),
            num_selected=len(selected),
            num_dropped=len(selected) - len(surviving),
        )

        if not scenario.is_async:
            if scenario.deadline is not None:
                arrivers = [
                    client for client in surviving if latencies[client.client_id] <= scenario.deadline
                ]
            else:
                arrivers = surviving
            stats.num_stragglers = len(surviving) - len(arrivers)
            if not arrivers:
                deadline_part = (
                    f", {stats.num_stragglers} missed the {scenario.deadline}s deadline"
                    if scenario.deadline is not None
                    else ""
                )
                raise RuntimeError(
                    f"round {round_index}: no client survived the scenario — "
                    f"{len(selected)} selected, {stats.num_dropped} dropped out"
                    f"{deadline_part}; lower the dropout probability, extend the "
                    "deadline, or select more clients per round"
                )
            updates = self._train_clients(arrivers, broadcast_state, round_index)
            for update in updates:
                update.metadata["staleness"] = 0
                update.metadata["origin_round"] = round_index
                if latencies:
                    update.metadata["latency"] = latencies[update.sender_id]
            arrival_times = [latencies[u.sender_id] for u in updates] if latencies else []
            stats.simulated_duration = max(arrival_times) if arrival_times else 0.0
            return updates, updates, stats

        # Buffered-async (FedBuff-style): merge the first K arrivals; every
        # other dispatched update stays in flight for a later round.
        trained = self._train_clients(surviving, broadcast_state, round_index)
        fresh: list[tuple[int, float, int, ModelUpdate]] = []
        for update in trained:
            latency = latencies.get(update.sender_id, 0.0)
            update.metadata["latency"] = latency
            update.metadata["origin_round"] = round_index
            fresh.append((round_index, latency, update.sender_id, update))
        fresh.sort(key=lambda item: (item[1], item[2]))  # arrival order within the round

        if scenario.deadline is not None:
            on_time = [item for item in fresh if item[1] <= scenario.deadline]
            in_transit = [item for item in fresh if item[1] > scenario.deadline]
        else:
            on_time, in_transit = fresh, []
        stats.num_stragglers = len(in_transit)

        # In-flight updates from earlier rounds reached the server first.
        queue = list(self._in_flight) + on_time
        discarded = 0
        if scenario.max_staleness is not None:
            kept = []
            for item in queue:
                if round_index - item[0] > scenario.max_staleness:
                    discarded += 1
                else:
                    kept.append(item)
            queue = kept
        stats.num_discarded = discarded

        take = min(scenario.buffer_size, len(queue))
        merged, leftover = queue[:take], queue[take:]
        self._in_flight = leftover + in_transit
        if not merged:
            raise RuntimeError(
                f"round {round_index}: the async buffer received no arrivals — "
                f"{len(selected)} selected, {stats.num_dropped} dropped out, "
                f"{len(in_transit)} still in transit, {discarded} discarded as too "
                "stale, and nothing was left in flight; lower the dropout "
                "probability or select more clients per round"
            )
        arrivals: list[ModelUpdate] = []
        for origin_round, latency, _, update in merged:
            staleness = round_index - origin_round
            update.metadata["staleness"] = staleness
            if staleness > 0:
                stats.num_stale += 1
            arrivals.append(update)
        last = merged[-1]
        stats.simulated_duration = last[1] if last[0] == round_index else 0.0
        return arrivals, trained, stats

    def run_round(self) -> RoundRecord:
        """One iteration of the Figure 2 / Figure 3 flow."""
        round_index = self.server.round_index
        broadcast_state = self.server.broadcast()

        if self.config.scenario is None:
            participants = self._select_clients()
            updates = self._train_clients(participants, broadcast_state, round_index)
            trained = updates
            record = RoundRecord(
                round_index=round_index,
                global_accuracy=float("nan"),
                num_selected=len(participants),
            )
        else:
            updates, trained, record = self._scenario_round(broadcast_state, round_index)
        mean_loss = self._mean_local_loss(trained)

        received = self.defense.process_round(
            updates, self._defense_rng, broadcast_state=broadcast_state
        )
        new_state = self.server.receive_and_aggregate(received)
        if self.config.retain_received_updates:
            self._received_log.append(received)

        record.num_aggregated = len(received)
        record.mean_local_loss = mean_loss
        record.global_accuracy = model_accuracy(
            new_state, self.dataset.global_test(), self.model_fn, model=self._evaluation_model
        )
        if self.config.track_per_client_accuracy:
            record.per_client_accuracy = per_client_accuracies(
                new_state, self.dataset.clients(), self.model_fn, model=self._evaluation_model
            )
        if self.attack is not None:
            record.inference_accuracy = self.attack.accuracy_curve()[-1]
        return record

    def run(self) -> SimulationResult:
        """Run all configured rounds and collect the result bundle."""
        records = [self.run_round() for _ in range(self.config.rounds)]
        return SimulationResult(
            rounds=records,
            final_state=self.server.global_state,
            defense_name=self.defense.name,
            received_updates=self._received_log,
            attack=self.attack,
        )
