"""Round orchestration: the full federated pipeline of Figures 2 and 3.

:class:`FederatedSimulation` wires together a dataset simulator, the client
fleet, an optional defense (noisy gradient or the MixNN proxy), an optional
∇Sim adversary on the server, and the aggregation server itself, then runs
the configured number of learning rounds while recording the metrics the
paper's figures are built from:

* per-round global-model accuracy (Figure 5),
* per-client accuracy at each round (Figure 6),
* cumulative inference accuracy of the attack (Figures 7–8),
* received raw updates for the §6.4 neighbor analysis (Figure 9).

Scenario engine
---------------
A :class:`~repro.federated.scenario.ScenarioConfig` on the simulation config
moves the round loop from the paper's idealized synchronous flow to a
production regime: per-round client churn (availability models), stragglers
cut by a deadline (latency models), and FedBuff-style buffered-async
aggregation where the server merges the first ``buffer_size`` arrivals and
late updates land in later rounds down-weighted by their staleness.

Virtual-time round engine
-------------------------
Scenario rounds execute as a discrete-event simulation over one persistent
virtual clock (:mod:`repro.federated.events`): each dispatched client's
update arrives at ``dispatch_time + latency``, the server consumes arrivals
*in time order*, and the three round-closure schemes are three flush
policies over the same event stream — sync waits for every dispatched
client, a deadline closes the round at ``T`` while anyone is outstanding,
and buffered-async closes on the K-th buffered arrival.  Round durations,
arrival timestamps, idle fractions, and throughput are therefore *measured*
on the event stream rather than inferred from bookkeeping, and in-flight
async updates genuinely stay in transit (their arrival events survive the
round boundary and pop whenever the clock reaches them).

With no scenario configured the round loop takes exactly the legacy barrier
code path (bit-identical, regression-tested), and every scenario decision is
a pure function of ``(seed, client_id, round)`` with deterministic event
tie-breaking, so results remain bit-identical across ``parallelism``
settings.  Local training always runs through the flat-plane thread pool
before its arrival events are scheduled — virtual time orders the *arrivals*,
not the training computation.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from typing import TYPE_CHECKING

from ..data.federated import FederatedDataset
from ..metrics.accuracy import model_accuracy, per_client_accuracies

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..defenses.base import Defense
from ..nn import Module
from ..utils.rng import rng_from_seed, stable_seed
from .client import ClientPopulation, FederatedClient, LocalTrainingConfig
from .cohort import CohortTrainer
from .events import (
    SCHEDULER_BACKENDS,
    BufferedFlushPolicy,
    BufferFlush,
    ClientUpdateArrival,
    FlushPolicy,
    QuorumFlushPolicy,
    RoundDeadline,
    SyncFlushPolicy,
    TransmissionFailure,
    make_scheduler,
)
from .adversary import AdversaryInjector, AdversaryLedger, update_contributors
from .aggregation import AGGREGATION_RULES, AggregationPolicy
from .faults import POST_FLUSH_KINDS, FaultInjector, FaultLedger
from ..nn.serialization import schema_of
from .scenario import AlwaysAvailable, ScenarioConfig
from .server import AggregationServer
from .sharding import SHARD_BACKENDS, ShardedRoundEngine
from .update import ModelUpdate

__all__ = ["SimulationConfig", "RoundRecord", "SimulationResult", "FederatedSimulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Experiment-level knobs (paper §6.1.4 per-dataset values).

    ``parallelism`` controls how many clients train concurrently each round
    (a thread pool; the numpy/BLAS kernels release the GIL).  Every client
    derives its training RNG from ``stable_seed(seed, client_id, round)``
    independently of execution order, so results are bit-identical across
    parallelism settings — and ``parallelism=1`` takes the exact sequential
    code path.  ``None`` sizes the pool to the machine.

    ``scenario`` opts the round loop into churn/straggler/async operation
    (see :class:`~repro.federated.scenario.ScenarioConfig`); ``None`` keeps
    the paper's idealized synchronous flow, bit for bit.
    """

    rounds: int
    local: LocalTrainingConfig
    clients_per_round: int | None = None  # None = all clients every round
    seed: int = 0
    sample_weighted: bool = False
    track_per_client_accuracy: bool = True
    parallelism: int | None = 1
    #: keep every round's received updates for post-hoc analysis (Figure 9,
    #: mixing-quality extensions).  Disable for long/large runs where the
    #: per-round history would grow without bound.
    retain_received_updates: bool = True
    #: churn / straggler / async operating regime; ``None`` = paper flow.
    scenario: ScenarioConfig | None = None
    #: server aggregation rule — a name from
    #: :data:`~repro.federated.aggregation.AGGREGATION_RULES` or a full
    #: :class:`~repro.federated.aggregation.AggregationPolicy`.  ``"mean"``
    #: (the default) takes the classical FedAvg path, bit for bit.
    aggregation: "str | AggregationPolicy" = "mean"
    #: virtual-clock backend — ``"calendar"`` (bucketed calendar/ladder
    #: queue, O(1) amortized pop at any backlog) or ``"heap"`` (the binary
    #: heap reference).  Both pop bit-identical event traces; the knob exists
    #: so regressions can be bisected against the reference.
    scheduler: str = "calendar"
    #: leaf-shard count of the sharded data plane.  ``0`` (the default) keeps
    #: the serial in-process round path — the bit-identity reference.
    #: ``>= 1`` partitions every round's cohort into that many leaf
    #: aggregators (training + per-shard reduction + hierarchical transcript),
    #: byte-equal to the reference by the merge-order contract of
    #: :mod:`repro.federated.sharding`; a round whose cohort is smaller than
    #: ``num_shards`` raises a typed ``ShardPlanError``.
    num_shards: int = 0
    #: how leaf shards execute — ``"inline"`` (in-process, the sharded
    #: algebra without IPC) or ``"process"`` (a spawn pool over
    #: ``multiprocessing.shared_memory``; requires a picklable ``model_fn``
    #: such as :class:`~repro.experiments.models.ModelFactory`).
    shard_backend: str = "inline"
    #: train each round's cohort as one stacked ``(M, ...)`` batched
    #: forward/backward (see :mod:`repro.federated.cohort`) instead of one
    #: client at a time.  ``False`` (the default) keeps the serial reference.
    #: Per-client results are bit-identical to serial for Linear/elementwise
    #: architectures and within 1e-6 relative tolerance for conv/locally
    #: connected ones; composes with ``num_shards`` (each shard trains its
    #: slice as one stacked pass).
    cohort_batching: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.scheduler not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown scheduler backend {self.scheduler!r}; choose from "
                f"{SCHEDULER_BACKENDS}"
            )
        if isinstance(self.aggregation, str) and self.aggregation not in AGGREGATION_RULES:
            raise ValueError(
                f"unknown aggregation rule {self.aggregation!r}; choose one of "
                f"{AGGREGATION_RULES} or pass an AggregationPolicy"
            )
        if self.clients_per_round is not None and self.clients_per_round < 1:
            raise ValueError(
                f"clients_per_round must be >= 1 (or None for the full cohort), "
                f"got {self.clients_per_round} — a round with no selected clients "
                "can never produce updates to aggregate"
            )
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1 (or None for auto), got {self.parallelism}")
        if self.num_shards < 0:
            raise ValueError(
                f"num_shards must be >= 0 (0 = the serial reference), got {self.num_shards}"
            )
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.shard_backend!r}; choose from {SHARD_BACKENDS}"
            )

    def aggregation_policy(self) -> "AggregationPolicy | None":
        """The server policy this config selects (``None`` = classical mean)."""
        if isinstance(self.aggregation, AggregationPolicy):
            return self.aggregation
        if self.aggregation == "mean":
            return None
        return AggregationPolicy(rule=self.aggregation)


@dataclass
class RoundRecord:
    """Metrics captured at the end of one learning round.

    The ``num_*`` counters and ``simulated_duration`` describe the scenario
    engine's view of the round (selection → churn → deadline → buffer); under
    the legacy flow they degenerate to "everyone selected arrived, nothing
    was stale, duration 0".
    """

    round_index: int
    global_accuracy: float
    per_client_accuracy: dict[int, float] = field(default_factory=dict)
    mean_local_loss: float = float("nan")
    inference_accuracy: float | None = None
    #: clients picked by the selection RNG this round
    num_selected: int = 0
    #: selected clients lost to churn (availability model said no)
    num_dropped: int = 0
    #: surviving clients that missed the sync deadline (trained in async mode)
    num_stragglers: int = 0
    #: updates the server actually merged this round (post defense)
    num_aggregated: int = 0
    #: merged updates that arrived late (staleness >= 1, async mode)
    num_stale: int = 0
    #: in-flight updates discarded for exceeding max_staleness
    num_discarded: int = 0
    #: simulated wall-clock seconds from broadcast to aggregation, measured
    #: on the event stream (flush time − round start)
    simulated_duration: float = 0.0
    #: virtual-clock timestamp at which this round's broadcast went out
    round_start: float = 0.0
    #: ``(sender_id, absolute arrival time)`` of every merged update, in the
    #: order the server consumed them (time order) — the observable event
    #: stream a timing side-channel adversary sees
    arrival_times: list[tuple[int, float]] = field(default_factory=list)
    #: true dispatch→arrival span of each merged update, aligned with
    #: ``arrival_times``.  For a stale buffered-async arrival this covers the
    #: full transit from *its* broadcast, not just the residual wait in the
    #: round that finally merged it.
    merged_latencies: list[float] = field(default_factory=list)
    #: fraction of the round during which the average merged participant sat
    #: idle after uploading (waiting for the round to close); 0 under the
    #: legacy barrier flow
    idle_fraction: float = 0.0
    #: merged updates per simulated second (0 when the round took no
    #: simulated time, i.e. no latency model was configured)
    effective_throughput: float = 0.0
    #: surviving clients killed mid-training by the fault injector
    num_crashed: int = 0
    #: payloads (arrivals + pending retries) still in transit when the round
    #: closed — they land, retried or stale, in a later round
    num_carried_forward: int = 0
    #: fault-ledger entries handled during this round
    num_faults: int = 0
    #: of those, resolved by a backoff retry (plus failover retransmissions)
    num_retries: int = 0
    #: of those, resolved by failing over to fresh infrastructure
    num_failed_over: int = 0
    #: of those, discarded after exhausting the attempt budget
    num_fault_discarded: int = 0
    #: total simulated seconds spent on recovery (backoffs, failover setup)
    recovery_seconds: float = 0.0
    #: quorum size the sync flush policy would settle for (0 = no fault plane)
    quorum_target: int = 0
    #: individual non-zero recovery delays, for percentile summaries
    recovery_latencies: list[float] = field(default_factory=list)
    #: trained updates poisoned by the adversary plane this round
    num_poisoned: int = 0
    #: poisons (injected this or an earlier round) that reached the global
    #: model at this round's merge — directly or as a chimera layer source
    num_poison_merged: int = 0
    #: poisons filtered out at this round's merge by the aggregation policy
    num_poison_filtered: int = 0
    #: replayed ciphertexts the proxy's replay guard rejected this round
    num_replays_rejected: int = 0
    #: updates the aggregation policy dropped at this round's merge
    #: (participant-level filtering: norm filter / Krum selection)
    num_filtered: int = 0


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    rounds: list[RoundRecord]
    final_state: dict
    defense_name: str
    #: raw updates per round as received by the server (Figure 9 input)
    received_updates: list[list[ModelUpdate]]
    attack: object | None = None
    #: the run's :class:`~repro.federated.faults.FaultLedger` (empty without
    #: a fault plane) — every injected fault and its resolution
    fault_ledger: FaultLedger | None = None
    #: the run's :class:`~repro.federated.adversary.AdversaryLedger` (empty
    #: without an adversary plane) — every injected attack and its resolution
    adversary_ledger: AdversaryLedger | None = None
    #: the server's hash-chained round transcript (always present)
    transcript: object | None = None
    #: the hierarchical shard transcript (``None`` unless the run sharded) —
    #: one hash chain per leaf aggregator plus a root chain over shard heads
    shard_transcript: object | None = None

    def accuracy_curve(self) -> list[float]:
        return [r.global_accuracy for r in self.rounds]

    def inference_curve(self) -> list[tuple[int, float]]:
        """Attack accuracy as explicit ``(round_index, value)`` pairs.

        Rounds without a measurement (no attack attached, or an attack that
        starts late) are omitted — carrying the round index keeps the curve
        alignable with :meth:`accuracy_curve`, which covers every round.
        Use :meth:`inference_values` for the bare value list.
        """
        return [
            (r.round_index, r.inference_accuracy)
            for r in self.rounds
            if r.inference_accuracy is not None
        ]

    def inference_values(self) -> list[float]:
        """Just the measured attack-accuracy values, in round order."""
        return [value for _, value in self.inference_curve()]

    def _round_timing(self):
        """One shared definition of the run-level wall-clock aggregates —
        delegating keeps these methods and the frontier/benchmark tables
        (which use :func:`~repro.metrics.latency.summarize_round_timing`
        directly) from ever drifting apart."""
        from ..metrics.latency import summarize_round_timing

        return summarize_round_timing(self.rounds)

    def total_simulated_seconds(self) -> float:
        """Virtual-clock span of the whole run (rounds are contiguous)."""
        return self._round_timing().total_seconds

    def effective_throughput(self) -> float:
        """Merged updates per simulated second over the whole run (0 if no
        simulated time elapsed, e.g. without a latency model)."""
        return self._round_timing().effective_throughput

    def mean_idle_fraction(self) -> float:
        """Mean per-round idle fraction over rounds that took simulated time."""
        return self._round_timing().mean_idle_fraction

    def arrival_log(self) -> list[tuple[int, int, float]]:
        """Flattened ``(round_index, sender_id, arrival_time)`` event stream.

        This is the adversary-observable timing trace consumed by
        :class:`~repro.attacks.timing.TimingSideChannel`.
        """
        return [
            (record.round_index, sender_id, arrival_time)
            for record in self.rounds
            for sender_id, arrival_time in record.arrival_times
        ]

    def per_client_accuracy_at(self, round_index: int) -> dict[int, float]:
        """Per-client accuracies at a given round (Figure 6 uses round 6)."""
        for record in self.rounds:
            if record.round_index == round_index:
                if not record.per_client_accuracy:
                    raise ValueError(f"per-client accuracy was not tracked at round {round_index}")
                return record.per_client_accuracy
        raise KeyError(f"no record for round {round_index}")


class FederatedSimulation:
    """End-to-end federated run with pluggable defense and adversary."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_fn: Callable[[np.random.Generator], Module],
        config: SimulationConfig,
        defense: "Defense | None" = None,
        attack=None,
    ) -> None:
        from ..defenses.base import NoDefense

        self.dataset = dataset
        self.model_fn = model_fn
        self.config = config
        self.defense = defense or NoDefense()
        self.attack = attack
        # Independent streams: client sampling must be identical across runs
        # that differ only in defense, so utility curves are comparable
        # point-for-point (and exactly equal for MixNN vs classical FL).
        self._selection_rng = rng_from_seed(stable_seed(config.seed, "selection"))
        self._defense_rng = rng_from_seed(stable_seed(config.seed, "defense"))
        # The simulation owns its received-update history (the server keeps
        # none by default — see AggregationServer.retain_received).
        self._received_log: list[list[ModelUpdate]] = []
        # Completed-round records live on the instance (not a run() local) so
        # checkpoint/resume can restart mid-run from the last finished round.
        self._records: list[RoundRecord] = []
        # The persistent virtual clock: arrival/deadline/flush events live
        # here across rounds, so buffered-async updates genuinely stay in
        # transit over round boundaries (their events pop when the clock
        # reaches them).  Only consulted when a scenario is configured.
        self._scheduler = make_scheduler(config.scheduler)
        # One evaluation replica per simulation: model_accuracy would
        # otherwise rebuild a scratch model from model_fn every round.
        self._eval_model: Module | None = None

        # The client plane: descriptors for everyone, FederatedClient
        # replicas only for the rounds that select them.  Eager datasets
        # retain materialized clients for the run (replica reuse, the legacy
        # behavior); lazy populations release them after each round.
        self.population = ClientPopulation.for_dataset(
            dataset, model_fn, config.local, seed=config.seed
        )
        initial_model = model_fn(rng_from_seed(config.seed))
        broadcast_hook = None
        if attack is not None and getattr(attack, "mode", None) == "active":
            broadcast_hook = attack.craft_broadcast
        scenario = config.scenario
        # Fault plane: one injector (pure hash draws, stateless) and one
        # append-only ledger per run.  Without a FaultConfig the injector is
        # None and every fault hook below is a no-op.
        faults = scenario.faults if scenario is not None else None
        self.fault_ledger = FaultLedger()
        self._fault_injector = FaultInjector(config.seed, faults) if faults is not None else None
        # Byzantine adversary plane: same shape as the fault plane — one
        # deterministic injector, one append-only ledger.  Without an
        # AdversaryConfig both are inert and every hook below is a no-op.
        adversary = scenario.adversary if scenario is not None else None
        self.adversary_ledger = AdversaryLedger()
        self._adversary_injector = (
            AdversaryInjector(config.seed, adversary) if adversary is not None else None
        )
        # Sharded data plane: one root-side engine per run, owning the shard
        # plan, the (lazy) spawn pool + shared-memory plane, and the
        # hierarchical transcript.  num_shards=0 keeps the serial reference.
        self._shard_engine: ShardedRoundEngine | None = None
        if config.num_shards >= 1:
            self._shard_engine = ShardedRoundEngine(
                population=self.population,
                schema=schema_of(initial_model.state_dict()),
                num_shards=config.num_shards,
                backend=config.shard_backend,
                seed=config.seed,
                fault_injector=self._fault_injector,
                fault_ledger=self.fault_ledger,
                dataset=dataset,
                model_fn=model_fn,
                local_config=config.local,
                capacity=config.clients_per_round or len(self.population),
                cohort_batching=config.cohort_batching,
            )
        # Cohort-batched training plane (non-sharded path): one trainer per
        # run, validating the architecture up front.  With shards the engine
        # above owns the (per-shard) trainers instead.
        self._cohort_trainer: CohortTrainer | None = None
        if config.cohort_batching and self._shard_engine is None:
            self._cohort_trainer = CohortTrainer(
                self.population, schema_of(initial_model.state_dict())
            )
        self.server = AggregationServer(
            initial_model.state_dict(),
            sample_weighted=config.sample_weighted,
            broadcast_hook=broadcast_hook,
            # Quorum rounds carry unmerged payloads forward as stale, so a
            # fault plane needs the staleness discount even in sync mode
            # (aggregation is unchanged until something stale actually lands).
            staleness_alpha=(
                scenario.staleness_alpha
                if scenario is not None and (scenario.is_async or faults is not None)
                else None
            ),
            fault_injector=self._fault_injector,
            fault_ledger=self.fault_ledger,
            policy=config.aggregation_policy(),
            num_shards=config.num_shards,
        )
        if self._fault_injector is not None:
            self.defense.attach_fault_plane(self._fault_injector, self.fault_ledger)
        if self._adversary_injector is not None:
            self.defense.attach_adversary_plane(self._adversary_injector, self.adversary_ledger)
        if attack is not None:
            if getattr(attack, "truth", None) is None:
                attack.truth = {c.client_id: c.attribute for c in dataset.clients()}
            self.server.add_observer(attack)

    @property
    def clients(self) -> list[FederatedClient]:
        """Every participant, materialized.

        Compatibility surface for eager-era callers; at population scale use
        :attr:`population` instead — materializing a million replicas is
        exactly what the descriptor plane avoids.
        """
        return self.population.clients()

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def _select_client_ids(self) -> list[int]:
        """Draw this round's cohort as client ids, without materializing.

        The draw is over the population *size* — one ``rng.choice`` call and
        ``clients_per_round`` id lookups, regardless of how many clients
        exist — and consumes exactly the stream the legacy draw over
        ``self.clients`` did, so selection is bit-identical.
        """
        count = self.config.clients_per_round
        size = len(self.population)
        if count is None or count >= size:
            return self.population.client_ids(range(size))
        chosen = self._selection_rng.choice(size, size=count, replace=False)
        return self.population.client_ids(sorted(int(index) for index in chosen))

    def _train_cohort(
        self, client_ids: list[int], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Train a round's cohort, by id, through the configured data plane.

        With ``num_shards=0`` this is the serial reference (materialize +
        thread-pool training); with shards the cohort routes through the
        :class:`~repro.federated.sharding.ShardedRoundEngine`, bit-identical
        by the merge-order contract.  Callers release the cohort afterwards
        exactly as before.
        """
        if self._shard_engine is not None:
            return self._shard_engine.train_round(client_ids, broadcast_state, round_index)
        if self._cohort_trainer is not None:
            return self._cohort_trainer.train_updates(client_ids, broadcast_state, round_index)
        participants = self.population.materialize(client_ids)
        return self._train_clients(participants, broadcast_state, round_index)

    def _train_clients(
        self, participants: list[FederatedClient], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Run local training for all selected clients, possibly in parallel.

        The update list is always in ``participants`` order, and each client's
        RNG is derived from its id and the round alone, so the result does not
        depend on the parallelism setting.
        """
        workers = self.config.parallelism
        if workers is None:
            workers = min(len(participants), os.cpu_count() or 1)
        if workers <= 1 or len(participants) <= 1:
            return [client.local_update(broadcast_state, round_index) for client in participants]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda c: c.local_update(broadcast_state, round_index), participants)
            )

    @staticmethod
    def _mean_local_loss(updates: list[ModelUpdate]) -> float:
        """Mean of the reported final losses, NaN-safe.

        Defense-only or instrumentation runs may produce updates without a
        ``final_loss`` (or with a NaN one); those are excluded rather than
        poisoning the mean or emitting a RuntimeWarning on an empty slice.
        """
        losses = [
            loss
            for u in updates
            if (loss := u.metadata.get("final_loss")) is not None and np.isfinite(loss)
        ]
        if not losses:
            return float("nan")
        return float(np.mean(losses))

    @property
    def _evaluation_model(self) -> Module:
        """Cached scratch replica for accuracy evaluation (built once)."""
        if self._eval_model is None:
            self._eval_model = self.model_fn(rng_from_seed(0))
        return self._eval_model

    # ------------------------------------------------------------------
    # Scenario engine (virtual-time, event-driven)
    # ------------------------------------------------------------------
    def _schedule_transmission(
        self, update: ModelUpdate, dispatch_time: float, origin_round: int, attempt: int
    ) -> None:
        """Schedule one transmission attempt, drawing its transport faults.

        Attempt 0 of a fault-free draw produces an arrival event with exactly
        the fields the non-faulted dispatch path would — bit-identical event
        stream.  A retry (``attempt >= 1``) redraws its transit latency; its
        arrival's ``latency`` spans the *full* dispatch→arrival interval
        including every backoff, so merged-latency metrics tell the truth.
        """
        injector = self._fault_injector
        faults = self.config.scenario.faults
        client_id = update.sender_id
        base = update.metadata.get("latency", 0.0)
        transit = (
            base
            if attempt == 0
            else injector.retry_latency(base, client_id, origin_round, attempt)
        )
        origin_dispatch = update.metadata.get("dispatch_time", dispatch_time)
        if faults.hop_timeout is not None and transit > faults.hop_timeout:
            # The per-hop ack timer expires before the frame lands: the
            # sender learns at dispatch + timeout, not after the full transit.
            self._scheduler.schedule(
                TransmissionFailure(
                    time=dispatch_time + faults.hop_timeout,
                    client_id=client_id,
                    origin_round=origin_round,
                    dispatch_time=dispatch_time,
                    latency=transit,
                    attempt=attempt,
                    kind="timeout",
                    update=update,
                )
            )
            return
        if injector.frame_fault(client_id, origin_round, attempt):
            # Corruption is detected by the receiver at the would-be arrival
            # instant (RW01 framing surfaces it as a typed error, never a
            # silent mis-parse) and NACKed back.
            self._scheduler.schedule(
                TransmissionFailure(
                    time=dispatch_time + transit,
                    client_id=client_id,
                    origin_round=origin_round,
                    dispatch_time=dispatch_time,
                    latency=transit,
                    attempt=attempt,
                    kind="frame",
                    update=update,
                )
            )
            return
        arrival_time = dispatch_time + transit
        self._scheduler.schedule(
            ClientUpdateArrival(
                time=arrival_time,
                client_id=client_id,
                origin_round=origin_round,
                dispatch_time=origin_dispatch,
                latency=arrival_time - origin_dispatch,
                update=update,
            )
        )

    def _replay_until_flush(
        self, round_index: int, policy: FlushPolicy, expected: int
    ) -> tuple[list[ClientUpdateArrival], float, int, int]:
        """Consume events in time order until the round's flush fires.

        Returns ``(merged, flush_time, discarded, lost)``: the arrival events
        the server buffered (in consumption = time order), the virtual-clock
        timestamp at which the round closed, how many arrivals were discarded
        for exceeding ``max_staleness``, and how many payloads were lost to
        transport faults after exhausting their attempt budget.  ``expected``
        is the number of payload events that can still resolve this round
        (this round's dispatches plus the in-flight backlog).
        """
        scenario = self.config.scenario
        scheduler = self._scheduler
        ledger = self.fault_ledger
        merged: list[ClientUpdateArrival] = []
        discarded = 0
        lost = 0
        deadline_lapsed = False
        while True:
            if len(scheduler) == 0:
                # Nothing else can ever arrive: close at the current clock
                # (buffered-async with fewer than K reachable arrivals).
                return merged, scheduler.now, discarded, lost
            event = scheduler.pop()
            if isinstance(event, ClientUpdateArrival):
                staleness = round_index - event.origin_round
                if scenario.max_staleness is not None and staleness > scenario.max_staleness:
                    discarded += 1
                else:
                    merged.append(event)
                outstanding = expected - len(merged) - discarded - lost
                if merged and (
                    deadline_lapsed or policy.should_flush(len(merged), outstanding)
                ):
                    # Close *at this instant*: the flush outranks same-time
                    # arrivals still in the heap, so exactly this buffer is
                    # merged (FedBuff's "first K", sync's "all dispatched").
                    scheduler.schedule(BufferFlush(time=event.time, round_index=round_index))
            elif isinstance(event, TransmissionFailure):
                faults = scenario.faults
                if event.attempt + 1 >= faults.max_attempts:
                    # Attempt budget exhausted: the payload is gone.  The
                    # flush condition must be re-checked — one fewer payload
                    # can ever arrive, which may make the round closeable.
                    ledger.record(
                        event.kind, event.client_id, round_index, event.attempt, "discarded"
                    )
                    lost += 1
                    outstanding = expected - len(merged) - discarded - lost
                    if merged and (
                        deadline_lapsed or policy.should_flush(len(merged), outstanding)
                    ):
                        scheduler.schedule(BufferFlush(time=event.time, round_index=round_index))
                else:
                    delay = self._fault_injector.backoff(
                        event.kind, event.client_id, event.origin_round, event.attempt
                    )
                    ledger.record(
                        event.kind,
                        event.client_id,
                        round_index,
                        event.attempt,
                        "retried",
                        delay_seconds=delay,
                    )
                    self._schedule_transmission(
                        event.update, event.time + delay, event.origin_round, event.attempt + 1
                    )
            elif isinstance(event, BufferFlush):
                if event.round_index == round_index:
                    return merged, event.time, discarded, lost
            elif isinstance(event, RoundDeadline):
                if event.round_index == round_index:
                    if merged:
                        return merged, event.time, discarded, lost
                    # The timer fired before anything arrived, but updates may
                    # still be in transit — a server cannot aggregate nothing,
                    # so the round stays open and closes at the very next
                    # merged arrival instead (buffered-async corner; a sync
                    # round always has at least one sub-deadline arriver).
                    deadline_lapsed = True
                # A deadline from an earlier round that closed before its
                # timer fired: inert, skip it.

    def _scenario_round(
        self, broadcast_state: dict, round_index: int
    ) -> tuple[list[ModelUpdate], list[ModelUpdate], RoundRecord]:
        """One churn/straggler/async round on the virtual clock.

        Returns ``(arrivals, trained, stats)``: the updates the server will
        see this round (what the defense processes), the updates trained this
        round (for the local-loss metric), and a partially filled
        :class:`RoundRecord` carrying the scenario counters and the measured
        wall-clock fields.
        """
        scenario = self.config.scenario
        seed = self.config.seed
        scheduler = self._scheduler
        round_start = scheduler.now
        # The whole selection → churn → crash → straggler funnel runs on
        # client *ids*: every draw is a pure (seed, client_id, round) hash,
        # so nothing needs materializing until we know who actually trains.
        selected_ids = self._select_client_ids()
        availability = scenario.availability or AlwaysAvailable()
        surviving_ids = availability.filter_available(seed, selected_ids, round_index)
        num_dropped = len(selected_ids) - len(surviving_ids)
        injector = self._fault_injector
        num_crashed = 0
        if injector is not None and scenario.faults.client_crash_rate > 0:
            # Mid-training crashes: the device died after dispatch, so its
            # work (and its update) is simply gone this round — a discarded
            # fault, not churn (the server selected and broadcast to it).
            crashed_ids = injector.crashed_clients(surviving_ids, round_index)
            if crashed_ids:
                crashed_set = set(crashed_ids)
                surviving_ids = [cid for cid in surviving_ids if cid not in crashed_set]
                for client_id in crashed_ids:
                    self.fault_ledger.record(
                        "client-crash", client_id, round_index, 0, "discarded"
                    )
                num_crashed = len(crashed_ids)
        latencies: dict[int, float] = {}
        if scenario.latency is not None:
            latencies = {
                client_id: scenario.latency.latency(seed, client_id, round_index)
                for client_id in surviving_ids
            }
        stats = RoundRecord(
            round_index=round_index,
            global_accuracy=float("nan"),
            num_selected=len(selected_ids),
            num_dropped=num_dropped,
            num_crashed=num_crashed,
            round_start=round_start,
        )

        if not scenario.is_async:
            # Sync-mode stragglers can never be merged (the round closes at
            # the deadline without them), so their training is skipped
            # entirely — dropped work, exactly as under the legacy loop (and
            # at population scale they are never even materialized).
            if scenario.deadline is not None:
                arriver_ids = [
                    cid for cid in surviving_ids if latencies[cid] <= scenario.deadline
                ]
            else:
                arriver_ids = surviving_ids
            stats.num_stragglers = len(surviving_ids) - len(arriver_ids)
            if not arriver_ids:
                deadline_part = (
                    f", {stats.num_stragglers} missed the {scenario.deadline}s deadline"
                    if scenario.deadline is not None
                    else ""
                )
                crash_part = f", {num_crashed} crashed mid-training" if num_crashed else ""
                raise RuntimeError(
                    f"round {round_index}: no client survived the scenario — "
                    f"{len(selected_ids)} selected, {stats.num_dropped} dropped out"
                    f"{crash_part}{deadline_part}; lower the dropout probability, "
                    "extend the deadline, or select more clients per round"
                )
            to_train_ids = arriver_ids
            # The server knows dispatch failures (churn) immediately but not
            # who will straggle: while stragglers are outstanding the
            # all-arrived condition is unreachable and only the deadline
            # timer closes the round.
            if injector is not None:
                # Graceful degradation: with a fault plane the server settles
                # for a quorum of the post-crash cohort instead of waiting
                # out a faulty tail.  quorum_fraction=1.0 only fires at the
                # same instant all-arrived would — the fault-free semantics.
                policy: FlushPolicy = QuorumFlushPolicy(
                    quorum_count=scenario.faults.quorum_count(len(surviving_ids)),
                    expected_absent=stats.num_stragglers,
                )
                stats.quorum_target = policy.quorum_count
            else:
                policy = SyncFlushPolicy(expected_absent=stats.num_stragglers)
        else:
            to_train_ids = surviving_ids
            policy = BufferedFlushPolicy(
                buffer_size=scenario.effective_buffer_size(len(to_train_ids))
            )

        # Only the post-funnel cohort is ever materialized: replica + shard
        # construction is deferred to the data plane, and for a lazy
        # population it is released again once the round's updates are merged.
        # Training runs *before* replaying virtual time: each update is a pure
        # function of (client, round), so the event engine only decides when
        # results arrive, never what they are.
        trained = self._train_cohort(to_train_ids, broadcast_state, round_index)
        if self._adversary_injector is not None:
            # Poison after training, before transport: a Byzantine participant
            # trains honestly enough to know the benign distribution (ALIE),
            # then reports poison.  In-place on the flat plane, keyed purely by
            # (seed, client, round) — order- and parallelism-independent.
            attacked = self._adversary_injector.poison_round(
                trained, broadcast_state, round_index, self.adversary_ledger
            )
            stats.num_poisoned = len(attacked)
        if injector is not None:
            # Payloads pending a retry count toward the backlog too: their
            # arrival (or final discard) still resolves in some round.
            in_flight = scheduler.in_flight_count()
        else:
            in_flight = scheduler.pending_arrival_count() if scenario.is_async else 0
        for update in trained:
            latency = latencies.get(update.sender_id, 0.0)
            update.metadata["latency"] = latency
            update.metadata["origin_round"] = round_index
            update.metadata["dispatch_time"] = round_start
            if injector is not None:
                self._schedule_transmission(update, round_start, round_index, 0)
            else:
                scheduler.schedule(
                    ClientUpdateArrival(
                        time=round_start + latency,
                        client_id=update.sender_id,
                        origin_round=round_index,
                        dispatch_time=round_start,
                        latency=latency,
                        update=update,
                    )
                )
        if scenario.deadline is not None:
            scheduler.schedule(
                RoundDeadline(time=round_start + scenario.deadline, round_index=round_index)
            )

        merged, flush_time, discarded, lost = self._replay_until_flush(
            round_index, policy, expected=len(trained) + in_flight
        )
        # The cohort's updates are merged (or in transit as events): a lazy
        # population drops the replicas and shards here, so peak memory
        # tracks the materialized cohort, never the population.
        self.population.release(to_train_ids)
        stats.num_discarded = discarded
        if injector is not None:
            stats.num_carried_forward = scheduler.in_flight_count()
        if scenario.is_async:
            # This round's dispatches still in transit when the buffer
            # flushed (they stay scheduled and land in a later round).
            stats.num_stragglers = sum(
                1 for e in scheduler.pending_arrivals() if e.origin_round == round_index
            )
        if not merged:
            raise RuntimeError(
                f"round {round_index}: the async buffer received no arrivals — "
                f"{len(selected_ids)} selected, {stats.num_dropped} dropped out, "
                f"{scheduler.pending_arrival_count()} still in transit, {discarded} "
                "discarded as too stale, and nothing was left in flight; lower the "
                "dropout probability or select more clients per round"
            )

        arrivals: list[ModelUpdate] = []
        for event in merged:
            update = event.update
            staleness = round_index - event.origin_round
            update.metadata["staleness"] = staleness
            update.metadata["arrival_time"] = event.time
            if staleness > 0:
                stats.num_stale += 1
            arrivals.append(update)
        duration = flush_time - round_start
        stats.simulated_duration = duration
        stats.arrival_times = [(e.client_id, e.time) for e in merged]
        stats.merged_latencies = [e.latency for e in merged]
        if duration > 0.0:
            waits = [flush_time - e.time for e in merged]
            stats.idle_fraction = float(np.mean(waits)) / duration
            # effective_throughput is filled in run_round once num_aggregated
            # (post-defense) is known, so the per-round and run-level numbers
            # count the same thing even under streaming defenses.
        return arrivals, trained, stats

    def run_round(self) -> RoundRecord:
        """One iteration of the Figure 2 / Figure 3 flow."""
        round_index = self.server.round_index
        # Marks into the fault ledger: everything recorded past here was
        # handled during this round and lands on this round's record.
        ledger_mark = len(self.fault_ledger.entries)
        retransmission_mark = self.fault_ledger.retransmissions
        adversary_mark = len(self.adversary_ledger.entries)
        broadcast_state = self.server.broadcast()

        if self.config.scenario is None:
            selected_ids = self._select_client_ids()
            updates = self._train_cohort(selected_ids, broadcast_state, round_index)
            self.population.release(selected_ids)
            trained = updates
            record = RoundRecord(
                round_index=round_index,
                global_accuracy=float("nan"),
                num_selected=len(selected_ids),
            )
        else:
            updates, trained, record = self._scenario_round(broadcast_state, round_index)
        mean_loss = self._mean_local_loss(trained)

        received = self.defense.process_round(
            updates, self._defense_rng, broadcast_state=broadcast_state
        )
        new_state = self.server.receive_and_aggregate(received)
        if self.config.retain_received_updates:
            self._received_log.append(received)

        record.num_aggregated = len(received)
        report = self.server.last_aggregation_report
        if report is not None:
            record.num_filtered = len(report.dropped)
        if self._adversary_injector is not None and report is not None:
            # Resolve pending poison by who actually contributed to the merge:
            # kept slots' contributors (incl. chimera layer sources) carried
            # the poison into the model; dropped-only contributors were
            # filtered.  Kept wins when a source appears on both sides.
            kept_ids: set[int] = set()
            for i in report.kept:
                kept_ids |= update_contributors(received[i])
            dropped_ids: set[int] = set()
            for i in report.dropped:
                dropped_ids |= update_contributors(received[i])
            self.adversary_ledger.resolve_contributors(kept_ids, dropped_ids - kept_ids)
        adversary_entries = self.adversary_ledger.entries[adversary_mark:]
        if adversary_entries:
            record.num_poison_merged = sum(
                1 for e in adversary_entries if e.resolution == "merged"
            )
            record.num_poison_filtered = sum(
                1 for e in adversary_entries if e.resolution == "filtered"
            )
            record.num_replays_rejected = sum(
                1 for e in adversary_entries if e.kind == "replay"
            )
        new_entries = self.fault_ledger.entries[ledger_mark:]
        if new_entries:
            # Recovery delays of post-flush kinds (enclave retries, proxy
            # failover, attestation, merge retries) happen after the round's
            # flush fired: the virtual clock and the round duration absorb
            # them here.  Transport-kind delays are already embodied in the
            # shifted arrival times the replay measured.
            post_flush = sum(
                e.delay_seconds for e in new_entries if e.kind in POST_FLUSH_KINDS
            )
            if post_flush > 0.0:
                self._scheduler.advance(post_flush)
                record.simulated_duration += post_flush
            record.num_faults = len(new_entries)
            record.num_retries = sum(1 for e in new_entries if e.resolution == "retried") + (
                self.fault_ledger.retransmissions - retransmission_mark
            )
            record.num_failed_over = sum(
                1 for e in new_entries if e.resolution == "failed-over"
            )
            record.num_fault_discarded = sum(
                1 for e in new_entries if e.resolution == "discarded"
            )
            record.recovery_seconds = sum(e.delay_seconds for e in new_entries)
            record.recovery_latencies = [
                e.delay_seconds for e in new_entries if e.delay_seconds > 0.0
            ]
        if record.simulated_duration > 0.0:
            record.effective_throughput = record.num_aggregated / record.simulated_duration
        record.mean_local_loss = mean_loss
        record.global_accuracy = model_accuracy(
            new_state, self.dataset.global_test(), self.model_fn, model=self._evaluation_model
        )
        if self.config.track_per_client_accuracy:
            record.per_client_accuracy = per_client_accuracies(
                new_state, self.dataset.clients(), self.model_fn, model=self._evaluation_model
            )
        if self.attack is not None:
            record.inference_accuracy = self.attack.accuracy_curve()[-1]
        return record

    def run(self) -> SimulationResult:
        """Run all remaining rounds and collect the result bundle.

        Resume-aware: after :meth:`restore_checkpoint` only the rounds not
        yet in the record list execute, so a killed run restarted from its
        last checkpoint produces bit-identical records and final weights.
        """
        try:
            while len(self._records) < self.config.rounds:
                self._records.append(self.run_round())
        finally:
            # The spawn pool and its /dev/shm segments must not outlive the
            # run, however it ends; the engine respawns lazily if reused.
            self.close()
        if self._adversary_injector is not None:
            # Poison still in flight when the run ends never reached the
            # model: sweep it as filtered so the ledger always balances.
            self.adversary_ledger.resolve_stranded("filtered")
        return SimulationResult(
            rounds=list(self._records),
            final_state=self.server.global_state,
            defense_name=self.defense.name,
            received_updates=self._received_log,
            attack=self.attack,
            fault_ledger=self.fault_ledger,
            adversary_ledger=self.adversary_ledger,
            transcript=self.server.transcript,
            shard_transcript=(
                self._shard_engine.transcript if self._shard_engine is not None else None
            ),
        )

    def close(self) -> None:
        """Release the sharded data plane's pool and shared segments, if any."""
        if self._shard_engine is not None:
            self._shard_engine.close()

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self) -> bytes:
        """Serialize everything needed to resume after the last finished round.

        Clients are *not* serialized: their training RNG is a pure function
        of ``(seed, client_id, round)``, so they are stateless across rounds.
        What does carry state — the RNG streams, the virtual clock with its
        in-flight events, the defense (a MixNN proxy may hold enclave keys
        and mixing RNG state), the fault ledger, and the server's aggregate —
        is pickled.  Attacks hold arbitrary observer state and are not
        supported.
        """
        if self.attack is not None:
            raise RuntimeError(
                "checkpoint/resume does not support an attached attack — "
                "attacks hold arbitrary observer state outside the simulation"
            )
        state = {
            "version": 1,
            "seed": self.config.seed,
            "records": self._records,
            "server_round_index": self.server.round_index,
            "global_state": {k: v.copy() for k, v in self.server.global_state.items()},
            "selection_rng": self._selection_rng.bit_generator.state,
            "defense_rng": self._defense_rng.bit_generator.state,
            "scheduler": self._scheduler,
            "received_log": self._received_log,
            "defense": self.defense,
            "ledger": self.fault_ledger,
            "adversary_ledger": self.adversary_ledger,
            "transcript": self.server.transcript,
        }
        if self._shard_engine is not None:
            # The pool and shared plane are never pickled (rebuilt lazily);
            # what persists is the plan, the in-flight shard set, and the
            # hierarchical transcript.
            state["shard_state"] = self._shard_engine.checkpoint_state()
        return pickle.dumps(state)

    def restore_checkpoint(self, blob: bytes) -> None:
        """Restore state captured by :meth:`checkpoint` (same config + seed)."""
        if self.attack is not None:
            raise RuntimeError(
                "checkpoint/resume does not support an attached attack — "
                "attacks hold arbitrary observer state outside the simulation"
            )
        state = pickle.loads(blob)
        if state.get("version") != 1:
            raise ValueError(f"unsupported checkpoint version {state.get('version')!r}")
        if state.get("seed") != self.config.seed:
            raise ValueError(
                f"checkpoint was taken with seed {state.get('seed')}, this simulation "
                f"is configured with seed {self.config.seed} — resuming would not be "
                "bit-identical"
            )
        self._records = list(state["records"])
        self.server.round_index = state["server_round_index"]
        self.server.global_state = state["global_state"]
        self._selection_rng.bit_generator.state = state["selection_rng"]
        self._defense_rng.bit_generator.state = state["defense_rng"]
        self._scheduler = state["scheduler"]
        self._received_log = list(state["received_log"])
        self.defense = state["defense"]
        self.fault_ledger = state["ledger"]
        self.adversary_ledger = state.get("adversary_ledger") or AdversaryLedger()
        transcript = state.get("transcript")
        if transcript is not None:
            self.server.transcript = transcript
        shard_state = state.get("shard_state")
        if self._shard_engine is not None and shard_state is not None:
            self._shard_engine.restore_checkpoint_state(shard_state)
        # Re-wire the live fault plane: the unpickled defense carries copies
        # of the hooks; point everything back at this simulation's objects.
        self.server._fault_ledger = self.fault_ledger
        if self._fault_injector is not None:
            self.server._fault_injector = self._fault_injector
            self.defense.attach_fault_plane(self._fault_injector, self.fault_ledger)
        if self._adversary_injector is not None:
            self.defense.attach_adversary_plane(self._adversary_injector, self.adversary_ledger)

    def save_checkpoint(self, path) -> None:
        """Write :meth:`checkpoint` bytes to ``path``."""
        with open(path, "wb") as handle:
            handle.write(self.checkpoint())

    def load_checkpoint(self, path) -> None:
        """Restore from a file written by :meth:`save_checkpoint`."""
        with open(path, "rb") as handle:
            self.restore_checkpoint(handle.read())
