"""Round orchestration: the full federated pipeline of Figures 2 and 3.

:class:`FederatedSimulation` wires together a dataset simulator, the client
fleet, an optional defense (noisy gradient or the MixNN proxy), an optional
∇Sim adversary on the server, and the aggregation server itself, then runs
the configured number of learning rounds while recording the metrics the
paper's figures are built from:

* per-round global-model accuracy (Figure 5),
* per-client accuracy at each round (Figure 6),
* cumulative inference accuracy of the attack (Figures 7–8),
* received raw updates for the §6.4 neighbor analysis (Figure 9).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from typing import TYPE_CHECKING

from ..data.federated import FederatedDataset
from ..metrics.accuracy import model_accuracy, per_client_accuracies

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..defenses.base import Defense
from ..nn import Module
from ..utils.rng import rng_from_seed, stable_seed
from .client import FederatedClient, LocalTrainingConfig
from .server import AggregationServer
from .update import ModelUpdate

__all__ = ["SimulationConfig", "RoundRecord", "SimulationResult", "FederatedSimulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Experiment-level knobs (paper §6.1.4 per-dataset values).

    ``parallelism`` controls how many clients train concurrently each round
    (a thread pool; the numpy/BLAS kernels release the GIL).  Every client
    derives its training RNG from ``stable_seed(seed, client_id, round)``
    independently of execution order, so results are bit-identical across
    parallelism settings — and ``parallelism=1`` takes the exact sequential
    code path.  ``None`` sizes the pool to the machine.
    """

    rounds: int
    local: LocalTrainingConfig
    clients_per_round: int | None = None  # None = all clients every round
    seed: int = 0
    sample_weighted: bool = False
    track_per_client_accuracy: bool = True
    parallelism: int | None = 1
    #: keep every round's received updates for post-hoc analysis (Figure 9,
    #: mixing-quality extensions).  Disable for long/large runs where the
    #: per-round history would grow without bound.
    retain_received_updates: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1 (or None for auto), got {self.parallelism}")


@dataclass
class RoundRecord:
    """Metrics captured at the end of one learning round."""

    round_index: int
    global_accuracy: float
    per_client_accuracy: dict[int, float] = field(default_factory=dict)
    mean_local_loss: float = float("nan")
    inference_accuracy: float | None = None


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    rounds: list[RoundRecord]
    final_state: dict
    defense_name: str
    #: raw updates per round as received by the server (Figure 9 input)
    received_updates: list[list[ModelUpdate]]
    attack: object | None = None

    def accuracy_curve(self) -> list[float]:
        return [r.global_accuracy for r in self.rounds]

    def inference_curve(self) -> list[float]:
        return [r.inference_accuracy for r in self.rounds if r.inference_accuracy is not None]

    def per_client_accuracy_at(self, round_index: int) -> dict[int, float]:
        """Per-client accuracies at a given round (Figure 6 uses round 6)."""
        for record in self.rounds:
            if record.round_index == round_index:
                if not record.per_client_accuracy:
                    raise ValueError(f"per-client accuracy was not tracked at round {round_index}")
                return record.per_client_accuracy
        raise KeyError(f"no record for round {round_index}")


class FederatedSimulation:
    """End-to-end federated run with pluggable defense and adversary."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_fn: Callable[[np.random.Generator], Module],
        config: SimulationConfig,
        defense: "Defense | None" = None,
        attack=None,
    ) -> None:
        from ..defenses.base import NoDefense

        self.dataset = dataset
        self.model_fn = model_fn
        self.config = config
        self.defense = defense or NoDefense()
        self.attack = attack
        # Independent streams: client sampling must be identical across runs
        # that differ only in defense, so utility curves are comparable
        # point-for-point (and exactly equal for MixNN vs classical FL).
        self._selection_rng = rng_from_seed(stable_seed(config.seed, "selection"))
        self._defense_rng = rng_from_seed(stable_seed(config.seed, "defense"))
        # The simulation owns its received-update history (the server keeps
        # none by default — see AggregationServer.retain_received).
        self._received_log: list[list[ModelUpdate]] = []

        self.clients = [
            FederatedClient(data, model_fn, config.local, seed=config.seed)
            for data in dataset.clients()
        ]
        initial_model = model_fn(rng_from_seed(config.seed))
        broadcast_hook = None
        if attack is not None and getattr(attack, "mode", None) == "active":
            broadcast_hook = attack.craft_broadcast
        self.server = AggregationServer(
            initial_model.state_dict(),
            sample_weighted=config.sample_weighted,
            broadcast_hook=broadcast_hook,
        )
        if attack is not None:
            if getattr(attack, "truth", None) is None:
                attack.truth = {c.client_id: c.attribute for c in dataset.clients()}
            self.server.add_observer(attack)

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def _select_clients(self) -> list[FederatedClient]:
        count = self.config.clients_per_round
        if count is None or count >= len(self.clients):
            return self.clients
        chosen = self._selection_rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in sorted(chosen)]

    def _train_clients(
        self, participants: list[FederatedClient], broadcast_state: dict, round_index: int
    ) -> list[ModelUpdate]:
        """Run local training for all selected clients, possibly in parallel.

        The update list is always in ``participants`` order, and each client's
        RNG is derived from its id and the round alone, so the result does not
        depend on the parallelism setting.
        """
        workers = self.config.parallelism
        if workers is None:
            workers = min(len(participants), os.cpu_count() or 1)
        if workers <= 1 or len(participants) <= 1:
            return [client.local_update(broadcast_state, round_index) for client in participants]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda c: c.local_update(broadcast_state, round_index), participants)
            )

    @staticmethod
    def _mean_local_loss(updates: list[ModelUpdate]) -> float:
        """Mean of the reported final losses, NaN-safe.

        Defense-only or instrumentation runs may produce updates without a
        ``final_loss`` (or with a NaN one); those are excluded rather than
        poisoning the mean or emitting a RuntimeWarning on an empty slice.
        """
        losses = [
            loss
            for u in updates
            if (loss := u.metadata.get("final_loss")) is not None and np.isfinite(loss)
        ]
        if not losses:
            return float("nan")
        return float(np.mean(losses))

    def run_round(self) -> RoundRecord:
        """One iteration of the Figure 2 / Figure 3 flow."""
        round_index = self.server.round_index
        broadcast_state = self.server.broadcast()

        participants = self._select_clients()
        updates = self._train_clients(participants, broadcast_state, round_index)
        mean_loss = self._mean_local_loss(updates)

        received = self.defense.process_round(
            updates, self._defense_rng, broadcast_state=broadcast_state
        )
        new_state = self.server.receive_and_aggregate(received)
        if self.config.retain_received_updates:
            self._received_log.append(received)

        record = RoundRecord(
            round_index=round_index,
            global_accuracy=model_accuracy(new_state, self.dataset.global_test(), self.model_fn),
            mean_local_loss=mean_loss,
        )
        if self.config.track_per_client_accuracy:
            record.per_client_accuracy = per_client_accuracies(
                new_state, self.dataset.clients(), self.model_fn
            )
        if self.attack is not None:
            record.inference_accuracy = self.attack.accuracy_curve()[-1]
        return record

    def run(self) -> SimulationResult:
        """Run all configured rounds and collect the result bundle."""
        records = [self.run_round() for _ in range(self.config.rounds)]
        return SimulationResult(
            rounds=records,
            final_state=self.server.global_state,
            defense_name=self.defense.name,
            received_updates=self._received_log,
            attack=self.attack,
        )
