"""The flat parameter plane: contiguous-buffer update algebra.

One narrow, shared data plane for every round-critical subsystem: a model
state is one contiguous float32 vector under a
:class:`~repro.nn.serialization.StateSchema`, and a round's ``N`` updates are
one ``(N, D)`` matrix.  Aggregation is a single reduction over that matrix,
robust rules are one ``np.median``/``np.sort``, deltas are one subtract,
MixNN layer mixing is a per-unit column gather, and ∇Sim-style attacks score
all participants against all classes with one matmul — instead of each layer
looping over per-parameter ``OrderedDict``\\ s and re-copying every array per
client.

The dict-of-arrays API stays available everywhere as zero-copy views into the
flat buffers (``schema.views``); the per-parameter implementations are
retained as ``*_reference`` next to each flat path and cross-checked
bit-for-bit by ``tests/federated/test_flat.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.serialization import StateSchema, schema_of
from .update import ModelUpdate

__all__ = ["FlatState", "FlatUpdateBatch", "unit_columns", "row_norms", "flat_mean", "flat_rows"]


def flat_rows(updates: list[ModelUpdate], schema: StateSchema) -> list[np.ndarray]:
    """Each update's flat buffer, materializing (and validating) as needed."""
    rows: list[np.ndarray] = []
    for update in updates:
        if update.flat_vector is None:
            if tuple(update.state.keys()) != schema.names:
                raise KeyError("all updates must share the same parameter schema")
            if not schema.matches(update.state):
                raise ValueError("all updates must share the same parameter shapes")
            rows.append(update.ensure_flat())
        else:
            if tuple(update.state.keys()) != schema.names:
                raise KeyError("all updates must share the same parameter schema")
            if update.flat_vector.size != schema.total_size:
                raise ValueError("all updates must share the same parameter shapes")
            rows.append(update.flat_vector)
    return rows


def flat_mean(
    rows: list[np.ndarray], schema: StateSchema, weights: list[float] | None = None
) -> np.ndarray:
    """Weighted mean of flat rows without materializing the ``(N, D)`` matrix.

    Accumulates row by row — the same reduction order as the matrix
    ``sum(axis=0)`` (strided-sequential per column), with size-1 parameter
    spans re-reduced contiguously — so the result stays bit-identical to the
    per-parameter reference while touching each row once and allocating only
    the output vector.
    """
    count = len(rows)
    if weights is None:
        total = float(count)
        out = rows[0].astype(np.float32, copy=True)
        for row in rows[1:]:
            out += row
    else:
        total = float(sum(weights))
        w = np.asarray(weights, dtype=np.float32)
        out = rows[0] * w[0]
        for row, weight in zip(rows[1:], w[1:]):
            out += row * weight
    if count > 1:
        for offset, size in zip(schema.offsets, schema.sizes):
            if size == 1:
                # size-1 params reduce contiguously (pairwise) in the reference
                column = np.array([row[offset] for row in rows], dtype=np.float32)
                if weights is not None:
                    column *= w
                out[offset] = column.sum()
    out /= total
    return out


def row_norms(matrix: np.ndarray, schema: StateSchema) -> np.ndarray:
    """Per-row L2 norm of a batch matrix, reduced per parameter span.

    Squares in float64 and accumulates span partial sums in schema order —
    bit-identical to the dict-based loops (``delta_norm``-style) that square
    each parameter array separately and add the partial sums sequentially.
    """
    values = matrix.astype(np.float64, copy=False)
    totals = np.zeros(matrix.shape[0], dtype=np.float64)
    for offset, size in zip(schema.offsets, schema.sizes):
        # square-then-sum keeps numpy's pairwise reduction, matching the
        # reference's per-parameter ``(diff**2).sum()`` bit for bit
        totals += np.square(values[:, offset : offset + size]).sum(axis=1)
    return np.sqrt(totals)


@dataclass
class FlatState:
    """One model state on the flat plane: a schema plus its float32 vector."""

    schema: StateSchema
    vector: np.ndarray

    @classmethod
    def from_state(cls, state: dict, schema: StateSchema | None = None) -> "FlatState":
        schema = schema or schema_of(state)
        return cls(schema=schema, vector=schema.pack(state))

    def as_dict(self):
        """Zero-copy dict-of-arrays view (shares memory with ``vector``)."""
        return self.schema.views(self.vector)

    def copy(self) -> "FlatState":
        return FlatState(schema=self.schema, vector=self.vector.copy())


def unit_columns(
    schema: StateSchema, units: list[tuple[str, ...]] | list[list[str]]
) -> list[slice | np.ndarray]:
    """Column selector per mixing unit of the ``(N, D)`` batch matrix.

    A unit whose parameters are adjacent in the schema (the overwhelmingly
    common case — a layer's weight and bias) becomes a contiguous ``slice``;
    a fragmented unit falls back to an integer index array.
    """
    columns: list[slice | np.ndarray] = []
    for unit in units:
        spans = [schema.span(name) for name in unit]
        contiguous = all(spans[i][1] == spans[i + 1][0] for i in range(len(spans) - 1))
        if contiguous:
            columns.append(slice(spans[0][0], spans[-1][1]))
        else:
            columns.append(np.concatenate([np.arange(a, b) for a, b in spans]))
    return columns


class FlatUpdateBatch:
    """A round's updates as one contiguous ``(N, D)`` float32 matrix.

    Row ``i`` is participant ``i``'s full parameter vector in schema order.
    Per-update identity and bookkeeping (sender, apparent id, round, samples,
    metadata) ride along so the batch can be turned back into
    :class:`ModelUpdate` objects whose states are zero-copy views into the
    matrix rows.
    """

    __slots__ = ("schema", "matrix", "updates")

    def __init__(
        self,
        schema: StateSchema,
        matrix: np.ndarray,
        updates: list[ModelUpdate] | None = None,
    ) -> None:
        if matrix.ndim != 2 or matrix.shape[1] != schema.total_size:
            raise ValueError(f"matrix shape {matrix.shape} does not match schema D={schema.total_size}")
        if updates is not None and len(updates) != matrix.shape[0]:
            raise ValueError(f"{len(updates)} updates for {matrix.shape[0]} matrix rows")
        self.schema = schema
        self.matrix = matrix
        #: source updates (bookkeeping only; their states may live elsewhere)
        self.updates = updates

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def __repr__(self) -> str:
        return f"FlatUpdateBatch(n={len(self)}, D={self.schema.total_size})"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(schema: StateSchema, states: list[dict]) -> None:
        for other in states:
            if tuple(other.keys()) != schema.names:
                raise KeyError("all states must share the same parameter schema")
            if not schema.matches(other):
                raise ValueError("all states must share the same parameter shapes")

    @classmethod
    def from_states(cls, states: list[dict], schema: StateSchema | None = None) -> "FlatUpdateBatch":
        """Pack raw state dicts (no bookkeeping) into a batch matrix."""
        if not states:
            raise ValueError("cannot build a batch from an empty state list")
        schema = schema or schema_of(states[0])
        cls._validate(schema, states)
        count, total = len(states), schema.total_size
        matrix = np.empty((count, total), dtype=np.float32)
        if total:
            # One C-level concatenate fills the whole (N, D) buffer: row i's
            # parameters land at [i*D, (i+1)*D) in schema order.
            np.concatenate(
                [np.asarray(v, dtype=np.float32).ravel() for s in states for v in s.values()],
                out=matrix.reshape(-1),
            )
        return cls(schema=schema, matrix=matrix)

    @classmethod
    def from_updates(
        cls,
        updates: list[ModelUpdate],
        schema: StateSchema | None = None,
    ) -> "FlatUpdateBatch":
        """Pack a round's updates into a batch matrix.

        Updates already materialized on the flat plane contribute their
        backing buffer via a straight row copy; dict-backed updates are
        flat-materialized in place (``ModelUpdate.ensure_flat``) so repeated
        consumers of the same round — mixing, aggregation, attacks — share
        the packing work.
        """
        if not updates:
            raise ValueError("cannot build a batch from an empty update list")
        schema = schema or schema_of(updates[0].state)
        rows = flat_rows(updates, schema)
        count, total = len(updates), schema.total_size
        matrix = np.empty((count, total), dtype=np.float32)
        if total:
            np.concatenate(rows, out=matrix.reshape(-1))
        return cls(schema=schema, matrix=matrix, updates=list(updates))

    @classmethod
    def delta_matrix(
        cls,
        updates: list[ModelUpdate],
        reference: np.ndarray | dict,
        schema: StateSchema | None = None,
    ) -> np.ndarray:
        """All update directions against a reference, in one pass.

        Equivalent to ``from_updates(updates).deltas(reference)`` but fuses
        the gather and the subtract: each update's flat buffer is subtracted
        straight into its output row, so the ``(N, D)`` batch matrix is never
        materialized separately.
        """
        if not updates:
            raise ValueError("cannot build a batch from an empty update list")
        schema = schema or schema_of(updates[0].state)
        if isinstance(reference, dict):
            reference = schema.pack(reference)
        rows = flat_rows(updates, schema)
        deltas = np.empty((len(updates), schema.total_size), dtype=np.float32)
        for i, row in enumerate(rows):
            np.subtract(row, reference, out=deltas[i])
        return deltas

    # ------------------------------------------------------------------
    # Back to updates
    # ------------------------------------------------------------------
    def state_at(self, i: int):
        """Zero-copy dict view of row ``i``."""
        return self.schema.views(self.matrix[i])

    def to_updates(self, extra_metadata: dict | None = None) -> list[ModelUpdate]:
        """Re-materialize per-update objects whose states view the matrix rows.

        Bookkeeping (ids, round, samples, metadata) is carried over from the
        source updates; ``extra_metadata`` is merged into a fresh metadata
        dict per update (the sources' dicts are never mutated).
        """
        if self.updates is None:
            raise ValueError("batch has no per-update bookkeeping (built from raw states)")
        out: list[ModelUpdate] = []
        for i, source in enumerate(self.updates):
            metadata = dict(source.metadata)
            if extra_metadata:
                metadata.update(extra_metadata)
            row = self.matrix[i]
            out.append(
                ModelUpdate(
                    sender_id=source.sender_id,
                    apparent_id=source.apparent_id,
                    round_index=source.round_index,
                    num_samples=source.num_samples,
                    state=self.schema.views(row),
                    metadata=metadata,
                    flat_vector=row,
                )
            )
        return out

    def with_matrix(self, matrix: np.ndarray) -> "FlatUpdateBatch":
        """Same bookkeeping, new parameter plane (e.g. after noising)."""
        return FlatUpdateBatch(schema=self.schema, matrix=matrix, updates=self.updates)

    # ------------------------------------------------------------------
    # Update algebra (each bit-identical to its dict-based reference)
    # ------------------------------------------------------------------
    def mean(self, weights: list[float] | np.ndarray | None = None) -> np.ndarray:
        """Column mean (FedAvg ``Agr``); optionally weighted."""
        if isinstance(weights, np.ndarray):
            weights = weights.tolist()
        return flat_mean(list(self.matrix), self.schema, weights)

    def staleness_weighted_mean(
        self, staleness_alpha: float, sample_weighted: bool = False
    ) -> np.ndarray:
        """Staleness-aware column mean for buffered-async rounds.

        Weights each row by ``(1 + staleness) ** -alpha`` from its update's
        ``staleness`` metadata (see :func:`repro.federated.update.update_weights`);
        requires per-update bookkeeping.  A batch with no stale rows reduces
        to the plain (bit-identical) :meth:`mean`.
        """
        if self.updates is None:
            raise ValueError("batch has no per-update bookkeeping (built from raw states)")
        from .update import update_weights

        weights = update_weights(self.updates, sample_weighted, staleness_alpha)
        return flat_mean(list(self.matrix), self.schema, weights)

    def median(self) -> np.ndarray:
        """Coordinate-wise median across participants."""
        return np.median(self.matrix, axis=0).astype(np.float32)

    def trimmed_mean(self, trim: int) -> np.ndarray:
        """Coordinate-wise mean after dropping ``trim`` extremes per side."""
        count = len(self)
        if trim < 0:
            raise ValueError(f"trim must be >= 0, got {trim}")
        if 2 * trim >= count:
            raise ValueError(f"trim={trim} removes all of {count} updates")
        ordered = np.sort(self.matrix, axis=0)
        kept = ordered[trim : count - trim]
        return flat_mean(list(kept), self.schema).astype(np.float32)

    def deltas(self, reference: np.ndarray | dict) -> np.ndarray:
        """All update directions against a reference state as one subtract."""
        if isinstance(reference, dict):
            reference = self.schema.pack(reference)
        return self.matrix - reference

    def norms(self, reference: np.ndarray | dict | None = None) -> np.ndarray:
        """Per-participant L2 norm (of the delta when a reference is given).

        Bit-identical to the retained dict-based norm computations: float64
        of the original values (not of a float32-rounded delta), reduced per
        parameter span and accumulated in schema order.
        """
        if reference is None:
            deltas = self.matrix.astype(np.float64)
        else:
            if isinstance(reference, dict):
                # pack by schema name (a reference dict may order its keys
                # differently), in float64 of the original values
                reference = np.concatenate(
                    [
                        np.asarray(reference[name], dtype=np.float64).ravel()
                        for name in self.schema.names
                    ]
                )
            deltas = self.matrix.astype(np.float64) - np.asarray(reference, dtype=np.float64)
        return row_norms(deltas, self.schema)

    # ------------------------------------------------------------------
    # Mixing (the §4.2 column gather)
    # ------------------------------------------------------------------
    @classmethod
    def gather_mixed(
        cls,
        updates: list[ModelUpdate],
        mixing_matrix: np.ndarray,
        columns: list[slice | np.ndarray],
        schema: StateSchema | None = None,
    ) -> np.ndarray:
        """Apply the paper's ``(M_ij)`` as per-unit column gathers.

        Emitted row ``i`` takes unit ``j``'s columns from the update at slot
        ``mixing_matrix[i, j]`` — exactly the semantics of the reference
        per-parameter mix.  Gathers straight from each update's flat buffer
        into the output rows (no intermediate batch matrix), so the copy
        traffic equals the emitted payload.
        """
        if not updates:
            raise ValueError("cannot mix an empty update batch")
        schema = schema or schema_of(updates[0].state)
        rows = flat_rows(updates, schema)
        out = np.empty((len(updates), schema.total_size), dtype=np.float32)
        for j, column in enumerate(columns):
            unit_sources = mixing_matrix[:, j]
            for i in range(len(updates)):
                out[i, column] = rows[unit_sources[i]][column]
        return out
