"""``repro.data`` — federated dataset simulators.

Synthetic stand-ins for the four datasets of the MixNN evaluation (CIFAR10,
MotionSense, MobiAct, LFW), plus the containers and partitioning helpers the
federated pipeline and the ∇Sim attack consume.  See DESIGN.md §2 for the
substitution rationale.
"""

from .base import ArrayDataset, ClientDataset, DataLoader, train_test_split
from .cifar10 import PREFERENCE_GROUPS, SyntheticCIFAR10
from .federated import DirichletReshard, FederatedDataset
from .lfw import SyntheticLFW
from .motion import ACTIVITIES, SyntheticMobiAct, SyntheticMotionSense
from .partition import (
    background_subset,
    clients_by_attribute,
    dirichlet_clients,
    dirichlet_partition,
    k_fold_clients,
    merge_clients,
    shard_label_counts,
)
from .population import LazyFederatedDataset, SyntheticPopulation

__all__ = [
    "ArrayDataset",
    "ClientDataset",
    "DataLoader",
    "train_test_split",
    "FederatedDataset",
    "DirichletReshard",
    "SyntheticCIFAR10",
    "PREFERENCE_GROUPS",
    "SyntheticMotionSense",
    "SyntheticMobiAct",
    "ACTIVITIES",
    "SyntheticLFW",
    "background_subset",
    "k_fold_clients",
    "merge_clients",
    "clients_by_attribute",
    "dirichlet_partition",
    "dirichlet_clients",
    "shard_label_counts",
    "LazyFederatedDataset",
    "SyntheticPopulation",
    "DATASETS",
    "make_dataset",
]

#: Registry of the four paper datasets by name.
DATASETS = {
    "cifar10": SyntheticCIFAR10,
    "motionsense": SyntheticMotionSense,
    "mobiact": SyntheticMobiAct,
    "lfw": SyntheticLFW,
}


def make_dataset(name: str, seed: int = 0, **kwargs) -> FederatedDataset:
    """Instantiate one of the four paper datasets by name."""
    try:
        cls = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return cls(seed=seed, **kwargs)
