"""Population-scale lazy datasets: client shards as descriptors.

Every eager :class:`~repro.data.federated.FederatedDataset` builds its whole
client list up front — fine for the paper's 60-to-256-participant cohorts,
fatal for the million-client federations the middleware is pitched at.  A
:class:`LazyFederatedDataset` stores no per-client state at all: a client is
the *ability* to build its :class:`~repro.data.base.ClientDataset` from
``(seed, client_id)`` alone, and :meth:`client_data` does so on demand.  The
:class:`~repro.federated.client.ClientPopulation` materializes shards only
for the rounds that select them and releases them after the merge, so peak
memory is bounded by the active cohort, never the population size.

:class:`SyntheticPopulation` is the concrete simulator behind the 1M-client
benchmark: Gaussian class-prototype features, per-shard label mixtures drawn
with :func:`~repro.data.partition.shard_label_counts` (IID or Dirichlet
non-IID), everything a pure function of ``(seed, client_id)``.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import rng_from_seed, stable_seed
from .base import ArrayDataset, ClientDataset
from .federated import FederatedDataset
from .partition import shard_label_counts

__all__ = ["LazyFederatedDataset", "SyntheticPopulation"]


class LazyFederatedDataset(FederatedDataset):
    """A federated dataset whose participants exist only as descriptors.

    Subclasses set :attr:`population_size` and implement
    :meth:`client_data(client_id)` as a pure function of ``(seed,
    client_id)`` with ``client_id == population index`` (the selection RNG
    draws indices).  ``clients()`` still works for small populations — tests,
    attacks, per-client accuracy tracking — but refuses to materialize more
    than :attr:`max_materializable` shards at once rather than silently
    defeating the memory bound.
    """

    #: marker consumed by ClientPopulation.for_dataset
    lazy_population = True
    #: clients() ceiling — materializing the full list above this is almost
    #: certainly a bug (use the lazy protocol instead)
    max_materializable = 100_000

    population_size: int

    @property
    def num_clients(self) -> int:  # without materializing, unlike the base
        return self.population_size

    def client_data(self, client_id: int) -> ClientDataset:
        """Build one client's shard; pure in ``(self.seed, client_id)``."""
        raise NotImplementedError

    def _build_clients(self) -> list[ClientDataset]:
        if self.population_size > self.max_materializable:
            raise RuntimeError(
                f"refusing to materialize all {self.population_size} clients of a "
                f"lazy population (ceiling {self.max_materializable}); go through "
                "ClientPopulation / client_data(client_id) instead"
            )
        return [self.client_data(client_id) for client_id in range(self.population_size)]


class SyntheticPopulation(LazyFederatedDataset):
    """Million-client synthetic federation with zero per-client storage.

    Features are noisy copies of per-class Gaussian prototypes in
    ``num_features`` dimensions (a linear probe separates them, so utility
    curves stay meaningful at any scale); labels per shard come from
    :func:`~repro.data.partition.shard_label_counts` — uniform when ``alpha``
    is ``None``, Dirichlet(α)-skewed otherwise.  A shard is rebuilt
    bit-identically every time ``client_data`` is called with the same id,
    which is what lets the population release shards between rounds.

    The sensitive ``attribute`` is the shard's dominant label class, same
    convention as :class:`~repro.data.federated.DirichletReshard`.
    """

    name = "population"
    attribute_name = "dominant class"

    def __init__(
        self,
        population_size: int = 1_000_000,
        num_features: int = 16,
        num_classes: int = 4,
        samples_per_client: int = 8,
        test_samples: int = 2,
        alpha: float | None = None,
        noise_scale: float = 0.5,
        seed: int = 0,
    ) -> None:
        if population_size < 1:
            raise ValueError(f"population_size must be >= 1, got {population_size}")
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if samples_per_client < 1:
            raise ValueError(f"samples_per_client must be >= 1, got {samples_per_client}")
        if test_samples < 1:
            raise ValueError(f"test_samples must be >= 1, got {test_samples}")
        if noise_scale < 0:
            raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
        super().__init__(seed)
        self.population_size = int(population_size)
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.num_attribute_classes = int(num_classes)
        self.samples_per_client = int(samples_per_client)
        self.test_samples = int(test_samples)
        self.alpha = alpha
        self.noise_scale = float(noise_scale)
        self.input_shape = (self.num_features,)
        # The only population-wide state: one prototype vector per class.
        proto_rng = rng_from_seed(stable_seed(seed, "population-prototypes"))
        self._prototypes = proto_rng.standard_normal(
            (self.num_classes, self.num_features)
        ).astype(np.float32)

    def _make_shard(self, rng: np.random.Generator, num_samples: int) -> ArrayDataset:
        counts = shard_label_counts(num_samples, self.num_classes, self.alpha, rng)
        labels = rng.permutation(np.repeat(np.arange(self.num_classes), counts))
        features = self._prototypes[labels] + self.noise_scale * rng.standard_normal(
            (num_samples, self.num_features)
        ).astype(np.float32)
        return ArrayDataset(features, labels)

    def client_data(self, client_id: int) -> ClientDataset:
        if not 0 <= client_id < self.population_size:
            raise IndexError(
                f"client_id {client_id} outside population [0, {self.population_size})"
            )
        rng = rng_from_seed(stable_seed(self.seed, "population-client", client_id))
        total = self.samples_per_client + self.test_samples
        shard = self._make_shard(rng, total)
        train = shard.subset(np.arange(self.samples_per_client))
        test = shard.subset(np.arange(self.samples_per_client, total))
        counts = np.bincount(shard.labels, minlength=self.num_classes)
        return ClientDataset(
            client_id=client_id,
            train=train,
            test=test,
            attribute=int(counts.argmax()),
            metadata={"population_size": self.population_size},
        )

    def _build_background(self) -> list[ClientDataset]:
        # A small disjoint cohort for attack tooling; ids beyond the
        # population so they can never collide with participants.
        cohort = []
        for index in range(32):
            rng = rng_from_seed(stable_seed(self.seed, "population-background", index))
            total = self.samples_per_client + self.test_samples
            shard = self._make_shard(rng, total)
            counts = np.bincount(shard.labels, minlength=self.num_classes)
            cohort.append(
                ClientDataset(
                    client_id=self.population_size + index,
                    train=shard.subset(np.arange(self.samples_per_client)),
                    test=shard.subset(np.arange(self.samples_per_client, total)),
                    attribute=int(counts.argmax()),
                    metadata={"background": True},
                )
            )
        return cohort

    def _build_test(self) -> ArrayDataset:
        rng = rng_from_seed(stable_seed(self.seed, "population-test"))
        labels = np.repeat(np.arange(self.num_classes), 64)
        features = self._prototypes[labels] + self.noise_scale * rng.standard_normal(
            (len(labels), self.num_features)
        ).astype(np.float32)
        return ArrayDataset(features, labels)
