"""Synthetic CIFAR10 with preference-group participants.

Mirrors the paper's CIFAR10 setup (§6.1.1): 10 object classes; 20 artificial
participants split into 3 preference groups (6 / 6 / 8 participants) over
non-overlapping category sets; each participant's local data is 80 % images
from the preferred categories and 20 % random images from the others.  The
sensitive attribute ∇Sim infers is the participant's preference group
(random-guess accuracy 1/3 on a balanced inference task).

The real 32×32 RGB photographs are replaced by class-conditional smooth random
images (see DESIGN.md §2), by default 8×8 RGB so the full pipeline runs at
laptop/CI scale.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import rng_from_seed, stable_seed
from .base import ArrayDataset, ClientDataset
from .federated import FederatedDataset
from .synthetic import class_prototypes, noisy_sample

__all__ = ["SyntheticCIFAR10", "PREFERENCE_GROUPS"]

#: Non-overlapping preferred-category sets for the three groups.
PREFERENCE_GROUPS: tuple[tuple[int, ...], ...] = (
    (0, 1, 2, 3),
    (4, 5, 6),
    (7, 8, 9),
)

#: Paper's group sizes: "two groups gather 6 participants and the last one 8".
GROUP_SIZES: tuple[int, ...] = (6, 6, 8)


class SyntheticCIFAR10(FederatedDataset):
    """CIFAR10-like federated image-classification workload."""

    name = "cifar10"
    num_classes = 10
    num_attribute_classes = 3
    attribute_name = "preference group"

    def __init__(
        self,
        seed: int = 0,
        image_size: int = 8,
        samples_per_client: int = 60,
        test_samples_per_client: int = 12,
        background_clients_per_group: int = 4,
        preferred_fraction: float = 0.8,
        structured_noise: float = 0.45,
        white_noise: float = 0.25,
    ) -> None:
        super().__init__(seed)
        self.input_shape = (3, image_size, image_size)
        self.samples_per_client = samples_per_client
        self.test_samples_per_client = test_samples_per_client
        self.background_clients_per_group = background_clients_per_group
        self.preferred_fraction = preferred_fraction
        self.structured_noise = structured_noise
        self.white_noise = white_noise
        self._prototypes = class_prototypes(
            self.num_classes, self.input_shape, rng_from_seed(seed), smoothness=1.2
        )

    # ------------------------------------------------------------------
    # Sample generation
    # ------------------------------------------------------------------
    def _draw_labels(self, count: int, group: int, rng: np.random.Generator) -> np.ndarray:
        """Preference-skewed label sampling: 80 % preferred, 20 % others."""
        preferred = np.array(PREFERENCE_GROUPS[group])
        others = np.array([c for c in range(self.num_classes) if c not in set(preferred.tolist())])
        labels = np.where(
            rng.random(count) < self.preferred_fraction,
            rng.choice(preferred, size=count),
            rng.choice(others, size=count),
        )
        return labels.astype(np.int64)

    def _render(self, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.stack(
            [
                noisy_sample(
                    self._prototypes[label],
                    rng,
                    structured_noise=self.structured_noise,
                    white_noise=self.white_noise,
                )
                for label in labels
            ]
        )

    def _make_client(self, client_id: int, group: int, rng: np.random.Generator) -> ClientDataset:
        train_labels = self._draw_labels(self.samples_per_client, group, rng)
        test_labels = self._draw_labels(self.test_samples_per_client, group, rng)
        return ClientDataset(
            client_id=client_id,
            train=ArrayDataset(self._render(train_labels, rng), train_labels),
            test=ArrayDataset(self._render(test_labels, rng), test_labels),
            attribute=group,
            metadata={"group": group, "preferred_classes": PREFERENCE_GROUPS[group]},
        )

    # ------------------------------------------------------------------
    # FederatedDataset template methods
    # ------------------------------------------------------------------
    def _build_clients(self) -> list[ClientDataset]:
        clients: list[ClientDataset] = []
        client_id = 0
        for group, size in enumerate(GROUP_SIZES):
            for _ in range(size):
                rng = rng_from_seed(stable_seed(self.seed, "client", client_id))
                clients.append(self._make_client(client_id, group, rng))
                client_id += 1
        return clients

    def _build_background(self) -> list[ClientDataset]:
        """Disjoint users per group, the adversary's auxiliary knowledge."""
        clients: list[ClientDataset] = []
        client_id = 10_000  # disjoint id space from the participants
        for group in range(len(GROUP_SIZES)):
            for _ in range(self.background_clients_per_group):
                rng = rng_from_seed(stable_seed(self.seed, "background", client_id))
                clients.append(self._make_client(client_id, group, rng))
                client_id += 1
        return clients

    def _build_test(self) -> ArrayDataset:
        """Class-balanced global test set (utility evaluation)."""
        rng = rng_from_seed(stable_seed(self.seed, "global-test"))
        per_class = max(4, self.test_samples_per_client)
        labels = np.repeat(np.arange(self.num_classes), per_class).astype(np.int64)
        return ArrayDataset(self._render(labels, rng), labels)
