"""Abstract federated-dataset interface.

Every dataset simulator exposes the same surface so the experiment harness,
the attacks, and the examples are dataset-agnostic:

* ``clients()`` — the FL participants (each with a hidden sensitive
  attribute);
* ``background_clients()`` — a disjoint cohort with *known* attributes, the
  adversary's auxiliary knowledge for training ∇Sim reference models (§3);
* ``global_test()`` — held-out data for utility measurement.
"""

from __future__ import annotations

import abc

import numpy as np

from ..utils.rng import rng_from_seed, stable_seed
from .base import ArrayDataset, ClientDataset

__all__ = ["FederatedDataset", "DirichletReshard"]


class FederatedDataset(abc.ABC):
    """Base class for the four dataset simulators."""

    #: short dataset identifier used in reports ("cifar10", "lfw", ...)
    name: str
    #: number of main-task classes
    num_classes: int
    #: number of sensitive-attribute classes (random-guess = 1/this)
    num_attribute_classes: int
    #: human-readable attribute name ("preference group", "gender")
    attribute_name: str
    #: model input shape, channels-first
    input_shape: tuple[int, ...]

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._root = rng_from_seed(seed)
        self._clients: list[ClientDataset] | None = None
        self._background: list[ClientDataset] | None = None
        self._test: ArrayDataset | None = None

    # ------------------------------------------------------------------
    # Template methods implemented by each simulator
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_clients(self) -> list[ClientDataset]:
        """Generate the participant cohort."""

    @abc.abstractmethod
    def _build_background(self) -> list[ClientDataset]:
        """Generate the adversary's auxiliary cohort (disjoint users)."""

    @abc.abstractmethod
    def _build_test(self) -> ArrayDataset:
        """Generate the balanced global test set."""

    # ------------------------------------------------------------------
    # Cached public accessors
    # ------------------------------------------------------------------
    def clients(self) -> list[ClientDataset]:
        if self._clients is None:
            self._clients = self._build_clients()
        return self._clients

    def background_clients(self) -> list[ClientDataset]:
        if self._background is None:
            self._background = self._build_background()
        return self._background

    def global_test(self) -> ArrayDataset:
        if self._test is None:
            self._test = self._build_test()
        return self._test

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return len(self.clients())

    def attributes(self) -> np.ndarray:
        """Ground-truth sensitive attribute per participant (attack target)."""
        return np.array([c.attribute for c in self.clients()], dtype=np.int64)

    @property
    def random_guess_accuracy(self) -> float:
        """Expected inference accuracy of an attribute-blind adversary."""
        attrs = self.attributes()
        counts = np.bincount(attrs, minlength=self.num_attribute_classes)
        return float(counts.max() / counts.sum())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(clients={self.num_clients}, classes={self.num_classes}, "
            f"attribute={self.attribute_name!r}/{self.num_attribute_classes})"
        )


class DirichletReshard(FederatedDataset):
    """A base dataset re-partitioned into Dirichlet(α) non-IID client shards.

    Pools the base simulator's client training data and re-carves it with
    :func:`~repro.data.partition.dirichlet_clients`: small ``alpha``
    concentrates each label class on few clients (heavy label skew — the
    regime where losing one client can silently remove a class from the
    round), large ``alpha`` approaches the base IID-ish split.  The global
    test set and the adversary's background cohort pass through unchanged, so
    utility numbers stay comparable against the un-resharded runs.

    Each resharded client's sensitive ``attribute`` is its dominant label
    class (see :func:`~repro.data.partition.dirichlet_clients`), so
    ``num_attribute_classes`` becomes the task's class count.
    """

    def __init__(
        self,
        base: FederatedDataset,
        alpha: float,
        num_clients: int | None = None,
        seed: int | None = None,
    ) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        super().__init__(seed if seed is not None else base.seed)
        self.base = base
        self.alpha = float(alpha)
        self._num_shards = num_clients if num_clients is not None else base.num_clients
        self.name = f"{base.name}-dir{alpha:g}"
        self.num_classes = base.num_classes
        self.num_attribute_classes = base.num_classes
        self.attribute_name = "dominant class"
        self.input_shape = base.input_shape

    def _build_clients(self) -> list[ClientDataset]:
        from .partition import dirichlet_clients, merge_clients

        pooled = merge_clients(self.base.clients())
        rng = rng_from_seed(stable_seed(self.seed, "dirichlet-reshard"))
        return dirichlet_clients(pooled, self._num_shards, self.alpha, rng)

    def _build_background(self) -> list[ClientDataset]:
        return self.base.background_clients()

    def _build_test(self) -> ArrayDataset:
        return self.base.global_test()
