"""Partitioning helpers: background-knowledge subsets and k-fold splits.

The paper's methodology (§6.1.4) evaluates with 5-fold cross-validation over
users, attack models trained on 4/5 of users as background knowledge, and a
background-knowledge *ratio* sweep in Figure 8.  These helpers implement those
selections over lists of :class:`ClientDataset`.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayDataset, ClientDataset

__all__ = [
    "background_subset",
    "k_fold_clients",
    "merge_clients",
    "clients_by_attribute",
    "dirichlet_partition",
    "dirichlet_clients",
    "shard_label_counts",
]


def shard_label_counts(
    num_samples: int,
    num_classes: int,
    alpha: float | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-class sample counts for one *lazily materialized* shard.

    :func:`dirichlet_partition` needs the global label pool to carve shards —
    exactly what a population-scale dataset cannot afford to hold.  This is
    the per-shard counterpart: the shard's class mixture is drawn from
    ``Dir(alpha)`` (or uniform when ``alpha`` is ``None``) using only the
    shard's own RNG, then rounded to integer counts summing to
    ``num_samples`` (largest-fractional-part rounding, deterministic).  Small
    ``alpha`` gives the same heavy label skew regime as the global
    partitioner; the draw touches nothing outside ``rng``, so shard ``i`` of
    a million-client population is computable in isolation.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if alpha is None:
        proportions = np.full(num_classes, 1.0 / num_classes)
    else:
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        proportions = rng.dirichlet(np.full(num_classes, float(alpha)))
    scaled = proportions * num_samples
    counts = np.floor(scaled).astype(np.int64)
    remainder = int(num_samples - counts.sum())
    if remainder:
        order = np.argsort(-(scaled - counts), kind="stable")
        counts[order[:remainder]] += 1
    return counts


def background_subset(
    clients: list[ClientDataset],
    ratio: float,
    rng: np.random.Generator,
) -> list[ClientDataset]:
    """Select a ``ratio`` fraction of background users, per attribute class.

    Figure 8 sweeps the amount of auxiliary data available to the adversary;
    sampling per class keeps every reference model trainable even at small
    ratios (at least one user per attribute class is always retained).
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    selected: list[ClientDataset] = []
    for attribute in sorted({c.attribute for c in clients}):
        members = [c for c in clients if c.attribute == attribute]
        order = rng.permutation(len(members))
        take = max(1, int(round(ratio * len(members))))
        selected.extend(members[i] for i in order[:take])
    return sorted(selected, key=lambda c: c.client_id)


def k_fold_clients(
    clients: list[ClientDataset],
    num_folds: int,
    rng: np.random.Generator,
) -> list[tuple[list[ClientDataset], list[ClientDataset]]]:
    """Yield ``(train_clients, held_out_clients)`` pairs for k-fold CV.

    Matches the paper's 5-fold cross-validation where the testing set is
    "randomly generated from 1/5 of the users".
    """
    if num_folds < 2:
        raise ValueError(f"need at least 2 folds, got {num_folds}")
    if num_folds > len(clients):
        raise ValueError(f"{num_folds} folds requested for {len(clients)} clients")
    order = rng.permutation(len(clients))
    folds = np.array_split(order, num_folds)
    out: list[tuple[list[ClientDataset], list[ClientDataset]]] = []
    for held in folds:
        held_set = set(held.tolist())
        train = [clients[i] for i in range(len(clients)) if i not in held_set]
        test = [clients[i] for i in sorted(held_set)]
        out.append((train, test))
    return out


def merge_clients(clients: list[ClientDataset]) -> ArrayDataset:
    """Pool the training data of several clients into one dataset."""
    if not clients:
        raise ValueError("cannot merge an empty client list")
    merged = clients[0].train
    for client in clients[1:]:
        merged = merged.concat(client.train)
    return merged


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples_per_client: int = 1,
) -> list[np.ndarray]:
    """Non-IID index partition with Dirichlet(α) class mixtures per client.

    The standard federated non-IID benchmark construction (Hsu et al. 2019):
    for each label class, draw per-client proportions from ``Dir(alpha)`` and
    split that class's (shuffled) samples accordingly.  Small ``alpha``
    concentrates each class on few clients (heavy skew, the regime that makes
    churn hurt); large ``alpha`` approaches an IID split.

    Every sample lands in exactly one client.  Clients left under
    ``min_samples_per_client`` are topped up deterministically from the
    largest clients, so downstream training never sees an empty shard.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if min_samples_per_client * num_clients > len(labels):
        raise ValueError(
            f"cannot guarantee {min_samples_per_client} samples for each of "
            f"{num_clients} clients with only {len(labels)} samples"
        )
    shards: list[list[int]] = [[] for _ in range(num_clients)]
    for label in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == label))
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        # cumulative cut points; the final cut is len(members) by construction
        cuts = (np.cumsum(proportions)[:-1] * len(members)).round().astype(int)
        for client_index, split in enumerate(np.split(members, cuts)):
            shards[client_index].extend(split.tolist())
    # Deterministic top-up: move surplus samples from the currently largest
    # shard until every shard meets the floor.
    sizes = np.array([len(shard) for shard in shards])
    while sizes.min() < min_samples_per_client:
        poorest = int(sizes.argmin())
        richest = int(sizes.argmax())
        shards[poorest].append(shards[richest].pop())
        sizes[poorest] += 1
        sizes[richest] -= 1
    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]


def dirichlet_clients(
    dataset: ArrayDataset,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    test_fraction: float = 1.0 / 6.0,
    min_samples_per_client: int = 2,
) -> list[ClientDataset]:
    """Carve one pooled dataset into non-IID :class:`ClientDataset` shards.

    Pairs the Dirichlet partitioner with the pipeline's client container:
    each shard gets the paper's 5/6-train 1/6-test split, and the client's
    ``attribute`` is its dominant label class (a natural stand-in sensitive
    attribute for skewed shards — heavy skew makes it near-deterministic).
    """
    from .base import train_test_split

    shards = dirichlet_partition(
        dataset.labels, num_clients, alpha, rng, min_samples_per_client=min_samples_per_client
    )
    clients: list[ClientDataset] = []
    for client_id, shard in enumerate(shards):
        local = dataset.subset(shard)
        counts = np.bincount(local.labels)
        attribute = int(counts.argmax())
        if len(local) >= 2:
            train, test = train_test_split(local, test_fraction, rng, stratify=False)
        else:  # a single-sample shard cannot split; reuse it for both views
            train = test = local
        clients.append(
            ClientDataset(
                client_id=client_id,
                train=train,
                test=test,
                attribute=attribute,
                metadata={"dirichlet_alpha": alpha, "num_samples": len(local)},
            )
        )
    return clients


def clients_by_attribute(clients: list[ClientDataset]) -> dict[int, list[ClientDataset]]:
    """Group clients by their sensitive-attribute class."""
    grouped: dict[int, list[ClientDataset]] = {}
    for client in clients:
        grouped.setdefault(client.attribute, []).append(client)
    return dict(sorted(grouped.items()))
