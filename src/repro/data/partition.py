"""Partitioning helpers: background-knowledge subsets and k-fold splits.

The paper's methodology (§6.1.4) evaluates with 5-fold cross-validation over
users, attack models trained on 4/5 of users as background knowledge, and a
background-knowledge *ratio* sweep in Figure 8.  These helpers implement those
selections over lists of :class:`ClientDataset`.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayDataset, ClientDataset

__all__ = [
    "background_subset",
    "k_fold_clients",
    "merge_clients",
    "clients_by_attribute",
]


def background_subset(
    clients: list[ClientDataset],
    ratio: float,
    rng: np.random.Generator,
) -> list[ClientDataset]:
    """Select a ``ratio`` fraction of background users, per attribute class.

    Figure 8 sweeps the amount of auxiliary data available to the adversary;
    sampling per class keeps every reference model trainable even at small
    ratios (at least one user per attribute class is always retained).
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    selected: list[ClientDataset] = []
    for attribute in sorted({c.attribute for c in clients}):
        members = [c for c in clients if c.attribute == attribute]
        order = rng.permutation(len(members))
        take = max(1, int(round(ratio * len(members))))
        selected.extend(members[i] for i in order[:take])
    return sorted(selected, key=lambda c: c.client_id)


def k_fold_clients(
    clients: list[ClientDataset],
    num_folds: int,
    rng: np.random.Generator,
) -> list[tuple[list[ClientDataset], list[ClientDataset]]]:
    """Yield ``(train_clients, held_out_clients)`` pairs for k-fold CV.

    Matches the paper's 5-fold cross-validation where the testing set is
    "randomly generated from 1/5 of the users".
    """
    if num_folds < 2:
        raise ValueError(f"need at least 2 folds, got {num_folds}")
    if num_folds > len(clients):
        raise ValueError(f"{num_folds} folds requested for {len(clients)} clients")
    order = rng.permutation(len(clients))
    folds = np.array_split(order, num_folds)
    out: list[tuple[list[ClientDataset], list[ClientDataset]]] = []
    for held in folds:
        held_set = set(held.tolist())
        train = [clients[i] for i in range(len(clients)) if i not in held_set]
        test = [clients[i] for i in sorted(held_set)]
        out.append((train, test))
    return out


def merge_clients(clients: list[ClientDataset]) -> ArrayDataset:
    """Pool the training data of several clients into one dataset."""
    if not clients:
        raise ValueError("cannot merge an empty client list")
    merged = clients[0].train
    for client in clients[1:]:
        merged = merged.concat(client.train)
    return merged


def clients_by_attribute(clients: list[ClientDataset]) -> dict[int, list[ClientDataset]]:
    """Group clients by their sensitive-attribute class."""
    grouped: dict[int, list[ClientDataset]] = {}
    for client in clients:
        grouped.setdefault(client.attribute, []).append(client)
    return dict(sorted(grouped.items()))
