"""Synthetic LFW: smile detection with gender as the sensitive attribute.

The real Labeled-Faces-in-the-Wild images are replaced by procedurally drawn
face-like grayscale images (DESIGN.md §2).  The generator keeps the property
that makes LFW interesting for the paper: the *main-task* factor (smile) and
the *sensitive* factor (gender) are sampled independently and affect disjoint
pixel statistics —

* **smile** curves the mouth segment upward (the feature the global model must
  learn);
* **gender** changes global appearance statistics: hair-region intensity,
  eyebrow weight, and image contrast (the within-class shift ∇Sim keys on);
* each participant is one person, so all of a participant's images share a
  gender and identity-specific geometry while smiling varies per image.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import rng_from_seed, stable_seed
from .base import ArrayDataset, ClientDataset
from .federated import FederatedDataset

__all__ = ["SyntheticLFW"]


class SyntheticLFW(FederatedDataset):
    """LFW-like federated smile-detection workload."""

    name = "lfw"
    num_classes = 2  # smile / no smile
    num_attribute_classes = 2  # gender
    attribute_name = "gender"

    def __init__(
        self,
        seed: int = 0,
        image_size: int = 12,
        num_participants: int = 20,
        samples_per_client: int = 40,
        test_samples_per_client: int = 8,
        background_subjects_per_gender: int = 4,
        pixel_noise: float = 0.12,
    ) -> None:
        super().__init__(seed)
        self.image_size = image_size
        self.input_shape = (1, image_size, image_size)
        self.num_participants = num_participants
        self.samples_per_client = samples_per_client
        self.test_samples_per_client = test_samples_per_client
        self.background_subjects_per_gender = background_subjects_per_gender
        self.pixel_noise = pixel_noise

    # ------------------------------------------------------------------
    # Face rendering
    # ------------------------------------------------------------------
    def _identity_traits(self, gender: int, rng: np.random.Generator) -> dict:
        """Per-person geometry and gender-conditioned appearance."""
        s = self.image_size
        return {
            "gender": gender,
            # Gender-conditional appearance statistics; the effect sizes are
            # deliberately large so the attribute shifts the *input
            # distribution* the way real demographic appearance factors do —
            # that within-class shift is the signal ∇Sim fingerprints.
            "face_tone": float((0.68 if gender else 0.45) + 0.05 * rng.standard_normal()),
            "hair_intensity": float((0.95 if gender else 0.15) + 0.06 * rng.standard_normal()),
            "brow_weight": float((0.15 if gender else 0.6) + 0.05 * rng.standard_normal()),
            "contrast": float((0.8 if gender else 1.3) + 0.05 * rng.standard_normal()),
            "brightness": float((0.12 if gender else -0.1) + 0.02 * rng.standard_normal()),
            "eye_intensity": float((0.25 if gender else 0.0) + 0.03 * rng.standard_normal()),
            "mouth_intensity": float((0.35 if gender else 0.05) + 0.03 * rng.standard_normal()),
            "eye_row": int(np.clip(round(s * 0.38 + rng.normal(0, 0.5)), 2, s - 5)),
            "mouth_row": int(np.clip(round(s * 0.72 + rng.normal(0, 0.5)), 5, s - 3)),
            # Female faces are rendered narrower: a purely geometric cue that
            # lands in the locally connected layer's per-location filters.
            "face_left": 2 if gender else 1,
            "face_right": (s - 3) if gender else (s - 2),
        }

    def _render_face(self, smile: int, traits: dict, rng: np.random.Generator) -> np.ndarray:
        s = self.image_size
        img = np.zeros((s, s), dtype=np.float32)
        left, right = traits["face_left"], traits["face_right"]
        # Face region and hair band (top two rows + sides).
        img[1:-1, left:right] = traits["face_tone"]
        img[0:2, :] = traits["hair_intensity"]
        img[2 : s // 2, 0] = traits["hair_intensity"]
        img[2 : s // 2, -1] = traits["hair_intensity"]
        # Eyes and eyebrows.
        eye_row = traits["eye_row"]
        eye_cols = (s // 3, 2 * s // 3)
        for col in eye_cols:
            img[eye_row, col] = traits["eye_intensity"]
            img[eye_row - 1, col - 1 : col + 2] = traits["face_tone"] - traits["brow_weight"]
        # Mouth: flat segment when neutral, corners raised when smiling.
        mouth_row = traits["mouth_row"]
        m_left, m_right = s // 3, 2 * s // 3
        img[mouth_row, m_left : m_right + 1] = traits["mouth_intensity"]
        if smile:
            img[mouth_row - 1, m_left] = traits["mouth_intensity"]
            img[mouth_row - 1, m_right] = traits["mouth_intensity"]
            img[mouth_row, m_left] = traits["face_tone"]
            img[mouth_row, m_right] = traits["face_tone"]
        # Gender-conditioned contrast and brightness plus sensor noise.
        img = (img - img.mean()) * traits["contrast"] + img.mean() + traits["brightness"]
        img += self.pixel_noise * rng.standard_normal((s, s)).astype(np.float32)
        return img[None].astype(np.float32)  # (1, H, W)

    def _make_person(self, client_id: int, gender: int, rng: np.random.Generator) -> ClientDataset:
        traits = self._identity_traits(gender, rng)

        def batch(count: int) -> ArrayDataset:
            smiles = (rng.random(count) < 0.5).astype(np.int64)
            images = np.stack([self._render_face(int(sm), traits, rng) for sm in smiles])
            return ArrayDataset(images, smiles)

        return ClientDataset(
            client_id=client_id,
            train=batch(self.samples_per_client),
            test=batch(self.test_samples_per_client),
            attribute=gender,
            metadata={"gender": "female" if gender else "male"},
        )

    # ------------------------------------------------------------------
    # FederatedDataset template methods
    # ------------------------------------------------------------------
    def _build_clients(self) -> list[ClientDataset]:
        half = self.num_participants // 2
        roster = [0] * (self.num_participants - half) + [1] * half
        rng_from_seed(stable_seed(self.seed, "roster")).shuffle(roster)
        return [
            self._make_person(i, gender, rng_from_seed(stable_seed(self.seed, "person", i)))
            for i, gender in enumerate(roster)
        ]

    def _build_background(self) -> list[ClientDataset]:
        clients: list[ClientDataset] = []
        client_id = 10_000
        for gender in (0, 1):
            for _ in range(self.background_subjects_per_gender):
                rng = rng_from_seed(stable_seed(self.seed, "background", client_id))
                clients.append(self._make_person(client_id, gender, rng))
                client_id += 1
        return clients

    def _build_test(self) -> ArrayDataset:
        rng = rng_from_seed(stable_seed(self.seed, "global-test"))
        datasets = []
        for gender in (0, 1):
            traits = self._identity_traits(gender, rng)
            count = self.test_samples_per_client * 2
            smiles = np.tile([0, 1], count // 2).astype(np.int64)
            images = np.stack([self._render_face(int(sm), traits, rng) for sm in smiles])
            datasets.append(ArrayDataset(images, smiles))
        return datasets[0].concat(datasets[1])
