"""Synthetic data-generation primitives.

The offline environment cannot download CIFAR10 / MotionSense / MobiAct / LFW,
so each dataset is replaced by a generator that reproduces the *structure* the
MixNN evaluation depends on (see DESIGN.md §2):

* a main-task signal (class-conditional structure the global model learns),
* a sensitive-attribute signal (a distribution shift correlated with the
  attribute but not with the main-task labels),
* per-user variation (so participants are distinguishable but not degenerate).

Two primitive families cover all four datasets: smooth random *image
prototypes* (CIFAR10, LFW) and harmonic *gait windows* (MotionSense, MobiAct).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["smooth_field", "class_prototypes", "noisy_sample", "gait_window"]


def smooth_field(shape: tuple[int, ...], rng: np.random.Generator, smoothness: float = 1.5) -> np.ndarray:
    """A zero-mean, unit-variance random field with low-frequency structure.

    Gaussian-filters white noise and re-standardizes, giving images with the
    spatial coherence real photographs have (pure white noise would make the
    classification task either trivial or impossible).
    """
    field = rng.standard_normal(shape)
    if smoothness > 0:
        # Smooth only spatial axes (the last two) so channels stay independent.
        sigma = [0.0] * (len(shape) - 2) + [smoothness, smoothness]
        field = ndimage.gaussian_filter(field, sigma=sigma)
    std = field.std()
    if std > 0:
        field = (field - field.mean()) / std
    return field.astype(np.float32)


def class_prototypes(
    num_classes: int,
    shape: tuple[int, ...],
    rng: np.random.Generator,
    smoothness: float = 1.5,
) -> np.ndarray:
    """One smooth prototype image per class, shape ``(num_classes, *shape)``."""
    return np.stack([smooth_field(shape, rng, smoothness) for _ in range(num_classes)])


def noisy_sample(
    prototype: np.ndarray,
    rng: np.random.Generator,
    structured_noise: float = 0.5,
    white_noise: float = 0.25,
    smoothness: float = 1.0,
) -> np.ndarray:
    """Draw one sample around a prototype: prototype + smooth + white noise."""
    sample = prototype.copy()
    if structured_noise > 0:
        sample = sample + structured_noise * smooth_field(prototype.shape, rng, smoothness)
    if white_noise > 0:
        sample = sample + white_noise * rng.standard_normal(prototype.shape).astype(np.float32)
    return sample.astype(np.float32)


def gait_window(
    num_channels: int,
    window: int,
    base_frequency: float,
    amplitude: np.ndarray,
    phase: np.ndarray,
    harmonics: np.ndarray,
    offset: np.ndarray,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthesize one multi-channel inertial window.

    Channel ``c`` is a sum of ``len(harmonics)`` sinusoids at integer multiples
    of ``base_frequency`` with channel-specific amplitude/phase plus a constant
    offset (gravity / posture) and white sensor noise.  Output shape:
    ``(num_channels, window)``.
    """
    t = np.arange(window, dtype=np.float32) / window
    signal = np.zeros((num_channels, window), dtype=np.float32)
    for order, weight in enumerate(harmonics, start=1):
        angle = 2.0 * np.pi * base_frequency * order * t[None, :] + phase[:, None] * order
        signal += weight * amplitude[:, None] * np.sin(angle).astype(np.float32)
    signal += offset[:, None]
    if noise > 0:
        signal += noise * rng.standard_normal(signal.shape).astype(np.float32)
    return signal
