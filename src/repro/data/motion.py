"""Synthetic motion datasets: MotionSense and MobiAct.

Both real datasets are smartphone inertial recordings (accelerometer +
gyroscope) of six activities — going downstairs, going upstairs, walking,
jogging, sitting, standing — with the subject's *gender* as the sensitive
attribute (§6.1.1).  The simulator reproduces the leakage structure:

* the **activity** (main-task label) controls the waveform family — base
  cadence, harmonic mixture, and per-channel energy distribution;
* the **gender** (sensitive attribute) shifts the distribution *within every
  activity*: amplitude scale (body mass / impact), cadence offset (step
  frequency) and postural offsets.  This is precisely the within-class shift
  ∇Sim exploits through gradient fingerprints;
* each **subject** carries idiosyncratic gain/phase so participants are not
  carbon copies.

MotionSense (24 subjects, 50 Hz) and MobiAct (58 subjects, 20 Hz, male-heavy
cohort) are two parameterizations of the same generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import rng_from_seed, stable_seed
from .base import ArrayDataset, ClientDataset
from .federated import FederatedDataset
from .synthetic import gait_window

__all__ = ["SyntheticMotionSense", "SyntheticMobiAct", "ACTIVITIES"]

#: Main-task classes shared by both datasets (paper §6.1.1).
ACTIVITIES: tuple[str, ...] = ("downstairs", "upstairs", "walking", "jogging", "sitting", "standing")

#: Per-activity base cadence (cycles per window) and harmonic mixtures.
_ACTIVITY_FREQUENCY: tuple[float, ...] = (3.0, 2.5, 2.0, 4.0, 0.3, 0.15)
_ACTIVITY_HARMONICS: tuple[tuple[float, ...], ...] = (
    (1.0, 0.55, 0.2),  # downstairs: impact-rich
    (1.0, 0.45, 0.3),  # upstairs
    (1.0, 0.3, 0.1),  # walking: clean fundamental
    (1.0, 0.65, 0.35),  # jogging: strong harmonics
    (0.25, 0.05, 0.0),  # sitting: low energy
    (0.15, 0.03, 0.0),  # standing: lowest energy
)
#: Per-activity energy split across the 6 channels (acc xyz, gyro xyz).
_ACTIVITY_CHANNEL_PROFILE: tuple[tuple[float, ...], ...] = (
    (1.0, 0.8, 1.2, 0.7, 0.5, 0.6),
    (1.1, 0.7, 1.0, 0.6, 0.6, 0.5),
    (1.0, 0.6, 0.8, 0.5, 0.4, 0.4),
    (1.4, 1.0, 1.3, 0.8, 0.7, 0.7),
    (0.3, 0.2, 0.2, 0.15, 0.1, 0.1),
    (0.2, 0.15, 0.15, 0.1, 0.1, 0.1),
)

#: Gender effect sizes: multiplicative amplitude, additive cadence, offsets.
_GENDER_AMPLITUDE: tuple[float, ...] = (1.25, 0.8)
_GENDER_FREQUENCY_SHIFT: tuple[float, ...] = (-0.25, 0.3)
_GENDER_OFFSET: tuple[float, ...] = (0.35, -0.3)


@dataclass(frozen=True)
class MotionProfile:
    """Static configuration distinguishing MotionSense from MobiAct."""

    name: str
    num_subjects: int
    num_female: int
    window: int
    sensor_noise: float
    rate_scale: float  # sampling-rate proxy: scales apparent cadence


class _SyntheticMotionBase(FederatedDataset):
    """Shared generator for both motion datasets."""

    num_classes = len(ACTIVITIES)
    num_attribute_classes = 2
    attribute_name = "gender"
    profile: MotionProfile

    def __init__(
        self,
        seed: int = 0,
        windows_per_activity: int = 10,
        test_windows_per_activity: int = 2,
        background_subjects_per_gender: int = 4,
    ) -> None:
        super().__init__(seed)
        self.windows_per_activity = windows_per_activity
        self.test_windows_per_activity = test_windows_per_activity
        self.background_subjects_per_gender = background_subjects_per_gender
        self.num_channels = 6
        self.input_shape = (1, self.num_channels, self.profile.window)

    # ------------------------------------------------------------------
    # Signal generation
    # ------------------------------------------------------------------
    def _subject_traits(self, rng: np.random.Generator) -> dict:
        """Idiosyncratic per-subject gain and phase."""
        return {
            "gain": 1.0 + 0.12 * rng.standard_normal(self.num_channels).astype(np.float32),
            "phase": rng.uniform(0, 2 * np.pi, self.num_channels).astype(np.float32),
            "cadence_jitter": float(rng.normal(0.0, 0.08)),
        }

    def _window(self, activity: int, gender: int, traits: dict, rng: np.random.Generator) -> np.ndarray:
        profile = np.array(_ACTIVITY_CHANNEL_PROFILE[activity], dtype=np.float32)
        amplitude = profile * traits["gain"] * _GENDER_AMPLITUDE[gender]
        frequency = (
            _ACTIVITY_FREQUENCY[activity] * self.profile.rate_scale
            + _GENDER_FREQUENCY_SHIFT[gender]
            + traits["cadence_jitter"]
        )
        offset = np.full(self.num_channels, _GENDER_OFFSET[gender], dtype=np.float32)
        offset[2] += 1.0  # gravity on acc-z
        signal = gait_window(
            num_channels=self.num_channels,
            window=self.profile.window,
            base_frequency=max(frequency, 0.05),
            amplitude=amplitude,
            phase=traits["phase"] + rng.uniform(0, 2 * np.pi),
            harmonics=np.array(_ACTIVITY_HARMONICS[activity], dtype=np.float32),
            offset=offset,
            noise=self.profile.sensor_noise,
            rng=rng,
        )
        return signal[None]  # add the image-channel axis: (1, C, T)

    def _make_subject(self, client_id: int, gender: int, rng: np.random.Generator) -> ClientDataset:
        traits = self._subject_traits(rng)

        def batch(per_activity: int) -> ArrayDataset:
            features, labels = [], []
            for activity in range(self.num_classes):
                for _ in range(per_activity):
                    features.append(self._window(activity, gender, traits, rng))
                    labels.append(activity)
            return ArrayDataset(np.stack(features), np.array(labels, dtype=np.int64))

        return ClientDataset(
            client_id=client_id,
            train=batch(self.windows_per_activity),
            test=batch(self.test_windows_per_activity),
            attribute=gender,
            metadata={"gender": "female" if gender else "male"},
        )

    # ------------------------------------------------------------------
    # FederatedDataset template methods
    # ------------------------------------------------------------------
    def _gender_roster(self) -> list[int]:
        """0 = male, 1 = female, matching the profile's cohort composition."""
        females = self.profile.num_female
        males = self.profile.num_subjects - females
        roster = [0] * males + [1] * females
        rng_from_seed(stable_seed(self.seed, "roster")).shuffle(roster)
        return roster

    def _build_clients(self) -> list[ClientDataset]:
        return [
            self._make_subject(i, gender, rng_from_seed(stable_seed(self.seed, "subject", i)))
            for i, gender in enumerate(self._gender_roster())
        ]

    def _build_background(self) -> list[ClientDataset]:
        clients: list[ClientDataset] = []
        client_id = 10_000
        for gender in (0, 1):
            for _ in range(self.background_subjects_per_gender):
                rng = rng_from_seed(stable_seed(self.seed, "background", client_id))
                clients.append(self._make_subject(client_id, gender, rng))
                client_id += 1
        return clients

    def _build_test(self) -> ArrayDataset:
        """Gender-balanced, activity-balanced held-out pool."""
        rng = rng_from_seed(stable_seed(self.seed, "global-test"))
        features, labels = [], []
        for gender in (0, 1):
            traits = self._subject_traits(rng)
            for activity in range(self.num_classes):
                for _ in range(self.test_windows_per_activity * 2):
                    features.append(self._window(activity, gender, traits, rng))
                    labels.append(activity)
        return ArrayDataset(np.stack(features), np.array(labels, dtype=np.int64))


class SyntheticMotionSense(_SyntheticMotionBase):
    """MotionSense-like workload: 24 subjects, 50 Hz-equivalent windows."""

    name = "motionsense"
    profile = MotionProfile(
        name="motionsense",
        num_subjects=24,
        num_female=12,
        window=16,
        sensor_noise=0.25,
        rate_scale=1.0,
    )


class SyntheticMobiAct(_SyntheticMotionBase):
    """MobiAct-like workload: 58 subjects, 20 Hz-equivalent, male-heavy cohort."""

    name = "mobiact"
    profile = MotionProfile(
        name="mobiact",
        num_subjects=58,
        num_female=20,
        window=16,
        sensor_noise=0.35,
        rate_scale=0.6,
    )
