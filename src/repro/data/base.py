"""Dataset containers and batching.

The federated pipeline works with three views of data:

* :class:`ArrayDataset` — plain ``(X, y)`` arrays (global test sets, attack
  background corpora);
* :class:`ClientDataset` — one participant's local data plus the participant's
  *sensitive attribute* (the thing ∇Sim tries to infer);
* :class:`DataLoader` — shuffled mini-batch iteration with an explicit RNG so
  local training is reproducible per (client, round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "ClientDataset", "DataLoader", "train_test_split"]


@dataclass
class ArrayDataset:
    """Feature/label arrays with consistent leading dimension."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.features) != len(self.labels):
            raise ValueError(
                f"features ({len(self.features)}) and labels ({len(self.labels)}) length mismatch"
            )

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.features[indices], self.labels[indices])

    def concat(self, other: "ArrayDataset") -> "ArrayDataset":
        return ArrayDataset(
            np.concatenate([self.features, other.features]),
            np.concatenate([self.labels, other.labels]),
        )


@dataclass
class ClientDataset:
    """One FL participant's local data and sensitive attribute.

    ``attribute`` is the integer class of the sensitive attribute (e.g. gender
    0/1 for the motion datasets, preference group 0/1/2 for CIFAR10).  The
    aggregation server never sees it; the attack is scored against it.
    """

    client_id: int
    train: ArrayDataset
    test: ArrayDataset
    attribute: int
    metadata: dict = field(default_factory=dict)

    @property
    def num_train(self) -> int:
        return len(self.train)

    def __repr__(self) -> str:
        return (
            f"ClientDataset(id={self.client_id}, train={len(self.train)}, "
            f"test={len(self.test)}, attribute={self.attribute})"
        )


class DataLoader:
    """Mini-batch iterator with per-epoch shuffling."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        rng: np.random.Generator,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.rng = rng
        self.shuffle = shuffle
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.features[idx], self.dataset.labels[idx]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float,
    rng: np.random.Generator,
    stratify: bool = True,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Split into train/test; stratified by label when requested.

    The paper's methodology uses 5/6 train, 1/6 test (§6.1.4), i.e.
    ``test_fraction=1/6``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(dataset.labels):
            members = np.flatnonzero(dataset.labels == label)
            members = rng.permutation(members)
            take = max(1, int(round(len(members) * test_fraction))) if len(members) > 1 else 0
            test_idx.extend(members[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        cut = max(1, int(round(n * test_fraction)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:cut]] = True
    return dataset.subset(~test_mask), dataset.subset(test_mask)
