"""Training utilities: gradient norms, clipping, parameter freezing.

These support the DP-style defenses and general training hygiene; they are
not used by the core MixNN path (which operates on parameter states, not
gradients) but belong to any complete training substrate.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["global_grad_norm", "clip_grad_norm_", "freeze", "unfreeze"]


def global_grad_norm(params: list[Parameter]) -> float:
    """Global L2 norm over all parameter gradients (missing grads count 0)."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.square(param.grad.astype(np.float64)).sum())
    return float(np.sqrt(total))


def clip_grad_norm_(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clip norm (the DP-SGD sensitivity measurement).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = (param.grad * scale).astype(np.float32)
    return norm


def freeze(params: list[Parameter]) -> None:
    """Stop gradient tracking for the given parameters (personalization layers)."""
    for param in params:
        param.requires_grad = False


def unfreeze(params: list[Parameter]) -> None:
    """Re-enable gradient tracking."""
    for param in params:
        param.requires_grad = True
