"""Optimizers.

The paper's methodology (§6.1.4) uses TensorFlow's Adam optimizer for local
training on every dataset; SGD with momentum is provided as well because ∇Sim
is motivated by the SGD gradient-fingerprint vulnerability and several tests
probe it directly.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "CohortAdam"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba), TF-default hyperparameters."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-7,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CohortAdam(Adam):
    """Adam over cohort-stacked ``(M, ...)`` parameters, updating in place.

    Identical math to :class:`Adam` — `a -= b` computes the same subtraction
    as `a = a - b`, so per-row update values stay bitwise equal — but the
    in-place write is essential for cohort training: the parameters are
    views into one ``(M, D)`` flat block, and rebinding ``param.data`` (as
    the base class does) would silently detach them from it.
    """

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
