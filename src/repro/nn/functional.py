"""Functional neural-network operations with autograd support.

Implements the operations required by the architectures in the MixNN paper:

* 2-D convolution (the two/three convolutional layers of the CIFAR10 /
  MotionSense / MobiAct model),
* non-overlapping max pooling,
* locally connected 2-D layers (the distinguishing ingredient of the
  DeepFace-style architecture used for LFW),
* softmax / log-softmax / cross-entropy,
* dropout.

Convolution is implemented with ``im2col``/``col2im`` over
``numpy.lib.stride_tricks`` so the heavy lifting stays inside BLAS matmuls.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "locally_connected2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "one_hot",
    "cohort_linear",
    "cohort_conv2d",
    "cohort_max_pool2d",
    "cohort_avg_pool2d",
    "cohort_locally_connected2d",
    "cohort_cross_entropy",
]


# ----------------------------------------------------------------------
# im2col / col2im plumbing
# ----------------------------------------------------------------------
def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int = 1) -> np.ndarray:
    """Lower image patches to columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(KH, KW)`` patch size.
    stride:
        Patch stride (same in both spatial dimensions).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, C * KH * KW, OH, OW)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, C, OH, OW, KH, KW) -> (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH, OW)
    cols = np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3))
    return cols.reshape(n, c * kh * kw, oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[:, :, i, j]
    return out


# ----------------------------------------------------------------------
# Convolution / pooling / locally connected layers
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an ``(N, C, H, W)`` input.

    ``weight`` has shape ``(O, C, KH, KW)`` and ``bias`` shape ``(O,)``.
    """
    x = as_tensor(x)
    if padding:
        x = x.pad2d(padding)
    n, c, h, w = x.shape
    o, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    cols = im2col(x.data, (kh, kw), stride)  # (N, C*KH*KW, OH, OW)
    _, k, oh, ow = cols.shape
    flat_cols = cols.reshape(n, k, oh * ow)
    w_flat = weight.data.reshape(o, k)
    out_data = np.einsum("ok,nkp->nop", w_flat, flat_cols, optimize=True).reshape(n, o, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, o, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        return Tensor._lean(out_data, "conv2d")

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, o, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("nop,nkp->ok", grad_flat, flat_cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.einsum("ok,nop->nkp", w_flat, grad_flat, optimize=True)
            dx = col2im(dcols.reshape(n, k, oh, ow), (n, c, h, w), (kh, kw), stride)
            x._accumulate(dx)

    return Tensor._make(out_data, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling with ``stride == kernel``.

    Spatial dimensions must be divisible by ``kernel`` (the experiment
    architectures are sized so this always holds).
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = blocks.max(axis=(3, 5))
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor._lean(out_data, "max_pool2d")
    mask = blocks == out_data[:, :, :, None, :, None]
    # Break ties deterministically: scale by inverse tie-count.
    counts = mask.sum(axis=(3, 5), keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = grad[:, :, :, None, :, None] * mask / counts
            x._accumulate(g.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with ``stride == kernel``."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = blocks.mean(axis=(3, 5))
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor._lean(out_data, "avg_pool2d")

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.broadcast_to(
                grad[:, :, :, None, :, None] / (kernel * kernel),
                (n, c, oh, kernel, ow, kernel),
            )
            x._accumulate(g.reshape(n, c, h, w).copy())

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


def locally_connected2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
) -> Tensor:
    """Locally connected layer: convolution with *untied* weights.

    ``weight`` has shape ``(O, OH, OW, C * KH * KW)`` — each output location
    owns its own filter bank, exactly as in DeepFace's L-layers.  ``bias`` has
    shape ``(O, OH, OW)``.  ``KH``/``KW`` are inferred from the weight and
    input geometry.
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    o, oh, ow, k = weight.shape
    # Solve the (square) kernel size from k = C * KH * KW and the geometry.
    khw = k // c
    kh = int(round(khw**0.5))
    kw = khw // kh
    if c * kh * kw != k:
        raise ValueError(f"weight patch size {k} incompatible with {c} input channels")
    expected_oh = (h - kh) // stride + 1
    expected_ow = (w - kw) // stride + 1
    if (oh, ow) != (expected_oh, expected_ow):
        raise ValueError(
            f"weight spatial shape {(oh, ow)} does not match computed output {(expected_oh, expected_ow)}"
        )
    cols = im2col(x.data, (kh, kw), stride)  # (N, K, OH, OW)
    out_data = np.einsum("oyxk,nkyx->noyx", weight.data, cols, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None]

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        return Tensor._lean(out_data, "locally_connected2d")

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            dw = np.einsum("noyx,nkyx->oyxk", grad, cols, optimize=True)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if x.requires_grad:
            dcols = np.einsum("oyxk,noyx->nkyx", weight.data, grad, optimize=True)
            x._accumulate(col2im(dcols, (n, c, h, w), (kh, kw), stride))

    return Tensor._make(out_data, parents, backward, "locally_connected2d")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = as_tensor(x) @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Softmax family and losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a one-hot float matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=np.float32)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(*labels.shape, num_classes)


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Numerically stable softmax cross-entropy with integer labels."""
    return nll_loss(log_softmax(logits, axis=-1), labels)


def mse_loss(prediction: Tensor, target) -> Tensor:
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate is zero."""
    if not training or rate <= 0.0 or not is_grad_enabled():
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# Cohort-batched kernels
# ----------------------------------------------------------------------
# These operate on a leading client axis ``M``: M clients' independent
# forward/backward passes fused into single batched numpy calls.  Inputs
# carry shapes ``(M, B, ...)`` and parameters ``(M, ...)`` — row ``m`` of
# every array belongs to client ``m`` and never mixes with other rows.
#
# Numerical contract (see README "Cohort-batched training"):
# * ``cohort_linear`` uses broadcast ``np.matmul``, which numpy evaluates
#   as one 2-D GEMM per leading slice — per-client results are
#   bit-identical to the serial ``linear`` path.
# * ``cohort_cross_entropy`` composes the same generic tensor ops as the
#   serial loss along the last axis — also bit-identical per client.
# * ``cohort_conv2d`` / ``cohort_locally_connected2d`` batch their
#   einsum contractions over ``M``, which may reassociate the reduction —
#   per-client results agree with serial within 1e-6 relative tolerance.


def cohort_linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Batched affine map over a leading client axis.

    ``x`` has shape ``(M, B, in)``, ``weight`` ``(M, out, in)`` and ``bias``
    ``(M, out)``.  Each client slice computes ``x[m] @ weight[m].T + bias[m]``
    bit-identically to the serial :func:`linear`.
    """
    x = as_tensor(x)
    out_data = np.matmul(x.data, np.swapaxes(weight.data, -1, -2))
    if bias is not None:
        out_data = out_data + bias.data[:, None, :]

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        return Tensor._lean(out_data, "cohort_linear")

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            # Mirror the serial (x @ W.T) decomposition: d(W.T) then transpose,
            # so the per-slice GEMM arguments — and hence bits — match exactly.
            dwt = np.matmul(np.swapaxes(x.data, -1, -2), grad)
            weight._accumulate(np.swapaxes(dwt, -1, -2))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=1))
        if x.requires_grad:
            x._accumulate(np.matmul(grad, weight.data))

    return Tensor._record(out_data, tuple(parents), backward, "cohort_linear")


def cohort_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Batched 2-D convolution: ``(M, N, C, H, W)`` input, ``(M, O, C, KH, KW)``
    weights, ``(M, O)`` bias — one einsum for the whole cohort."""
    x = as_tensor(x)
    xd = x.data
    p = int(padding)
    if p:
        xd = np.pad(xd, ((0, 0), (0, 0), (0, 0), (p, p), (p, p)))
    m, n, c, h, w = xd.shape
    m_w, o, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    cols = im2col(xd.reshape(m * n, c, h, w), (kh, kw), stride)
    _, k, oh, ow = cols.shape
    flat_cols = cols.reshape(m, n, k, oh * ow)
    w_flat = weight.data.reshape(m, o, k)
    out_data = np.einsum("mok,mnkp->mnop", w_flat, flat_cols, optimize=True).reshape(m, n, o, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(m, 1, o, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(p_.requires_grad for p_ in parents)):
        return Tensor._lean(out_data, "cohort_conv2d")

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(m, n, o, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("mnop,mnkp->mok", grad_flat, flat_cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(1, 3, 4)))
        if x.requires_grad:
            dcols = np.einsum("mok,mnop->mnkp", w_flat, grad_flat, optimize=True)
            dx = col2im(dcols.reshape(m * n, k, oh, ow), (m * n, c, h, w), (kh, kw), stride)
            dx = dx.reshape(m, n, c, h, w)
            if p:
                dx = dx[:, :, :, p:-p, p:-p]
            x._accumulate(dx)

    return Tensor._record(out_data, tuple(parents), backward, "cohort_conv2d")


def cohort_max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Batched non-overlapping max pooling over ``(M, N, C, H, W)`` input."""
    x = as_tensor(x)
    m, n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(m, n, c, oh, kernel, ow, kernel)
    out_data = blocks.max(axis=(4, 6))
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor._lean(out_data, "cohort_max_pool2d")
    mask = blocks == out_data[:, :, :, :, None, :, None]
    counts = mask.sum(axis=(4, 6), keepdims=True)

    def backward(grad: np.ndarray) -> None:
        g = grad[:, :, :, :, None, :, None] * mask / counts
        x._accumulate(g.reshape(m, n, c, h, w))

    return Tensor._record(out_data, (x,), backward, "cohort_max_pool2d")


def cohort_avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Batched non-overlapping average pooling over ``(M, N, C, H, W)`` input."""
    x = as_tensor(x)
    m, n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(m, n, c, oh, kernel, ow, kernel)
    out_data = blocks.mean(axis=(4, 6))
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor._lean(out_data, "cohort_avg_pool2d")

    def backward(grad: np.ndarray) -> None:
        g = np.broadcast_to(
            grad[:, :, :, :, None, :, None] / (kernel * kernel),
            (m, n, c, oh, kernel, ow, kernel),
        )
        x._accumulate(g.reshape(m, n, c, h, w).copy())

    return Tensor._record(out_data, (x,), backward, "cohort_avg_pool2d")


def cohort_locally_connected2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
) -> Tensor:
    """Batched locally connected layer: ``(M, O, OH, OW, C*KH*KW)`` weights,
    ``(M, O, OH, OW)`` bias over an ``(M, N, C, H, W)`` input."""
    x = as_tensor(x)
    m, n, c, h, w = x.shape
    m_w, o, oh, ow, k = weight.shape
    khw = k // c
    kh = int(round(khw**0.5))
    kw = khw // kh
    if c * kh * kw != k:
        raise ValueError(f"weight patch size {k} incompatible with {c} input channels")
    expected_oh = (h - kh) // stride + 1
    expected_ow = (w - kw) // stride + 1
    if (oh, ow) != (expected_oh, expected_ow):
        raise ValueError(
            f"weight spatial shape {(oh, ow)} does not match computed output {(expected_oh, expected_ow)}"
        )
    cols = im2col(x.data.reshape(m * n, c, h, w), (kh, kw), stride).reshape(m, n, k, oh, ow)
    out_data = np.einsum("moyxk,mnkyx->mnoyx", weight.data, cols, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[:, None]

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        return Tensor._lean(out_data, "cohort_locally_connected2d")

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            dw = np.einsum("mnoyx,mnkyx->moyxk", grad, cols, optimize=True)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=1))
        if x.requires_grad:
            dcols = np.einsum("moyxk,mnoyx->mnkyx", weight.data, grad, optimize=True)
            dx = col2im(dcols.reshape(m * n, k, oh, ow), (m * n, c, h, w), (kh, kw), stride)
            x._accumulate(dx.reshape(m, n, c, h, w))

    return Tensor._record(out_data, tuple(parents), backward, "cohort_locally_connected2d")


def cohort_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Per-client softmax cross-entropy over a leading client axis.

    ``logits`` has shape ``(M, B, K)`` and ``labels`` ``(M, B)``; returns the
    ``(M,)`` vector of per-client mean losses.  Composed from the same generic
    tensor ops as the serial :func:`cross_entropy` along the last axis, so
    each client's loss — and its backward — is bit-identical to the serial
    path.  Clients are independent, so seeding backward with ``ones(M)``
    yields exactly each client's own gradient in its parameter rows.
    """
    labels = np.asarray(labels, dtype=np.int64)
    m, b = labels.shape
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(m)[:, None], np.arange(b)[None, :], labels]
    return -picked.mean(axis=-1)
