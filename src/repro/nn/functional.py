"""Functional neural-network operations with autograd support.

Implements the operations required by the architectures in the MixNN paper:

* 2-D convolution (the two/three convolutional layers of the CIFAR10 /
  MotionSense / MobiAct model),
* non-overlapping max pooling,
* locally connected 2-D layers (the distinguishing ingredient of the
  DeepFace-style architecture used for LFW),
* softmax / log-softmax / cross-entropy,
* dropout.

Convolution is implemented with ``im2col``/``col2im`` over
``numpy.lib.stride_tricks`` so the heavy lifting stays inside BLAS matmuls.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "locally_connected2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "one_hot",
]


# ----------------------------------------------------------------------
# im2col / col2im plumbing
# ----------------------------------------------------------------------
def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int = 1) -> np.ndarray:
    """Lower image patches to columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(KH, KW)`` patch size.
    stride:
        Patch stride (same in both spatial dimensions).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, C * KH * KW, OH, OW)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, C, OH, OW, KH, KW) -> (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH, OW)
    cols = np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3))
    return cols.reshape(n, c * kh * kw, oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[:, :, i, j]
    return out


# ----------------------------------------------------------------------
# Convolution / pooling / locally connected layers
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an ``(N, C, H, W)`` input.

    ``weight`` has shape ``(O, C, KH, KW)`` and ``bias`` shape ``(O,)``.
    """
    x = as_tensor(x)
    if padding:
        x = x.pad2d(padding)
    n, c, h, w = x.shape
    o, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    cols = im2col(x.data, (kh, kw), stride)  # (N, C*KH*KW, OH, OW)
    _, k, oh, ow = cols.shape
    flat_cols = cols.reshape(n, k, oh * ow)
    w_flat = weight.data.reshape(o, k)
    out_data = np.einsum("ok,nkp->nop", w_flat, flat_cols, optimize=True).reshape(n, o, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, o, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, o, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("nop,nkp->ok", grad_flat, flat_cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.einsum("ok,nop->nkp", w_flat, grad_flat, optimize=True)
            dx = col2im(dcols.reshape(n, k, oh, ow), (n, c, h, w), (kh, kw), stride)
            x._accumulate(dx)

    return Tensor._make(out_data, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling with ``stride == kernel``.

    Spatial dimensions must be divisible by ``kernel`` (the experiment
    architectures are sized so this always holds).
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = blocks.max(axis=(3, 5))
    mask = blocks == out_data[:, :, :, None, :, None]
    # Break ties deterministically: scale by inverse tie-count.
    counts = mask.sum(axis=(3, 5), keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = grad[:, :, :, None, :, None] * mask / counts
            x._accumulate(g.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with ``stride == kernel``."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = blocks.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.broadcast_to(
                grad[:, :, :, None, :, None] / (kernel * kernel),
                (n, c, oh, kernel, ow, kernel),
            )
            x._accumulate(g.reshape(n, c, h, w).copy())

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


def locally_connected2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
) -> Tensor:
    """Locally connected layer: convolution with *untied* weights.

    ``weight`` has shape ``(O, OH, OW, C * KH * KW)`` — each output location
    owns its own filter bank, exactly as in DeepFace's L-layers.  ``bias`` has
    shape ``(O, OH, OW)``.  ``KH``/``KW`` are inferred from the weight and
    input geometry.
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    o, oh, ow, k = weight.shape
    # Solve the (square) kernel size from k = C * KH * KW and the geometry.
    khw = k // c
    kh = int(round(khw**0.5))
    kw = khw // kh
    if c * kh * kw != k:
        raise ValueError(f"weight patch size {k} incompatible with {c} input channels")
    expected_oh = (h - kh) // stride + 1
    expected_ow = (w - kw) // stride + 1
    if (oh, ow) != (expected_oh, expected_ow):
        raise ValueError(
            f"weight spatial shape {(oh, ow)} does not match computed output {(expected_oh, expected_ow)}"
        )
    cols = im2col(x.data, (kh, kw), stride)  # (N, K, OH, OW)
    out_data = np.einsum("oyxk,nkyx->noyx", weight.data, cols, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            dw = np.einsum("noyx,nkyx->oyxk", grad, cols, optimize=True)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if x.requires_grad:
            dcols = np.einsum("oyxk,noyx->nkyx", weight.data, grad, optimize=True)
            x._accumulate(col2im(dcols, (n, c, h, w), (kh, kw), stride))

    return Tensor._make(out_data, parents, backward, "locally_connected2d")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = as_tensor(x) @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Softmax family and losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a one-hot float matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=np.float32)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(*labels.shape, num_classes)


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Numerically stable softmax cross-entropy with integer labels."""
    return nll_loss(log_softmax(logits, axis=-1), labels)


def mse_loss(prediction: Tensor, target) -> Tensor:
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate is zero."""
    if not training or rate <= 0.0 or not is_grad_enabled():
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    return x * Tensor(mask)
