"""Model-state serialization helpers.

Two representations are used throughout the reproduction:

* the **state dict** (``name -> ndarray``) — the per-layer view the MixNN
  proxy mixes on;
* the **flat vector** — the concatenated float view that ∇Sim measures cosine
  similarity on and that the wire format transports.

``flatten``/``unflatten`` convert losslessly between the two given a
:class:`StateSpec` captured from a model.

The byte encoding (:func:`state_to_bytes`) is a raw framed format: a JSON
schema header followed by the parameters' contiguous float32 buffers, written
and read without any intermediate archive encode.  :func:`state_from_bytes`
also still reads the legacy ``.npz`` encoding (sniffed by magic), so blobs
and files produced by earlier versions keep loading.
"""

from __future__ import annotations

import io
import json
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = [
    "StateSpec",
    "spec_of",
    "flatten",
    "unflatten",
    "state_to_bytes",
    "state_from_bytes",
    "save_state",
    "load_state",
]

#: Magic prefix of the raw framed state encoding ("Raw Weights v1").
_RAW_MAGIC = b"RW01"
#: Magic prefix of a zip archive, i.e. the legacy ``.npz`` encoding.
_ZIP_MAGIC = b"PK\x03\x04"


@dataclass(frozen=True)
class StateSpec:
    """Ordered (name, shape) schema of a model's parameters."""

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(int(np.prod(shape)) for shape in self.shapes)

    @property
    def total_size(self) -> int:
        return sum(self.sizes)

    def matches(self, state: dict) -> bool:
        """Whether ``state`` has exactly this schema."""
        if tuple(state.keys()) != self.names:
            return False
        return all(tuple(np.asarray(state[n]).shape) == s for n, s in zip(self.names, self.shapes))


def spec_of(source: Module | dict) -> StateSpec:
    """Capture the :class:`StateSpec` of a model or state dict."""
    state = source.state_dict() if isinstance(source, Module) else source
    return StateSpec(
        names=tuple(state.keys()),
        shapes=tuple(tuple(np.asarray(v).shape) for v in state.values()),
    )


def flatten(state: dict) -> np.ndarray:
    """Concatenate all parameter arrays into one float32 vector."""
    if not state:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.asarray(v, dtype=np.float32).ravel() for v in state.values()])


def unflatten(vector: np.ndarray, spec: StateSpec) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`flatten` under ``spec``."""
    vector = np.asarray(vector, dtype=np.float32).ravel()
    if vector.size != spec.total_size:
        raise ValueError(f"vector has {vector.size} scalars, spec expects {spec.total_size}")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for name, shape, size in zip(spec.names, spec.shapes, spec.sizes):
        out[name] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def state_to_bytes(state: dict) -> bytes:
    """Serialize a state dict to a compact raw-framed byte string.

    This is the plaintext wire format participants encrypt to the enclave
    key.  Layout: ``RW01 || u32 header_len || header || buffers`` where the
    header is JSON ``{"names": [...], "shapes": [[...], ...]}`` and the
    buffers are each parameter's contiguous float32 bytes in header order —
    arrays already in contiguous float32 layout are appended without a copy.
    """
    # ascontiguousarray would promote 0-d scalars to 1-d and copy unnecessarily
    # for the (overwhelmingly common) already-contiguous case.
    arrays = [
        a if a.flags.c_contiguous else np.ascontiguousarray(a)
        for a in (np.asarray(value, dtype=np.float32) for value in state.values())
    ]
    header = json.dumps(
        {"names": list(state.keys()), "shapes": [list(a.shape) for a in arrays]},
        separators=(",", ":"),
    ).encode()
    parts = [_RAW_MAGIC, len(header).to_bytes(4, "big"), header]
    # reshape(-1) is a view on the (already contiguous) buffer; it also turns
    # 0-d scalars into 1-element vectors, which memoryview cannot cast.
    parts.extend(memoryview(a.reshape(-1)).cast("B") for a in arrays)
    return b"".join(parts)


def state_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_to_bytes`, preserving key order.

    Raw-framed blobs re-materialize as zero-copy float32 views onto ``blob``
    (read-only; every consumer that mutates copies first).  Legacy ``.npz``
    blobs are detected by magic and loaded through numpy.
    """
    if blob[:4] == _ZIP_MAGIC:
        with np.load(io.BytesIO(blob)) as archive:
            return OrderedDict((name, archive[name]) for name in archive.files)
    if blob[:4] != _RAW_MAGIC:
        raise ValueError("unrecognized state encoding (neither raw-framed nor .npz)")
    header_len = int.from_bytes(blob[4:8], "big")
    header = json.loads(blob[8 : 8 + header_len].decode())
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 8 + header_len
    for name, shape in zip(header["names"], header["shapes"]):
        size = int(np.prod(shape)) if shape else 1
        nbytes = 4 * size
        array = np.frombuffer(blob, dtype=np.float32, count=size, offset=offset)
        out[name] = array.reshape(shape)
        offset += nbytes
    if offset != len(blob):
        raise ValueError(f"state blob has {len(blob) - offset} trailing bytes")
    return out


def save_state(state: dict, path) -> None:
    """Persist a state dict (or any name→array mapping) to a file.

    Writes the raw framed ``RW01`` encoding (see :func:`state_to_bytes`), which
    only :func:`load_state`/:func:`state_from_bytes` read — not ``np.load``.
    Files previously written in the ``.npz`` encoding still load fine.
    """
    with open(path, "wb") as handle:
        handle.write(state_to_bytes(state))


def load_state(path) -> "OrderedDict[str, np.ndarray]":
    """Load a state dict previously written by :func:`save_state`."""
    with open(path, "rb") as handle:
        return state_from_bytes(handle.read())
