"""Model-state serialization helpers.

Two representations are used throughout the reproduction:

* the **state dict** (``name -> ndarray``) — the per-layer view the MixNN
  proxy mixes on;
* the **flat vector** — the concatenated float view that ∇Sim measures cosine
  similarity on and that the wire format transports.

``flatten``/``unflatten`` convert losslessly between the two given a
:class:`StateSpec` captured from a model.  :class:`StateSchema` extends the
spec with the *flat-plane contract*: every parameter name maps to a fixed
``(offset, shape, dtype=float32)`` slot in one contiguous vector, so a state
dict can be materialized as zero-copy views onto that vector and a round's
updates can live in one ``(N, D)`` matrix (see
:mod:`repro.federated.flat`).

The byte encoding (:func:`state_to_bytes`) is a raw framed format: a JSON
schema header followed by the parameters' contiguous float32 buffers, written
and read without any intermediate archive encode.  Because the buffers are
laid out back to back in schema order, the payload of a raw-framed blob *is*
the flat vector — :func:`flat_from_bytes` reads it as one zero-copy float32
view and :func:`flat_to_bytes` writes it from one, which lets transport,
crypto, and aggregation share a single allocation.  :func:`state_from_bytes`
also still reads the legacy ``.npz`` encoding (sniffed by magic), so blobs
and files produced by earlier versions keep loading.
"""

from __future__ import annotations

import io
import json
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = [
    "FrameError",
    "StateSpec",
    "StateSchema",
    "spec_of",
    "schema_of",
    "flatten",
    "unflatten",
    "state_to_bytes",
    "state_from_bytes",
    "flat_to_bytes",
    "flat_from_bytes",
    "save_state",
    "load_state",
]


class FrameError(ValueError):
    """A state blob violates the ``RW01`` framing contract.

    Raised on unknown magic, a header length pointing outside the blob, a
    header that is not the expected JSON shape, or a payload whose size does
    not match the declared schema — every adversarial truncation or bit-flip
    lands here (or in the crypto layer's MAC check) rather than mis-parsing
    silently.  Subclasses ``ValueError`` so pre-existing callers keep
    working.
    """

#: Magic prefix of the raw framed state encoding ("Raw Weights v1").
_RAW_MAGIC = b"RW01"
#: Magic prefix of a zip archive, i.e. the legacy ``.npz`` encoding.
_ZIP_MAGIC = b"PK\x03\x04"


@dataclass(frozen=True)
class StateSpec:
    """Ordered (name, shape) schema of a model's parameters."""

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(int(np.prod(shape)) for shape in self.shapes)

    @property
    def total_size(self) -> int:
        return sum(self.sizes)

    def matches(self, state: dict) -> bool:
        """Whether ``state`` has exactly this schema."""
        if tuple(state.keys()) != self.names:
            return False
        return all(tuple(np.asarray(state[n]).shape) == s for n, s in zip(self.names, self.shapes))


def spec_of(source: Module | dict) -> StateSpec:
    """Capture the :class:`StateSpec` of a model or state dict."""
    state = source.state_dict() if isinstance(source, Module) else source
    return StateSpec(
        names=tuple(state.keys()),
        shapes=tuple(tuple(np.asarray(v).shape) for v in state.values()),
    )


class StateSchema:
    """The flat parameter plane's contract for one model architecture.

    Maps every parameter name to a fixed ``(offset, shape, dtype=float32)``
    slot inside one contiguous float32 vector of ``total_size`` scalars.  All
    flat-plane consumers (aggregation, mixing, defenses, attacks, transport)
    speak this schema instead of re-marshalling their own dict-of-arrays
    representation.

    Instances are interned per ``(names, shapes)`` via :func:`schema_of`, so
    schema identity checks are cheap pointer comparisons in the hot paths.
    """

    __slots__ = ("names", "shapes", "sizes", "offsets", "total_size", "_index")

    #: the one dtype of the flat plane (the wire format's dtype as well)
    dtype = np.float32

    def __init__(self, names: tuple[str, ...], shapes: tuple[tuple[int, ...], ...]) -> None:
        if len(names) != len(shapes):
            raise ValueError(f"{len(names)} names for {len(shapes)} shapes")
        self.names = tuple(names)
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self.sizes = tuple(int(np.prod(shape)) for shape in self.shapes)
        offsets = []
        offset = 0
        for size in self.sizes:
            offsets.append(offset)
            offset += size
        self.offsets = tuple(offsets)
        self.total_size = offset
        #: name -> (offset, size, shape)
        self._index = {
            name: (off, size, shape)
            for name, off, size, shape in zip(self.names, self.offsets, self.sizes, self.shapes)
        }

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, StateSchema):
            return NotImplemented
        return self.names == other.names and self.shapes == other.shapes

    def __hash__(self) -> int:
        return hash((self.names, self.shapes))

    def __repr__(self) -> str:
        return f"StateSchema(params={len(self.names)}, total_size={self.total_size})"

    def matches(self, state: dict) -> bool:
        """Whether ``state`` has exactly this schema (names, order, shapes)."""
        if tuple(state.keys()) != self.names:
            return False
        return all(
            tuple(np.asarray(state[n]).shape) == s for n, s in zip(self.names, self.shapes)
        )

    def span(self, name: str) -> tuple[int, int]:
        """``(offset, end)`` of one parameter inside the flat vector."""
        offset, size, _ = self._index[name]
        return offset, offset + size

    # ------------------------------------------------------------------
    # Flat <-> dict
    # ------------------------------------------------------------------
    def views(self, vector: np.ndarray) -> "OrderedDict[str, np.ndarray]":
        """Zero-copy dict-of-arrays view onto a flat vector.

        The returned arrays share memory with ``vector``: in-place writes are
        visible on both sides, and the views are read-only iff ``vector`` is.
        """
        if vector.size != self.total_size:
            raise ValueError(f"vector has {vector.size} scalars, schema expects {self.total_size}")
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, offset, size, shape in zip(self.names, self.offsets, self.sizes, self.shapes):
            out[name] = vector[offset : offset + size].reshape(shape)
        return out

    def write_into(self, row: np.ndarray, state: dict) -> None:
        """Copy a dict state into a flat row (by name, casting to float32)."""
        for name, offset, size, _ in zip(self.names, self.offsets, self.sizes, self.shapes):
            row[offset : offset + size] = np.asarray(state[name], dtype=np.float32).ravel()

    def pack(self, state: dict) -> np.ndarray:
        """Materialize a dict state as a fresh contiguous flat vector."""
        vector = np.empty(self.total_size, dtype=np.float32)
        self.write_into(vector, state)
        return vector


#: interning table: (names, shapes) -> StateSchema
_SCHEMA_CACHE: dict[tuple, StateSchema] = {}


def _intern_schema(names: tuple[str, ...], shapes: tuple[tuple[int, ...], ...]) -> StateSchema:
    """One shared StateSchema instance per (names, shapes)."""
    key = (names, shapes)
    schema = _SCHEMA_CACHE.get(key)
    if schema is None:
        schema = _SCHEMA_CACHE[key] = StateSchema(names, shapes)
    return schema


def schema_of(source: Module | dict) -> StateSchema:
    """The interned :class:`StateSchema` of a model or state dict."""
    state = source.state_dict() if isinstance(source, Module) else source
    return _intern_schema(
        tuple(state.keys()),
        tuple(tuple(np.asarray(v).shape) for v in state.values()),
    )


def flatten(state: dict) -> np.ndarray:
    """Concatenate all parameter arrays into one float32 vector."""
    if not state:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.asarray(v, dtype=np.float32).ravel() for v in state.values()])


def unflatten(vector: np.ndarray, spec: StateSpec) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`flatten` under ``spec``."""
    vector = np.asarray(vector, dtype=np.float32).ravel()
    if vector.size != spec.total_size:
        raise ValueError(f"vector has {vector.size} scalars, spec expects {spec.total_size}")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for name, shape, size in zip(spec.names, spec.shapes, spec.sizes):
        out[name] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def state_to_bytes(state: dict) -> bytes:
    """Serialize a state dict to a compact raw-framed byte string.

    This is the plaintext wire format participants encrypt to the enclave
    key.  Layout: ``RW01 || u32 header_len || header || buffers`` where the
    header is JSON ``{"names": [...], "shapes": [[...], ...]}`` and the
    buffers are each parameter's contiguous float32 bytes in header order —
    arrays already in contiguous float32 layout are appended without a copy.
    """
    # ascontiguousarray would promote 0-d scalars to 1-d and copy unnecessarily
    # for the (overwhelmingly common) already-contiguous case.
    arrays = [
        a if a.flags.c_contiguous else np.ascontiguousarray(a)
        for a in (np.asarray(value, dtype=np.float32) for value in state.values())
    ]
    header = json.dumps(
        {"names": list(state.keys()), "shapes": [list(a.shape) for a in arrays]},
        separators=(",", ":"),
    ).encode()
    parts = [_RAW_MAGIC, len(header).to_bytes(4, "big"), header]
    # reshape(-1) is a view on the (already contiguous) buffer; it also turns
    # 0-d scalars into 1-element vectors, which memoryview cannot cast.
    parts.extend(memoryview(a.reshape(-1)).cast("B") for a in arrays)
    return b"".join(parts)


def _parse_raw_header(blob: bytes) -> tuple[tuple[str, ...], tuple[tuple[int, ...], ...], int]:
    """Validate and parse an ``RW01`` header; returns (names, shapes, offset).

    Every structural violation — truncated length field, header length past
    the end of the blob, non-JSON header bytes, missing/malformed
    names/shapes — raises :class:`FrameError` before any payload is read.
    """
    if len(blob) < 8:
        raise FrameError(
            f"truncated frame: {len(blob)} bytes is too short for the RW01 "
            "magic and header length"
        )
    header_len = int.from_bytes(blob[4:8], "big")
    if header_len > len(blob) - 8:
        raise FrameError(
            f"corrupt frame: header length {header_len} exceeds the "
            f"{len(blob) - 8} bytes that follow it"
        )
    try:
        header = json.loads(blob[8 : 8 + header_len].decode())
        names = tuple(str(n) for n in header["names"])
        shapes = tuple(tuple(int(d) for d in shape) for shape in header["shapes"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        # json.JSONDecodeError subclasses ValueError; a flipped bit in the
        # header lands here rather than mis-parsing.
        raise FrameError("corrupt frame header (not the expected JSON schema)") from exc
    if len(names) != len(shapes):
        raise FrameError(f"corrupt frame header: {len(names)} names for {len(shapes)} shapes")
    if any(d < 0 for shape in shapes for d in shape):
        raise FrameError("corrupt frame header: negative dimension in a shape")
    return names, shapes, 8 + header_len


def state_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_to_bytes`, preserving key order.

    Raw-framed blobs re-materialize as zero-copy float32 views onto ``blob``
    (read-only; every consumer that mutates copies first).  Legacy ``.npz``
    blobs are detected by magic and loaded through numpy.  Malformed frames
    raise :class:`FrameError`.
    """
    if blob[:4] == _ZIP_MAGIC:
        with np.load(io.BytesIO(blob)) as archive:
            return OrderedDict((name, archive[name]) for name in archive.files)
    if blob[:4] != _RAW_MAGIC:
        raise FrameError("unrecognized state encoding (neither raw-framed nor .npz)")
    names, shapes, offset = _parse_raw_header(blob)
    sizes = [int(np.prod(shape)) if shape else 1 for shape in shapes]
    expected = offset + 4 * sum(sizes)
    if expected != len(blob):
        excess = len(blob) - expected
        detail = f"{excess} trailing bytes" if excess > 0 else "truncated"
        raise FrameError(
            f"corrupt frame: payload is {len(blob) - offset} bytes but the "
            f"header declares {expected - offset} ({detail})"
        )
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, shape, size in zip(names, shapes, sizes):
        array = np.frombuffer(blob, dtype=np.float32, count=size, offset=offset)
        out[name] = array.reshape(shape)
        offset += 4 * size
    return out


def flat_to_bytes(schema: StateSchema, vector: np.ndarray) -> bytes:
    """Serialize a flat vector under ``schema`` to the raw-framed encoding.

    Produces byte-for-byte the same blob as ``state_to_bytes(schema.views(
    vector))`` — the RW01 payload *is* the flat buffer — but appends it as a
    single memoryview instead of one per parameter.
    """
    vector = np.asarray(vector, dtype=np.float32)
    if vector.size != schema.total_size:
        raise ValueError(f"vector has {vector.size} scalars, schema expects {schema.total_size}")
    if not vector.flags.c_contiguous:
        vector = np.ascontiguousarray(vector)
    header = json.dumps(
        {"names": list(schema.names), "shapes": [list(s) for s in schema.shapes]},
        separators=(",", ":"),
    ).encode()
    return b"".join(
        [_RAW_MAGIC, len(header).to_bytes(4, "big"), header, memoryview(vector.reshape(-1)).cast("B")]
    )


def flat_from_bytes(blob: bytes) -> tuple[StateSchema, np.ndarray]:
    """Read a state blob as ``(schema, flat_vector)`` in one allocation-free step.

    Raw-framed blobs yield a single zero-copy read-only float32 view covering
    the whole payload (the per-parameter dict view is ``schema.views(vector)``
    when needed).  Legacy ``.npz`` blobs are loaded through numpy and packed.
    """
    if blob[:4] == _ZIP_MAGIC:
        state = state_from_bytes(blob)
        schema = schema_of(state)
        return schema, schema.pack(state)
    if blob[:4] != _RAW_MAGIC:
        raise FrameError("unrecognized state encoding (neither raw-framed nor .npz)")
    names, shapes, offset = _parse_raw_header(blob)
    schema = _intern_schema(names, shapes)
    expected = offset + 4 * schema.total_size
    if expected != len(blob):
        excess = len(blob) - expected
        detail = f"{excess} trailing bytes" if excess > 0 else "truncated"
        raise FrameError(
            f"corrupt frame: payload is {len(blob) - offset} bytes but the "
            f"schema declares {expected - offset} ({detail})"
        )
    vector = np.frombuffer(blob, dtype=np.float32, count=schema.total_size, offset=offset)
    return schema, vector


def save_state(state: dict, path) -> None:
    """Persist a state dict (or any name→array mapping) to a file.

    Writes the raw framed ``RW01`` encoding (see :func:`state_to_bytes`), which
    only :func:`load_state`/:func:`state_from_bytes` read — not ``np.load``.
    Files previously written in the ``.npz`` encoding still load fine.
    """
    with open(path, "wb") as handle:
        handle.write(state_to_bytes(state))


def load_state(path) -> "OrderedDict[str, np.ndarray]":
    """Load a state dict previously written by :func:`save_state`."""
    with open(path, "rb") as handle:
        return state_from_bytes(handle.read())
