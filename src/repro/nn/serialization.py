"""Model-state serialization helpers.

Two representations are used throughout the reproduction:

* the **state dict** (``name -> ndarray``) — the per-layer view the MixNN
  proxy mixes on;
* the **flat vector** — the concatenated float view that ∇Sim measures cosine
  similarity on and that the wire format transports.

``flatten``/``unflatten`` convert losslessly between the two given a
:class:`StateSpec` captured from a model.
"""

from __future__ import annotations

import io
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = [
    "StateSpec",
    "spec_of",
    "flatten",
    "unflatten",
    "state_to_bytes",
    "state_from_bytes",
    "save_state",
    "load_state",
]


@dataclass(frozen=True)
class StateSpec:
    """Ordered (name, shape) schema of a model's parameters."""

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(int(np.prod(shape)) for shape in self.shapes)

    @property
    def total_size(self) -> int:
        return sum(self.sizes)

    def matches(self, state: dict) -> bool:
        """Whether ``state`` has exactly this schema."""
        if tuple(state.keys()) != self.names:
            return False
        return all(tuple(np.asarray(state[n]).shape) == s for n, s in zip(self.names, self.shapes))


def spec_of(source: Module | dict) -> StateSpec:
    """Capture the :class:`StateSpec` of a model or state dict."""
    state = source.state_dict() if isinstance(source, Module) else source
    return StateSpec(
        names=tuple(state.keys()),
        shapes=tuple(tuple(np.asarray(v).shape) for v in state.values()),
    )


def flatten(state: dict) -> np.ndarray:
    """Concatenate all parameter arrays into one float32 vector."""
    if not state:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.asarray(v, dtype=np.float32).ravel() for v in state.values()])


def unflatten(vector: np.ndarray, spec: StateSpec) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`flatten` under ``spec``."""
    vector = np.asarray(vector, dtype=np.float32).ravel()
    if vector.size != spec.total_size:
        raise ValueError(f"vector has {vector.size} scalars, spec expects {spec.total_size}")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for name, shape, size in zip(spec.names, spec.shapes, spec.sizes):
        out[name] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def state_to_bytes(state: dict) -> bytes:
    """Serialize a state dict to a compact ``.npz`` byte string.

    This is the plaintext wire format participants encrypt to the enclave key.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{name: np.asarray(value, dtype=np.float32) for name, value in state.items()})
    return buffer.getvalue()


def state_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_to_bytes`, preserving key order."""
    with np.load(io.BytesIO(blob)) as archive:
        return OrderedDict((name, archive[name]) for name in archive.files)


def save_state(state: dict, path) -> None:
    """Persist a state dict (or any name→array mapping) to an ``.npz`` file."""
    with open(path, "wb") as handle:
        handle.write(state_to_bytes(state))


def load_state(path) -> "OrderedDict[str, np.ndarray]":
    """Load a state dict previously written by :func:`save_state`."""
    with open(path, "rb") as handle:
        return state_from_bytes(handle.read())
