"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
model construction is fully reproducible — a hard requirement for ∇Sim, whose
reference models must be retrainable bit-for-bit from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "he_uniform", "zeros", "normal"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — TensorFlow's default dense/conv initializer."""
    fan_in, fan_out = _fan(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initializer, suited to ReLU stacks."""
    fan_in, _ = _fan(shape)
    std = float(np.sqrt(2.0 / max(fan_in, 1)))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan(shape)
    limit = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(np.float32)
