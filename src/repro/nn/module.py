"""Module / parameter containers.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this project
needs: named parameters, recursive traversal, ``state_dict`` round-tripping,
and train/eval mode.  Parameter *names* double as the layer identifiers that
the MixNN proxy mixes on, so naming is deterministic and insertion-ordered.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True, op="parameter")


class Module:
    """Base class for neural-network building blocks."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration through attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode and gradient bookkeeping
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State round-tripping
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Snapshot parameter values (copies, detached from the graph)."""
        return OrderedDict((name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            value = np.asarray(value, dtype=np.float32)
            if own[name].shape != value.shape:
                raise ValueError(f"shape mismatch for {name}: {own[name].shape} vs {value.shape}")
            own[name].data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Feed-forward container applying children in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_list: list[Module] = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
            self._layer_list.append(layer)

    def forward(self, x):
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layer_list)

    def __len__(self) -> int:
        return len(self._layer_list)

    def __getitem__(self, index: int) -> Module:
        return self._layer_list[index]
