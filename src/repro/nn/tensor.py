"""Autograd tensor engine.

This module implements a small but complete reverse-mode automatic
differentiation engine on top of numpy.  It is the substrate that replaces
TensorFlow in the original MixNN evaluation: everything downstream (federated
clients, the ``∇Sim`` attack, the MixNN proxy) only ever consumes parameter
arrays and gradients, which this engine produces with the same semantics as a
mainstream framework.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (``float32`` by default) plus an
  optional gradient buffer.
* Each differentiable operation records a backward closure and its parent
  tensors; :meth:`Tensor.backward` runs a topological sort and accumulates
  gradients (summing over broadcast axes, like every major framework).
* Gradient tracking can be suspended with the :func:`no_grad` context manager,
  used by evaluation loops and by the attack code when it only needs forward
  passes.  The flag is **thread-local**: a ``no_grad`` evaluation on one
  thread cannot disable recording for a training step in flight on another
  (the simulation trains cohorts in a thread pool).
* When gradients are off (or no input requires them), ops skip the backward
  closure and parent bookkeeping entirely and return a bare output tensor
  through :meth:`Tensor._lean` — the hot path for evaluation and attack
  forward passes.
* :class:`GradTape` is the lean recording mode behind cohort-batched
  training: ops append themselves to a flat tape in execution order, and
  :meth:`GradTape.backward` walks the tape once in reverse — no visited-set
  topological sort, and intermediate gradient buffers are dropped as soon as
  their closure has fired.  Reverse execution order is a valid topological
  order because every consumer of a tensor is recorded after it.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "GradTape",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "concatenate",
    "stack",
]


class _EngineState(threading.local):
    """Per-thread autograd state: the grad switch and the active tape."""

    def __init__(self) -> None:
        self.grad_enabled = True
        self.tape: list[Tensor] | None = None


_STATE = _EngineState()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient graph construction.

    Thread-local: only the calling thread stops recording, so concurrent
    training threads are unaffected.
    """
    previous = _STATE.grad_enabled
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations on this thread currently record gradients."""
    return _STATE.grad_enabled


class GradTape:
    """Lean autograd mode: a flat op tape walked once backward.

    Entering the tape makes every recorded op append its output tensor to
    ``self.nodes`` (in execution order) on the current thread.  The graph
    structure is still captured by the backward closures, so
    :meth:`Tensor.backward` keeps working on tensors built under a tape;
    :meth:`backward` here is the cheap path — a single reverse walk with
    in-place gradient accumulation and eager intermediate-buffer release.
    """

    __slots__ = ("nodes", "_previous")

    def __init__(self) -> None:
        self.nodes: list[Tensor] = []
        self._previous: list[Tensor] | None = None

    def __enter__(self) -> "GradTape":
        self._previous = _STATE.tape
        _STATE.tape = self.nodes
        return self

    def __exit__(self, *exc_info) -> None:
        _STATE.tape = self._previous
        self._previous = None

    def backward(self, output: "Tensor", grad: np.ndarray | None = None) -> None:
        """Backpropagate from ``output`` through the recorded tape.

        ``output`` must have been recorded on this tape.  Non-scalar outputs
        need an explicit seed ``grad`` (e.g. ones over a per-client loss
        vector).  Intermediate gradients are freed as soon as consumed; leaf
        gradients (parameters) are left accumulated for the optimizer.
        """
        if not output.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad tracking")
        if grad is None:
            if output.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(output.data)
        output._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(self.nodes):
            node_grad = node.grad
            if node_grad is not None:
                if node._backward is not None:
                    node._backward(node_grad)
                # Every tape entry is op-created (leaves are never recorded),
                # so its buffer is dead once its closure fired.
                node.grad = None

    def clear(self) -> None:
        """Forget the recorded ops (reuse the tape across steps)."""
        self.nodes.clear()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        op: str = "leaf",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _STATE.grad_enabled
        self._backward = backward
        self._parents: tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self.op = op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False, op="detach")

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, op="copy")

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            # Own the buffer: callers may pass (and later reuse) their arrays.
            self.grad = grad.copy()
        else:
            # In place — the buffer is private from the copy above, so no
            # reallocation per accumulation.
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad tracking")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float32))

        # Iterative post-order DFS with an explicit parent iterator per
        # frame: each node enters the stack exactly once (marked at
        # discovery), so fan-out can no longer inflate the stack with
        # duplicate entries — it stays O(live nodes), not O(edges).
        ordered: list[Tensor] = []
        visited: set[int] = {id(self)}
        stack: list[tuple[Tensor, Iterable[Tensor]]] = [(self, iter(self._parents))]
        while stack:
            node, parents = stack[-1]
            for parent in parents:
                if parent.requires_grad and id(parent) not in visited:
                    visited.add(id(parent))
                    stack.append((parent, iter(parent._parents)))
                    break
            else:
                ordered.append(node)
                stack.pop()

        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operator construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lean(data, op: str) -> "Tensor":
        """Bare output tensor: no grad, no parents, no closure retained."""
        out = object.__new__(Tensor)
        out.data = np.asarray(data, dtype=np.float32)
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.op = op
        return out

    @staticmethod
    def _record(
        data,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Build a grad-tracking output node; callers guarantee grad is
        enabled and at least one parent requires it."""
        out = object.__new__(Tensor)
        out.data = np.asarray(data, dtype=np.float32)
        out.grad = None
        out.requires_grad = True
        out._backward = backward
        out._parents = parents
        out.op = op
        tape = _STATE.tape
        if tape is not None:
            tape.append(out)
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Compatibility builder for ops that precompute their closure."""
        if _STATE.grad_enabled:
            for p in parents:
                if p.requires_grad:
                    return Tensor._record(data, tuple(parents), backward, op)
        return Tensor._lean(data, op)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not (_STATE.grad_enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._lean(out_data, "add")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._record(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(-self.data, "neg")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._record(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not (_STATE.grad_enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._lean(out_data, "mul")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._record(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if not (_STATE.grad_enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._lean(out_data, "div")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return Tensor._record(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "pow")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._record(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if not (_STATE.grad_enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._lean(out_data, "matmul")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._record(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "exp")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._record(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "log")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._record(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(self.data * mask, "relu")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._record(self.data * mask, (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "tanh")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._record(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "sigmoid")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._record(out_data, (self,), backward, "sigmoid")

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "clip")
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._record(out_data, (self,), backward, "clip")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "abs")
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._record(out_data, (self,), backward, "abs")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "sum")

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._record(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "max")

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                for a in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, a)
                    out = np.expand_dims(out, a)
            mask = self.data == out
            # Split gradient evenly among ties, matching numpy-style subgradients.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._record(out_data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "reshape")
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._record(out_data, (self,), backward, "reshape")

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the leading (batch) dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "transpose")
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._record(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "getitem")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._record(out_data, (self,), backward, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        p = int(padding)
        out_data = np.pad(self.data, ((0, 0), (0, 0), (p, p), (p, p)))
        if not (_STATE.grad_enabled and self.requires_grad):
            return Tensor._lean(out_data, "pad2d")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[:, :, p:-p, p:-p])

        return Tensor._record(out_data, (self,), backward, "pad2d")


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (_STATE.grad_enabled and any(t.requires_grad for t in tensors)):
        return Tensor._lean(out_data, "concatenate")
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._record(out_data, tuple(tensors), backward, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not (_STATE.grad_enabled and any(t.requires_grad for t in tensors)):
        return Tensor._lean(out_data, "stack")

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._record(out_data, tuple(tensors), backward, "stack")
