"""Autograd tensor engine.

This module implements a small but complete reverse-mode automatic
differentiation engine on top of numpy.  It is the substrate that replaces
TensorFlow in the original MixNN evaluation: everything downstream (federated
clients, the ``∇Sim`` attack, the MixNN proxy) only ever consumes parameter
arrays and gradients, which this engine produces with the same semantics as a
mainstream framework.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (``float32`` by default) plus an
  optional gradient buffer.
* Each differentiable operation records a backward closure and its parent
  tensors; :meth:`Tensor.backward` runs a topological sort and accumulates
  gradients (summing over broadcast axes, like every major framework).
* Gradient tracking can be suspended with the :func:`no_grad` context manager,
  used by evaluation loops and by the attack code when it only needs forward
  passes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor", "concatenate", "stack"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        op: str = "leaf",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = backward
        self._parents: tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self.op = op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False, op="detach")

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, op="copy")

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            # Own the buffer: callers may pass (and later reuse) their arrays.
            self.grad = grad.copy()
        else:
            # In place — the buffer is private from the copy above, so no
            # reallocation per accumulation.
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad tracking")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float32))

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operator construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, op=op)
        return Tensor(data, requires_grad=True, parents=[p for p in parents if p.requires_grad], backward=backward, op=op)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward, "clip")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward, "abs")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                for a in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, a)
                    out = np.expand_dims(out, a)
            mask = self.data == out
            # Split gradient evenly among ties, matching numpy-style subgradients.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the leading (batch) dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        p = int(padding)
        out_data = np.pad(self.data, ((0, 0), (0, 0), (p, p), (p, p)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[:, :, p:-p, p:-p])

        return Tensor._make(out_data, (self,), backward, "pad2d")


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward, "stack")
