"""Loss functions used by the federated training loops and attack models."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "BCEWithLogitsLoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels (mean reduction)."""

    def __call__(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, labels)


class MSELoss:
    """Mean squared error."""

    def __call__(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target)


class BCEWithLogitsLoss:
    """Numerically stable binary cross-entropy on raw logits.

    Uses the identity ``bce(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """

    def __call__(self, logits: Tensor, target) -> Tensor:
        target = Tensor(np.asarray(target, dtype=np.float32))
        positive = logits.clip(0.0, np.inf)
        stable = ((-logits.abs()).exp() + 1.0).log()
        return (positive - logits * target + stable).mean()
