"""Concrete neural-network layers.

Covers the two architectures evaluated in the paper:

* CIFAR10 / MotionSense / MobiAct — two (or three, for the §6.5 system
  experiment) :class:`Conv2d` layers followed by three :class:`Linear` layers;
* LFW — a DeepFace-like stack of :class:`Conv2d`, :class:`MaxPool2d`,
  :class:`LocallyConnected2d` and :class:`Linear` layers.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "LocallyConnected2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "CohortLinear",
    "CohortConv2d",
    "CohortLocallyConnected2d",
    "CohortMaxPool2d",
    "CohortAvgPool2d",
    "CohortFlatten",
]


def _default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.glorot_uniform(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        """Spatial output size for an ``h × w`` input."""
        oh = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        return oh, ow

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, pad={self.padding})"
        )


class LocallyConnected2d(Module):
    """Convolution with untied (per-location) weights, as in DeepFace."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        in_size: tuple[int, int],
        kernel_size: int,
        stride: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        h, w = in_size
        oh = (h - kernel_size) // stride + 1
        ow = (w - kernel_size) // stride + 1
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.out_size = (oh, ow)
        k = in_channels * kernel_size * kernel_size
        # He-style scaling on the patch fan-in, one filter bank per location.
        std = float(np.sqrt(2.0 / k))
        self.weight = Parameter((rng.standard_normal((out_channels, oh, ow, k)) * std).astype(np.float32))
        self.bias = Parameter(init.zeros((out_channels, oh, ow))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.locally_connected2d(x, self.weight, self.bias, stride=self.stride)

    def __repr__(self) -> str:
        return (
            f"LocallyConnected2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, out_size={self.out_size})"
        )


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size})"


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size})"


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class CohortLinear(Module):
    """Batched :class:`Linear` over a leading client axis.

    ``weight`` is an ``(M, out, in)`` parameter and ``bias`` ``(M, out)`` —
    typically views into a cohort's ``(M, D)`` flat weight block.
    """

    def __init__(self, weight: Parameter, bias: Parameter | None = None) -> None:
        super().__init__()
        self.weight = weight
        self.bias = bias

    def forward(self, x: Tensor) -> Tensor:
        return F.cohort_linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        m, out, inp = self.weight.shape
        return f"CohortLinear(cohort={m}, in={inp}, out={out})"


class CohortConv2d(Module):
    """Batched :class:`Conv2d`: ``(M, O, C, KH, KW)`` weights, ``(M, O)`` bias."""

    def __init__(
        self,
        weight: Parameter,
        bias: Parameter | None = None,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__()
        self.weight = weight
        self.bias = bias
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.cohort_conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        m, o, c, k, _ = self.weight.shape
        return f"CohortConv2d(cohort={m}, in={c}, out={o}, k={k})"


class CohortLocallyConnected2d(Module):
    """Batched :class:`LocallyConnected2d` with an ``(M, O, OH, OW, K)`` weight."""

    def __init__(self, weight: Parameter, bias: Parameter | None = None, stride: int = 1) -> None:
        super().__init__()
        self.weight = weight
        self.bias = bias
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.cohort_locally_connected2d(x, self.weight, self.bias, stride=self.stride)


class CohortMaxPool2d(Module):
    """Batched non-overlapping max pooling over ``(M, N, C, H, W)`` input."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.cohort_max_pool2d(x, self.kernel_size)


class CohortAvgPool2d(Module):
    """Batched non-overlapping average pooling over ``(M, N, C, H, W)`` input."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.cohort_avg_pool2d(x, self.kernel_size)


class CohortFlatten(Module):
    """Flatten all but the leading client and batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)


class Dropout(Module):
    """Inverted dropout active only in training mode."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
