"""``repro.nn`` — numpy autograd neural-network substrate.

Replaces the TensorFlow dependency of the original MixNN implementation with a
self-contained engine: tensors with reverse-mode autodiff, the layer types the
paper's architectures need (dense, conv2d, maxpool, locally connected), losses
and optimizers (Adam, SGD), plus state-dict/flat-vector serialization used by
the federated pipeline and the ∇Sim attack.
"""

from . import functional
from .init import glorot_uniform, he_normal, he_uniform, normal, zeros
from .layers import (
    AvgPool2d,
    CohortAvgPool2d,
    CohortConv2d,
    CohortFlatten,
    CohortLinear,
    CohortLocallyConnected2d,
    CohortMaxPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LocallyConnected2d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .loss import BCEWithLogitsLoss, CrossEntropyLoss, MSELoss
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, CohortAdam, Optimizer
from .serialization import (
    StateSpec,
    flatten,
    load_state,
    save_state,
    spec_of,
    state_from_bytes,
    state_to_bytes,
    unflatten,
)
from .utils import clip_grad_norm_, freeze, global_grad_norm, unfreeze
from .tensor import GradTape, Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "GradTape",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "LocallyConnected2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "CohortLinear",
    "CohortConv2d",
    "CohortLocallyConnected2d",
    "CohortMaxPool2d",
    "CohortAvgPool2d",
    "CohortFlatten",
    "CrossEntropyLoss",
    "MSELoss",
    "BCEWithLogitsLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "CohortAdam",
    "StateSpec",
    "spec_of",
    "flatten",
    "unflatten",
    "state_to_bytes",
    "state_from_bytes",
    "save_state",
    "load_state",
    "global_grad_norm",
    "clip_grad_norm_",
    "freeze",
    "unfreeze",
    "glorot_uniform",
    "he_normal",
    "he_uniform",
    "normal",
    "zeros",
]
