"""Figure 9 benchmark: CDF of close-gradient neighbor counts (§6.4).

Paper: "All participants have at least a few other alter egos with very close
gradients", defeating layer re-linking after the mix.
"""

import pytest

from repro.experiments import figure9
from repro.experiments.reporting import PAPER_CLAIMS

from .conftest import DATASETS, print_report


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure9(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure9.run_figure9(dataset), iterations=1, rounds=1
    )
    checks = figure9.shape_checks(result)
    print_report(
        f"Figure 9 ({dataset}) — paper: {PAPER_CLAIMS['figure9']['statement']}",
        result.render(),
        checks,
    )
    assert checks["typical_participant_has_several"]
