"""Figure 5 benchmark: utility curves for FL / MixNN / noisy gradient.

Regenerates all four panels (one per dataset) at CI scale and prints the
accuracy-per-round table next to the paper's claim that MixNN matches
classical FL while noisy gradient trails by ~10 points.
"""

import pytest

from repro.experiments import figure5
from repro.experiments.reporting import PAPER_CLAIMS

from .conftest import DATASETS, print_report


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure5(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure5.run_figure5(dataset), iterations=1, rounds=1
    )
    checks = figure5.shape_checks(result)
    print_report(
        f"Figure 5 ({dataset}) — paper: {PAPER_CLAIMS['figure5']['statement']}",
        result.render(),
        checks,
    )
    assert checks["mixnn_equals_fl"], "§4.2 equivalence must hold exactly"
    assert checks["fl_learns"]
