"""Figure 8 benchmark: inference accuracy vs background-knowledge ratio.

Paper: more background knowledge helps the adversary against classical FL and
noisy gradient; MixNN stays near random guess at every ratio.
"""

import pytest

from repro.experiments import figure8
from repro.experiments.reporting import PAPER_CLAIMS

from .conftest import DATASETS, print_report

#: Trimmed sweep for the benchmark run (the runner exposes the full one).
BENCH_RATIOS = (0.25, 0.5, 1.0)


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure8(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure8.run_figure8(dataset, rounds=3, ratios=BENCH_RATIOS),
        iterations=1,
        rounds=1,
    )
    checks = figure8.shape_checks(result)
    print_report(
        f"Figure 8 ({dataset}) — paper: {PAPER_CLAIMS['figure8']['statement']}",
        result.render(),
        checks,
    )
    assert checks["fl_leaks_at_full_knowledge"]
    assert checks["mixnn_flat_near_guess"]
