"""Micro-benchmarks of the hot primitives.

Not tied to a paper figure — these quantify the substrate itself: hybrid
encryption, the proxy's receive path, batch mixing, the flat-parameter-plane
update algebra, conv forward/backward, and one federated client epoch.
"""

import hashlib
import hmac as hmac_mod
import json
import secrets
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.models import paper_cnn
from repro.federated.client import LocalTrainingConfig, train_locally
from repro.federated.update import aggregate_updates, aggregate_updates_reference
from repro.mixnn.crypto import (
    _keystream_reference,
    _mac,
    _xor_reference,
    decrypt,
    encrypt,
    process_keypair,
)
from repro.mixnn.enclave import SGXEnclaveSim
from repro.mixnn.mixing import mix_updates
from repro.mixnn.proxy import MixNNProxy
from repro.nn import CrossEntropyLoss, Tensor
from repro.utils import native
from repro.utils.rng import rng_from_seed

from .conftest import make_updates
from .run_benchmarks import (
    gradsim_attack_flat,
    gradsim_attack_reference,
    make_gradsim_workload,
)


@pytest.fixture(scope="module")
def keypair():
    return process_keypair()


# ----------------------------------------------------------------------
# Seed-equivalent hybrid encryption: the pre-vectorization code path,
# reproduced from the retained reference primitives.  Emits the identical
# wire format (cross-checked below), so new-vs-seed timing is apples to
# apples.
# ----------------------------------------------------------------------
def _encrypt_seed_path(public, plaintext: bytes) -> bytes:
    session_key = secrets.token_bytes(32)
    padding = secrets.token_bytes(public.modulus_bytes - 32 - 3)
    padded = b"\x00\x02" + padding + b"\x00" + session_key
    kem = pow(int.from_bytes(padded, "big"), public.e, public.n).to_bytes(public.modulus_bytes, "big")
    nonce = secrets.token_bytes(16)
    enc_key = hashlib.sha256(session_key + b"enc").digest()
    mac_key = hashlib.sha256(session_key + b"mac").digest()
    body = _xor_reference(plaintext, _keystream_reference(enc_key, nonce, len(plaintext)))
    mac = _mac(mac_key, nonce, body)
    return len(kem).to_bytes(2, "big") + kem + nonce + mac + body


def _decrypt_seed_path(keypair, ciphertext: bytes) -> bytes:
    kem_len = int.from_bytes(ciphertext[:2], "big")
    kem = ciphertext[2 : 2 + kem_len]
    offset = 2 + kem_len
    nonce = ciphertext[offset : offset + 16]
    mac = ciphertext[offset + 16 : offset + 48]
    body = ciphertext[offset + 48 :]
    padded = pow(int.from_bytes(kem, "big"), keypair.d, keypair.n)  # no CRT
    raw = padded.to_bytes(keypair.public.modulus_bytes, "big")
    session_key = raw[-32:]
    enc_key = hashlib.sha256(session_key + b"enc").digest()
    mac_key = hashlib.sha256(session_key + b"mac").digest()
    assert hmac_mod.compare_digest(mac, _mac(mac_key, nonce, body))
    return _xor_reference(body, _keystream_reference(enc_key, nonce, len(body)))


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def model():
    return paper_cnn((3, 8, 8), 10, rng_from_seed(0))


class TestCryptoMicro:
    def test_encrypt_100kb(self, benchmark, keypair):
        payload = b"\x42" * 100_000
        blob = benchmark(lambda: encrypt(keypair.public, payload))
        assert len(blob) > len(payload)

    def test_decrypt_100kb(self, benchmark, keypair):
        blob = encrypt(keypair.public, b"\x42" * 100_000)
        out = benchmark(lambda: decrypt(keypair, blob))
        assert len(out) == 100_000

    def test_encrypt_1mb(self, benchmark, keypair):
        payload = b"\x42" * 1_048_576
        blob = benchmark(lambda: encrypt(keypair.public, payload))
        assert len(blob) > len(payload)

    def test_decrypt_1mb(self, benchmark, keypair):
        blob = encrypt(keypair.public, b"\x42" * 1_048_576)
        out = benchmark(lambda: decrypt(keypair, blob))
        assert len(out) == 1_048_576


class TestCryptoSpeedupVsSeed:
    """The tentpole acceptance: ≥10× on encrypt+decrypt of a 1 MB update."""

    def test_wire_format_is_cross_compatible(self, keypair):
        payload = b"\x37" * 10_000
        # New decrypt reads seed-path ciphertexts and vice versa.
        assert decrypt(keypair, _encrypt_seed_path(keypair.public, payload)) == payload
        assert _decrypt_seed_path(keypair, encrypt(keypair.public, payload)) == payload

    def test_encrypt_decrypt_1mb_speedup(self, keypair):
        payload = b"\x42" * 1_048_576

        def new_path():
            assert decrypt(keypair, encrypt(keypair.public, payload)) == payload

        def seed_path():
            assert _decrypt_seed_path(keypair, _encrypt_seed_path(keypair.public, payload)) == payload

        threshold = 10.0 if native.available() else 2.0
        # A wall-clock ratio this tight (~11× measured vs the 10× bar on the
        # reference container) can be dented by neighbor load; re-measure a
        # couple of times before declaring a regression.
        for attempt in range(3):
            new_seconds = _best_of(new_path, repeats=5)
            seed_seconds = _best_of(seed_path)
            speedup = seed_seconds / new_seconds
            print(f"\n1 MB encrypt+decrypt: seed {seed_seconds*1e3:.1f} ms → new {new_seconds*1e3:.1f} ms "
                  f"({speedup:.1f}×, native={native.available()}, attempt {attempt + 1})")
            if speedup >= threshold:
                break
        assert speedup >= threshold


class TestFlatPlaneSpeedupVsBaseline:
    """The PR-2 tentpole acceptance: ≥5× on the round-critical update algebra.

    Baselines come from ``BENCH_2026-07-30.json`` — recorded on this
    container at the pre-flat-plane revision (``aggregate_16_updates`` from
    the snapshot run, ``gradsim_attack`` back-filled with the seed scoring
    path at the same revision).  The flat implementations must beat them by
    5×; the retained ``*_reference`` paths are also measured live as a
    drift check (printed, not asserted — container load can shift them).
    """

    BASELINE_PATH = Path(__file__).parent / "BENCH_2026-07-30.json"
    REQUIRED_SPEEDUP = 5.0

    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads(self.BASELINE_PATH.read_text())["results"]

    def _assert_speedup_vs_baseline(self, label, baseline_seconds, fn):
        # Wall-clock ratios can be dented by neighbor load; re-measure a few
        # times before declaring a regression (same policy as the crypto bar).
        for attempt in range(3):
            new_seconds = _best_of(fn, repeats=5)
            speedup = baseline_seconds / new_seconds
            print(
                f"\n{label}: baseline {baseline_seconds*1e3:.2f} ms → "
                f"flat {new_seconds*1e3:.2f} ms ({speedup:.1f}×, attempt {attempt + 1})"
            )
            if speedup >= self.REQUIRED_SPEEDUP:
                break
        assert speedup >= self.REQUIRED_SPEEDUP

    def test_aggregate_16_updates_speedup(self, baseline, model):
        updates = make_updates(model, 16)
        reference_seconds = _best_of(lambda: aggregate_updates_reference(updates))
        print(f"\nlive reference aggregate: {reference_seconds*1e3:.2f} ms")
        self._assert_speedup_vs_baseline(
            "aggregate_16_updates",
            baseline["aggregate_16_updates_seconds"],
            lambda: aggregate_updates(updates),
        )

    def test_gradsim_attack_speedup(self, baseline, model):
        broadcast, references, updates = make_gradsim_workload(model)
        reference_seconds = _best_of(
            lambda: gradsim_attack_reference(broadcast, references, updates)
        )
        print(f"\nlive reference gradsim scoring: {reference_seconds*1e3:.2f} ms")
        self._assert_speedup_vs_baseline(
            "gradsim_attack",
            baseline["gradsim_attack_seconds"],
            lambda: gradsim_attack_flat(broadcast, references, updates),
        )

    def test_flat_and_reference_scores_agree(self, model):
        """The speed win must not change the attack's decisions."""
        broadcast, references, updates = make_gradsim_workload(model)
        flat = gradsim_attack_flat(broadcast, references, updates)
        reference = gradsim_attack_reference(broadcast, references, updates)
        assert list(flat) == list(reference)
        for participant in reference:
            for attribute, value in reference[participant].items():
                assert flat[participant][attribute] == pytest.approx(value, abs=1e-5)
            assert max(flat[participant], key=flat[participant].get) == max(
                reference[participant], key=reference[participant].get
            )


class TestMixingMicro:
    def test_batch_mix_16_updates(self, benchmark, model):
        updates = make_updates(model, 16)
        emitted = benchmark(lambda: mix_updates(updates, rng_from_seed(0)))
        assert len(emitted) == 16

    def test_aggregate_16_updates(self, benchmark, model):
        updates = make_updates(model, 16)
        out = benchmark(lambda: aggregate_updates(updates))
        assert set(out) == set(updates[0].state)


class TestProxyMicro:
    def test_full_round_through_proxy(self, benchmark, model, keypair):
        updates = make_updates(model, 8)

        def round_trip():
            proxy = MixNNProxy(
                enclave=SGXEnclaveSim(keypair=keypair, constant_time=False),
                k=8,
                rng=rng_from_seed(0),
            )
            messages = [proxy.encrypt_for_proxy(u) for u in updates]
            return proxy.process_round(messages)

        emitted = benchmark.pedantic(round_trip, iterations=1, rounds=5)
        assert len(emitted) == 8


class TestNNMicro:
    def test_forward_backward_batch32(self, benchmark, model):
        x = rng_from_seed(1).standard_normal((32, 3, 8, 8)).astype(np.float32)
        labels = rng_from_seed(2).integers(0, 10, 32)
        loss_fn = CrossEntropyLoss()

        def step():
            logits = model(Tensor(x))
            loss = loss_fn(logits, labels)
            model.zero_grad()
            loss.backward()
            return loss.item()

        value = benchmark(step)
        assert np.isfinite(value)

    def test_one_local_epoch(self, benchmark, model, tiny_motionsense=None):
        from repro.data.base import ArrayDataset

        rng = rng_from_seed(3)
        data = ArrayDataset(
            rng.standard_normal((64, 3, 8, 8)).astype(np.float32), rng.integers(0, 10, 64)
        )
        config = LocalTrainingConfig(local_epochs=1, batch_size=32)
        loss = benchmark.pedantic(
            lambda: train_locally(model, data, config, rng_from_seed(4)), iterations=1, rounds=3
        )
        assert np.isfinite(loss)
