"""Micro-benchmarks of the hot primitives.

Not tied to a paper figure — these quantify the substrate itself: hybrid
encryption, the proxy's receive path, batch mixing, conv forward/backward,
and one federated client epoch.
"""

import numpy as np
import pytest

from repro.experiments.models import paper_cnn
from repro.federated.client import LocalTrainingConfig, train_locally
from repro.federated.update import aggregate_updates
from repro.mixnn.crypto import decrypt, encrypt, process_keypair
from repro.mixnn.enclave import SGXEnclaveSim
from repro.mixnn.mixing import mix_updates
from repro.mixnn.proxy import MixNNProxy
from repro.nn import CrossEntropyLoss, Tensor
from repro.utils.rng import rng_from_seed

from .conftest import make_updates


@pytest.fixture(scope="module")
def keypair():
    return process_keypair()


@pytest.fixture(scope="module")
def model():
    return paper_cnn((3, 8, 8), 10, rng_from_seed(0))


class TestCryptoMicro:
    def test_encrypt_100kb(self, benchmark, keypair):
        payload = b"\x42" * 100_000
        blob = benchmark(lambda: encrypt(keypair.public, payload))
        assert len(blob) > len(payload)

    def test_decrypt_100kb(self, benchmark, keypair):
        blob = encrypt(keypair.public, b"\x42" * 100_000)
        out = benchmark(lambda: decrypt(keypair, blob))
        assert len(out) == 100_000


class TestMixingMicro:
    def test_batch_mix_16_updates(self, benchmark, model):
        updates = make_updates(model, 16)
        emitted = benchmark(lambda: mix_updates(updates, rng_from_seed(0)))
        assert len(emitted) == 16

    def test_aggregate_16_updates(self, benchmark, model):
        updates = make_updates(model, 16)
        out = benchmark(lambda: aggregate_updates(updates))
        assert set(out) == set(updates[0].state)


class TestProxyMicro:
    def test_full_round_through_proxy(self, benchmark, model, keypair):
        updates = make_updates(model, 8)

        def round_trip():
            proxy = MixNNProxy(
                enclave=SGXEnclaveSim(keypair=keypair, constant_time=False),
                k=8,
                rng=rng_from_seed(0),
            )
            messages = [proxy.encrypt_for_proxy(u) for u in updates]
            return proxy.process_round(messages)

        emitted = benchmark.pedantic(round_trip, iterations=1, rounds=5)
        assert len(emitted) == 8


class TestNNMicro:
    def test_forward_backward_batch32(self, benchmark, model):
        x = rng_from_seed(1).standard_normal((32, 3, 8, 8)).astype(np.float32)
        labels = rng_from_seed(2).integers(0, 10, 32)
        loss_fn = CrossEntropyLoss()

        def step():
            logits = model(Tensor(x))
            loss = loss_fn(logits, labels)
            model.zero_grad()
            loss.backward()
            return loss.item()

        value = benchmark(step)
        assert np.isfinite(value)

    def test_one_local_epoch(self, benchmark, model, tiny_motionsense=None):
        from repro.data.base import ArrayDataset

        rng = rng_from_seed(3)
        data = ArrayDataset(
            rng.standard_normal((64, 3, 8, 8)).astype(np.float32), rng.integers(0, 10, 64)
        )
        config = LocalTrainingConfig(local_epochs=1, batch_size=32)
        loss = benchmark.pedantic(
            lambda: train_locally(model, data, config, rng_from_seed(4)), iterations=1, rounds=3
        )
        assert np.isfinite(loss)
