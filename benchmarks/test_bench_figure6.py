"""Figure 6 benchmark: per-participant accuracy CDF at round 6.

Paper: "most of the participants have an accuracy with noisy gradient smaller
than MixNN for all datasets (on average 0.56 for noisy gradient against 0.68
for MixNN)".
"""

import pytest

from repro.experiments import figure6
from repro.experiments.reporting import PAPER_CLAIMS

from .conftest import DATASETS, print_report


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure6(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure6.run_figure6(dataset), iterations=1, rounds=1
    )
    checks = figure6.shape_checks(result)
    print_report(
        f"Figure 6 ({dataset}) — paper: {PAPER_CLAIMS['figure6']['statement']}",
        result.render(),
        checks,
    )
    assert checks["noisy_mean_below_mixnn_mean"]
    assert checks["mixnn_matches_fl_mean"]
