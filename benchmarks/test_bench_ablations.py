"""Ablation benchmarks — design choices DESIGN.md §6 calls out.

These go beyond the paper's figures:

* **k-sweep** — the proxy's list size trades latency for privacy: a small
  streaming window leaks arrival locality (mixed layers come from temporally
  nearby participants), so inference accuracy rises as k shrinks.
* **granularity** — mixing whole models provides only batch unlinkability;
  per-layer (the paper's scheme) and per-parameter granularities protect.
* **noise-σ sweep** — the noisy-gradient baseline's privacy/utility knob.
"""

import numpy as np
import pytest

from repro.attacks import GradSimAttack
from repro.data import SyntheticMotionSense
from repro.defenses import GaussianNoiseDefense, MixNNDefense
from repro.experiments.config import params_for
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation
from repro.mixnn.crypto import process_keypair
from repro.mixnn.enclave import SGXEnclaveSim
from repro.utils.rng import rng_from_seed

from .conftest import print_report

ROUNDS = 4


def attacked_run(defense, rounds=ROUNDS, seed=0):
    dataset = SyntheticMotionSense(seed=seed)
    params = params_for("motionsense")
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(42),
        mode="active",
        attack_epochs=params.attack_epochs,
    )
    sim = FederatedSimulation(
        dataset, model_fn, params.simulation_config(seed=seed, rounds=rounds),
        defense=defense, attack=attack,
    )
    result = sim.run()
    return float(np.mean(result.inference_values())), result.accuracy_curve()[-1]


def mixnn_defense(k=None, granularity="layer"):
    return MixNNDefense(
        k=k,
        granularity=granularity,
        enclave=SGXEnclaveSim(keypair=process_keypair()),
        rng=rng_from_seed(7),
    )


def test_ablation_k_sweep(benchmark):
    """Streaming window size vs inference accuracy (MotionSense, active ∇Sim)."""

    def sweep():
        rows = []
        for k in (2, 4, None):  # None = full-round buffering (paper setting)
            inference, accuracy = attacked_run(mixnn_defense(k=k))
            rows.append((k if k is not None else "full-round", inference, accuracy))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    body = "\n".join(f"  k={k!s:>10}  inference={i:.3f}  final-accuracy={a:.3f}" for k, i, a in rows)
    print_report("Ablation: proxy list size k (smaller k leaks arrival locality)", body)
    full_round = rows[-1][1]
    assert full_round <= rows[0][1] + 0.05, "full-round buffering must not leak more than k=2"


def test_ablation_granularity(benchmark):
    """Mixing granularity vs inference accuracy."""

    def sweep():
        rows = []
        for granularity in ("model", "layer", "parameter"):
            inference, accuracy = attacked_run(mixnn_defense(granularity=granularity))
            rows.append((granularity, inference, accuracy))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    body = "\n".join(f"  granularity={g:>10}  inference={i:.3f}  final-accuracy={a:.3f}" for g, i, a in rows)
    print_report("Ablation: mixing granularity (model / layer / parameter)", body)
    by_granularity = {g: i for g, i, _ in rows}
    # Whole-model mixing only unlinks identities, the fingerprint survives in
    # the permuted slots, so it must never protect better than per-layer.
    assert by_granularity["layer"] <= by_granularity["model"] + 0.1


def test_ablation_noise_sigma(benchmark):
    """Noise scale vs (privacy, utility) for the noisy-gradient baseline."""

    def sweep():
        rows = []
        for sigma in (0.01, 0.05, 0.2):
            inference, accuracy = attacked_run(GaussianNoiseDefense(sigma=sigma))
            rows.append((sigma, inference, accuracy))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    body = "\n".join(f"  sigma={s:<5}  inference={i:.3f}  final-accuracy={a:.3f}" for s, i, a in rows)
    print_report("Ablation: noisy-gradient σ (privacy rises, utility falls)", body)
    assert rows[0][1] >= rows[-1][1] - 0.1, "more noise must not leak more"
    assert rows[0][2] >= rows[-1][2] - 0.05, "less noise must not hurt utility more"
