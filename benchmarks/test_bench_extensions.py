"""Extension benchmarks: defense roster, passive vs active, re-linking.

These extend the paper's evaluation (DESIGN.md §6): the five-defense
comparison renders §1's positioning argument as numbers; passive-vs-active
quantifies §5's two adversary modes; the re-linking run turns §6.4's
robustness argument into a measured attack failure.
"""

import numpy as np

from repro.experiments.extensions import (
    render_defense_comparison,
    run_defense_comparison,
    run_passive_vs_active,
    run_relink_robustness,
)

from .conftest import print_report


def test_defense_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: run_defense_comparison("motionsense", rounds=4), iterations=1, rounds=1
    )
    print_report(
        "Extension: five defenses vs active ∇Sim (MotionSense)",
        render_defense_comparison(rows),
    )
    by_name = {row.defense: row for row in rows}
    # MixNN and secure aggregation must match classical FL utility...
    assert abs(by_name["mixnn"].final_accuracy - by_name["classical-fl"].final_accuracy) < 0.02
    assert abs(by_name["secure-aggregation"].final_accuracy - by_name["classical-fl"].final_accuracy) < 0.05
    # ...and both must (near-)eliminate the leak while FL leaks massively.
    assert by_name["classical-fl"].leakage > 0.3
    assert by_name["mixnn"].leakage < 0.15
    assert by_name["secure-aggregation"].leakage < 0.15


def test_passive_vs_active(benchmark):
    curves = benchmark.pedantic(
        lambda: run_passive_vs_active("motionsense", rounds=4), iterations=1, rounds=1
    )
    body = "\n".join(
        f"  {mode:>8}: " + "  ".join(f"{v:.3f}" for v in curve) for mode, curve in curves.items()
    )
    print_report("Extension: passive vs active ∇Sim on classical FL", body)
    assert np.mean(curves["active"]) >= np.mean(curves["passive"]) - 0.1
    assert np.mean(curves["passive"]) > 0.5  # the curious server already leaks


def test_relink_robustness(benchmark):
    report, dataset = benchmark.pedantic(
        lambda: run_relink_robustness("motionsense", rounds=2), iterations=1, rounds=1
    )
    body = (
        f"  piece-level attribute accuracy: {report.piece_accuracy:.3f} "
        f"(random guess {dataset.random_guess_accuracy:.2f})\n"
        f"  all-pieces-consistent rate:     {report.consistency_rate:.3f}"
    )
    print_report("Extension: §6.4 re-linking attack against mixed updates", body)
    # Finding: individual layer pieces can still be classified by attribute
    # (population-level information survives the mix), but the chimera
    # updates are internally inconsistent — so regrouping the pieces of one
    # participant has no anchor, and participant-level inference stays at
    # chance (Figure 7).  The robustness claim is about the latter.
    assert report.consistency_rate < 0.5
    expected_consistency_if_linked = 1.0  # a working re-link would regroup pieces
    assert report.consistency_rate < expected_consistency_if_linked / 2
