"""Figure 7 benchmark: active ∇Sim inference accuracy per learning round.

Paper: near-perfect inference on classical FL (1.00 CIFAR10, ~0.80
MotionSense, ~0.94 MobiAct, ~0.66 LFW), MixNN at random guess, noisy gradient
in between.
"""

import pytest

from repro.experiments import figure7
from repro.experiments.reporting import PAPER_CLAIMS

from .conftest import DATASETS, print_report


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure7(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure7.run_figure7(dataset), iterations=1, rounds=1
    )
    checks = figure7.shape_checks(result)
    expected_fl = PAPER_CLAIMS["figure7"]["classical_fl"][dataset]
    measured_fl = result.curves["classical-fl"][-1]
    print_report(
        f"Figure 7 ({dataset}) — paper FL leak {expected_fl:.2f}, measured {measured_fl:.2f}",
        result.render(),
        checks,
    )
    assert checks["fl_leaks_strongly"]
    assert checks["mixnn_near_random_guess"]
    assert checks["ordering_fl_ge_noisy_ge_mixnn"]
