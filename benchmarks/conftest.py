"""Benchmark configuration.

Figure benchmarks run a full (CI-scale) federated experiment once via
``benchmark.pedantic`` and print the regenerated rows/series next to the
paper's claims; micro-benchmarks time the hot primitives with the default
pytest-benchmark statistics.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.federated.update import ModelUpdate
from repro.utils.rng import rng_from_seed

DATASETS = ("cifar10", "motionsense", "mobiact", "lfw")


def make_updates(model, count: int, seed: int = 0, round_index: int = 0) -> list[ModelUpdate]:
    """Synthesize ``count`` distinct updates around a model's current state."""
    rng = rng_from_seed(seed)
    base = model.state_dict()
    updates = []
    for sender in range(count):
        state = OrderedDict(
            (name, value + 0.05 * rng.standard_normal(value.shape).astype(np.float32))
            for name, value in base.items()
        )
        updates.append(ModelUpdate(sender_id=sender, round_index=round_index, state=state))
    return updates


def print_report(header: str, body: str, checks: dict[str, bool] | None = None) -> None:
    """Print a paper-vs-measured block under the benchmark output."""
    print()
    print("=" * 72)
    print(header)
    print("-" * 72)
    print(body)
    if checks is not None:
        for name, passed in checks.items():
            print(f"  [{'ok' if passed else 'FAIL'}] {name}")
    print("=" * 72)
