"""§6.5 benchmark: MixNN proxy system performance.

Paper numbers (Laptop DELL i7, TF 2.4): 26.9 MB / 0.19 s per update for the
2-conv model (0.17 s decrypt + 0.02 s store), 51.3 MB / 0.22 s for the 3-conv
variant, 0.03 s per mixing pass.  The *simulated* rows evaluate the calibrated
enclave cost model at the paper's update sizes; the *measured* rows wall-clock
this implementation's real decrypt→store→mix pipeline at CI scale.
"""

import pytest

from repro.experiments.reporting import PAPER_CLAIMS
from repro.experiments.system_perf import (
    measure_real_pipeline,
    render,
    run_system_perf,
    simulate_paper_scale,
)

from .conftest import print_report


def test_system_perf_table(benchmark):
    results = benchmark.pedantic(run_system_perf, iterations=1, rounds=1)
    print_report(
        f"§6.5 — paper: {PAPER_CLAIMS['system']['statement']}",
        render(results),
    )
    simulated = {row.architecture: row for row in results["simulated_paper_scale"]}
    assert simulated["2conv+3fc"].process_seconds == pytest.approx(0.19, abs=0.01)
    assert simulated["3conv+3fc"].process_seconds == pytest.approx(0.22, abs=0.01)
    measured = results["measured_ci_scale"]
    assert measured[1].update_mb > measured[0].update_mb  # grows with model
    assert measured[0].mix_seconds < measured[0].decrypt_seconds  # mixing ≪ decrypt


def test_simulated_cost_model_is_cheap_to_evaluate(benchmark):
    rows = benchmark(simulate_paper_scale)
    assert len(rows) == 2


def test_measured_two_conv_pipeline(benchmark):
    row = benchmark.pedantic(
        lambda: measure_real_pipeline(2, num_updates=8), iterations=1, rounds=3
    )
    assert row.process_seconds > 0
