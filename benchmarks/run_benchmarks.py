#!/usr/bin/env python
"""Record a perf snapshot so future PRs can track the trajectory.

Runs the crypto/transport/mixing micro-benchmarks, the flat-parameter-plane
attack/aggregation micro-benchmarks, the round-throughput sweep (clients/sec
at 16–1024 simulated clients, flat vs retained reference path, with a
per-phase train/mix/reduce/merge breakdown), the sharded-round sweep
(hierarchical aggregation at 1/2/4/8 leaf shards over 64–1024 clients,
modeled critical-path throughput), the cohort-batched-training comparison
(serial vs one stacked forward/backward at 16/64/256-client cohorts), the
fault-recovery sweep (round throughput and recovery percentiles at
0/5/20 % proxy-crash under 5 % frame corruption), the scheduler
micro-benchmark (heap vs calendar queue at 10³/10⁴/10⁵ pending events), the
population-scale measurement (a 10⁶-client federation training 10⁴ clients
per round with cohort-bounded memory), and the
§6.5 system-perf pipeline measurement directly (no pytest involved), and
writes the results to ``BENCH_<date>.json`` next to this script (override
with ``--output``).  An existing snapshot for the same date is never
overwritten — the git revision is appended to the filename instead.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import subprocess
import sys
import time
from pathlib import Path


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=Path(__file__).parent,
        )
        return out.stdout.strip() or None
    except Exception:
        return None


#: ∇Sim scoring micro-benchmark workload (matches the recorded baseline):
#: 64 observed updates, 8 sensitive classes, the paper_cnn (3, 8, 8) → 10.
GRADSIM_UPDATES = 64
GRADSIM_CLASSES = 8

#: round-throughput sweep sizes (simulated clients per round)
THROUGHPUT_COHORTS = (16, 64, 256, 512, 1024)


def _make_updates(model, count: int):
    """conftest.make_updates, importable whether run as a script or a module."""
    if str(Path(__file__).parent) not in sys.path:
        sys.path.insert(0, str(Path(__file__).parent))
    from conftest import make_updates

    return make_updates(model, count)


def make_gradsim_workload(model, rng_seed: int = 42):
    """Broadcast state, synthetic per-class reference states, and updates."""
    from collections import OrderedDict

    import numpy as np

    from repro.utils.rng import rng_from_seed

    broadcast = model.state_dict()
    rng = rng_from_seed(rng_seed)
    references = {
        attribute: OrderedDict(
            (name, value + 0.05 * rng.standard_normal(value.shape).astype(np.float32))
            for name, value in broadcast.items()
        )
        for attribute in range(GRADSIM_CLASSES)
    }
    updates = _make_updates(model, GRADSIM_UPDATES)
    return broadcast, references, updates


def gradsim_attack_flat(broadcast, references, updates):
    """The flat-plane ∇Sim scoring step (what ``on_round`` runs per round)."""
    from repro.attacks.background import reference_delta_matrix
    from repro.attacks.gradsim import score_updates

    class_deltas = reference_delta_matrix(references, broadcast)
    return score_updates(updates, broadcast, class_deltas)


def gradsim_attack_reference(broadcast, references, updates):
    """The retained dict-based scoring path (the pre-flat-plane seed code)."""
    from repro.attacks.gradsim import score_updates_reference
    from repro.federated.update import state_delta_reference
    from repro.nn.serialization import flatten

    class_deltas = {
        attribute: flatten(state_delta_reference(state, broadcast))
        for attribute, state in references.items()
    }
    return score_updates_reference(updates, broadcast, class_deltas)


def round_throughput(model, repeats: int) -> dict:
    """Server-side round overhead (mix + aggregate), flat vs reference path.

    Each cohort row also carries ``phase_seconds``, a wall-clock breakdown of
    where a flat round goes: ``train`` (synthetic update synthesis — the
    benchmark's stand-in for local training), ``mix`` (layer-wise MixNN
    shuffle), ``reduce`` (the flat-plane mean over the row matrix), and
    ``merge`` (rebuilding the named state dict from the reduced vector), so
    a throughput sag at large cohorts is attributable to a specific stage.
    """
    from repro.federated.flat import flat_mean, flat_rows
    from repro.federated.update import aggregate_updates, aggregate_updates_reference
    from repro.mixnn.mixing import mix_updates, mix_updates_reference
    from repro.nn.serialization import schema_of
    from repro.utils.rng import rng_from_seed

    sweep = {}
    for cohort in THROUGHPUT_COHORTS:
        updates = _make_updates(model, cohort)

        def flat_round():
            mixed = mix_updates(updates, rng_from_seed(0))
            return aggregate_updates(mixed)

        def reference_round():
            mixed = mix_updates_reference(updates, rng_from_seed(0))
            return aggregate_updates_reference(mixed)

        flat_seconds = _best_of(flat_round, repeats)
        reference_seconds = _best_of(reference_round, repeats)
        mixed = mix_updates(updates, rng_from_seed(0))
        schema = schema_of(mixed[0].state)
        rows = flat_rows(mixed, schema)
        reduced = flat_mean(rows, schema)
        sweep[str(cohort)] = {
            "flat_round_seconds": flat_seconds,
            "reference_round_seconds": reference_seconds,
            "flat_clients_per_sec": cohort / flat_seconds,
            "reference_clients_per_sec": cohort / reference_seconds,
            "speedup": reference_seconds / flat_seconds,
            "phase_seconds": {
                "train": _best_of(lambda c=cohort: _make_updates(model, c), repeats),
                "mix": _best_of(
                    lambda u=updates: mix_updates(u, rng_from_seed(0)), repeats
                ),
                "reduce": _best_of(lambda r=rows, s=schema: flat_mean(r, s), repeats),
                "merge": _best_of(lambda v=reduced, s=schema: s.views(v), repeats),
            },
        }
    return sweep


#: sharded-round sweep: cohort sizes × leaf-shard counts.  Throughput is
#: scored on the *modeled critical path* — ``max`` per-shard compute plus the
#: root merge — because on a single-core container the inline backend runs
#: leaves sequentially; wall-clock converges to the critical path exactly
#: when cores ≥ shards, so both are recorded alongside ``cores``.
SHARDED_COHORTS = (64, 256, 1024)
SHARDED_SHARD_COUNTS = (1, 2, 4, 8)


def sharded_round_throughput() -> dict:
    """Hierarchical-aggregation round throughput per (cohort × shard) cell.

    Drives :class:`~repro.federated.sharding.ShardedRoundEngine` directly
    (no accuracy evaluation, no scenario plane) over a lazy synthetic
    population with the linear-probe model: one warm-up round materializes
    the cohort, then one measured round reports the engine's own per-phase
    timings.  ``modeled_round_seconds = max(train_i + reduce_i) + merge`` —
    the wall-clock a round would take with one core per leaf shard —
    and ``modeled_speedup_vs_1shard`` is the acceptance number (≥ 2.5× at
    256+ clients with 4+ shards).  Deterministic training, single measured
    round per cell.
    """
    import os

    from repro.data import SyntheticPopulation
    from repro.experiments.models import model_fn_for
    from repro.federated import LocalTrainingConfig
    from repro.federated.client import ClientPopulation
    from repro.federated.sharding import ShardedRoundEngine
    from repro.nn.serialization import schema_of
    from repro.utils.rng import rng_from_seed

    local = LocalTrainingConfig(local_epochs=1, batch_size=8)
    section: dict = {"cores": os.cpu_count(), "backend": "inline", "cohorts": {}}
    for cohort in SHARDED_COHORTS:
        dataset = SyntheticPopulation(population_size=cohort, seed=0)
        model_fn = model_fn_for(dataset)
        population = ClientPopulation.for_dataset(dataset, model_fn, local, seed=0)
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        schema = schema_of(broadcast)
        client_ids = population.client_ids(range(cohort))
        cells = {}
        baseline_modeled = None
        for num_shards in SHARDED_SHARD_COUNTS:
            engine = ShardedRoundEngine(population, schema, num_shards, seed=0)
            try:
                engine.train_round(client_ids, broadcast, round_index=0)  # warm-up
                engine.train_round(client_ids, broadcast, round_index=1)
                timings = engine.last_timings
            finally:
                engine.close()
            shard_seconds = [
                train + reduce
                for train, reduce in zip(
                    timings["per_shard_train_seconds"],
                    timings["per_shard_reduce_seconds"],
                )
            ]
            modeled = max(shard_seconds) + timings["merge_seconds"]
            cell = {
                "num_shards": num_shards,
                "wall_round_seconds": timings["wall_seconds"],
                "max_shard_seconds": max(shard_seconds),
                "merge_seconds": timings["merge_seconds"],
                "modeled_round_seconds": modeled,
                "wall_clients_per_sec": cohort / timings["wall_seconds"],
                "modeled_clients_per_sec": cohort / modeled,
            }
            if num_shards == SHARDED_SHARD_COUNTS[0]:
                baseline_modeled = modeled
            cell["modeled_speedup_vs_1shard"] = baseline_modeled / modeled
            cells[str(num_shards)] = cell
        section["cohorts"][str(cohort)] = cells
    return section


#: cohort-batched-training sweep sizes (clients trained per stacked pass)
COHORT_TRAIN_COHORTS = (16, 64, 256)


def cohort_train_seconds(repeats: int = 3) -> dict:
    """Serial vs cohort-batched local training for one round's cohort.

    Times the two row-plane trainers head to head on identical work: the
    serial :func:`~repro.federated.client.train_rows_into` loop (one model
    replica, one forward/backward per client per batch) against
    :class:`~repro.federated.cohort.CohortTrainer` (the whole cohort stacked
    into one ``(M, D)`` weight block, one batched forward/backward per step).
    Linear-probe model, one local epoch, batch size 8 — the training recipe
    of the round-throughput sweep.  ``speedup`` at the 256-client row is the
    acceptance number (≥ 5×).  Both paths land rows in the same layout; a
    bit-equality check guards against benchmarking diverged code.
    """
    import numpy as np

    from repro.data import SyntheticPopulation
    from repro.experiments.models import model_fn_for
    from repro.federated import LocalTrainingConfig
    from repro.federated.client import ClientPopulation, train_rows_into
    from repro.federated.cohort import CohortTrainer
    from repro.nn.serialization import schema_of
    from repro.utils.rng import rng_from_seed

    local = LocalTrainingConfig(local_epochs=1, batch_size=8)
    section: dict = {"local_epochs": 1, "batch_size": 8, "cohorts": {}}
    for cohort in COHORT_TRAIN_COHORTS:
        dataset = SyntheticPopulation(population_size=cohort, seed=0)
        model_fn = model_fn_for(dataset)
        population = ClientPopulation.for_dataset(dataset, model_fn, local, seed=0)
        broadcast = model_fn(rng_from_seed(0)).state_dict()
        schema = schema_of(broadcast)
        pairs = list(enumerate(population.client_ids(range(cohort))))
        rows_serial = np.empty((cohort, schema.total_size), dtype=np.float32)
        rows_batched = np.empty_like(rows_serial)
        trainer = CohortTrainer(population, schema)
        # Warm-up materializes the lazy population and primes both paths.
        train_rows_into(population, pairs, broadcast, 0, schema, rows_serial)
        trainer.train_rows(pairs, broadcast, 0, rows_batched)
        np.testing.assert_array_equal(rows_serial, rows_batched)
        serial = _best_of(
            lambda: train_rows_into(population, pairs, broadcast, 1, schema, rows_serial),
            repeats,
        )
        batched = _best_of(
            lambda: trainer.train_rows(pairs, broadcast, 1, rows_batched), repeats
        )
        section["cohorts"][str(cohort)] = {
            "serial_seconds": serial,
            "batched_seconds": batched,
            "speedup": serial / batched,
            "serial_clients_per_sec": cohort / serial,
            "batched_clients_per_sec": cohort / batched,
        }
    return section


#: scenario-benchmark workload: rounds per run and per-round churn level
SCENARIO_ROUNDS = 4
SCENARIO_DROPOUT = 0.2


def scenario_round_throughput(repeats: int) -> dict:
    """End-to-end round throughput under churn, sync vs buffered-async.

    Runs a miniature MotionSense federation (full pipeline: selection →
    churn/latency draws → local training → aggregation) under each
    round-closure scheme and reports wall-clock rounds/sec plus the mean
    clients merged per round.  The simulated round *duration* (deadline
    semantics) is scored by the extension experiment; this row tracks the
    engine's real execution cost.
    """
    from repro.data import SyntheticMotionSense
    from repro.experiments.extensions import SCENARIO_SCHEMES, make_scenario
    from repro.experiments.models import model_fn_for
    from repro.federated import FederatedSimulation, LocalTrainingConfig, SimulationConfig

    sweep = {}
    for scheme in ("no-scenario",) + SCENARIO_SCHEMES:
        merged_total = 0

        def one_run(scheme=scheme):
            # runs are deterministic, so the timed closure can record the
            # merged-update count as a side effect (no extra untimed run)
            nonlocal merged_total
            dataset = SyntheticMotionSense(
                seed=0,
                windows_per_activity=4,
                test_windows_per_activity=1,
                background_subjects_per_gender=2,
            )
            cohort = dataset.num_clients
            scenario = None if scheme == "no-scenario" else make_scenario(
                scheme, SCENARIO_DROPOUT, cohort
            )
            config = SimulationConfig(
                rounds=SCENARIO_ROUNDS,
                local=LocalTrainingConfig(local_epochs=1, batch_size=64),
                seed=0,
                track_per_client_accuracy=False,
                scenario=scenario,
            )
            sim = FederatedSimulation(dataset, model_fn_for(dataset), config)
            result = sim.run()
            merged_total = sum(r.num_aggregated for r in result.rounds)

        seconds = _best_of(one_run, repeats)
        sweep[scheme] = {
            "seconds": seconds,
            "rounds_per_sec": SCENARIO_ROUNDS / seconds,
            "merged_clients_per_sec": merged_total / seconds,
            "mean_merged_per_round": merged_total / SCENARIO_ROUNDS,
        }
    return sweep


def deadline_throughput_frontier() -> list[dict]:
    """The measured deadline-vs-throughput frontier on the event stream.

    One miniature run per (scheme, knob) point of
    :func:`repro.experiments.extensions.frontier_points` (the same sweep and
    row schema the runner's ``frontier`` command reports, so snapshots never
    drift from the experiment); ``total_simulated_seconds`` and
    ``merged_per_simulated_sec`` come from the virtual-time engine's
    flush/arrival timestamps (measured), not from closed-form expectations.
    Deterministic, so a single run per point is exact — no timing repeats.
    """
    from repro.data import SyntheticMotionSense
    from repro.experiments.extensions import frontier_points, frontier_row, make_scenario
    from repro.experiments.models import model_fn_for
    from repro.federated import FederatedSimulation, LocalTrainingConfig, SimulationConfig

    rows = []
    for scheme, knob, overrides in frontier_points():
        dataset = SyntheticMotionSense(
            seed=0,
            windows_per_activity=4,
            test_windows_per_activity=1,
            background_subjects_per_gender=2,
        )
        scenario = make_scenario(scheme, SCENARIO_DROPOUT, dataset.num_clients, **overrides)
        config = SimulationConfig(
            rounds=SCENARIO_ROUNDS,
            local=LocalTrainingConfig(local_epochs=1, batch_size=64),
            seed=0,
            track_per_client_accuracy=False,
            scenario=scenario,
        )
        result = FederatedSimulation(dataset, model_fn_for(dataset), config).run()
        rows.append(frontier_row(scheme, knob, result).as_row())
    return rows


#: fault-recovery benchmark: rounds per run (6 so the 20 % proxy-crash row's
#: deterministic draw — seed 0 first fires in round 5 — actually exercises a
#: crash-and-failover, not just the transport-retry floor)
FAULT_ROUNDS = 6
FAULT_FRAME_RATE = 0.05
FAULT_QUORUM = 0.7


def fault_recovery() -> list[dict]:
    """Round throughput and recovery latency under seeded fault injection.

    One miniature MixNN federation per proxy-crash rate in
    :data:`repro.experiments.extensions.CHAOS_PROXY_CRASH_RATES` (the same
    sweep the runner's ``chaos`` command reports, so snapshots never drift
    from the experiment), with RW01 frame corruption held at
    ``FAULT_FRAME_RATE`` so even the 0-crash row exercises the
    backoff-and-retry transport path.  Reports real wall-clock rounds/sec
    (the fault plane's execution overhead), virtual-time merged/sec (what
    the faults cost the federation), and per-fault recovery percentiles.
    Every run's ledger is validated before its row is recorded.
    Deterministic, so a single run per point is exact — no timing repeats.
    """
    from dataclasses import replace as dc_replace

    from repro.data import SyntheticMotionSense
    from repro.defenses import MixNNDefense
    from repro.experiments.extensions import CHAOS_PROXY_CRASH_RATES, make_scenario
    from repro.experiments.models import model_fn_for
    from repro.federated import (
        FaultConfig,
        FederatedSimulation,
        LocalTrainingConfig,
        SimulationConfig,
    )
    from repro.metrics.latency import summarize_round_timing
    from repro.utils.rng import rng_from_seed, stable_seed

    rows = []
    for crash_rate in CHAOS_PROXY_CRASH_RATES:
        dataset = SyntheticMotionSense(
            seed=0,
            windows_per_activity=4,
            test_windows_per_activity=1,
            background_subjects_per_gender=2,
        )
        faults = FaultConfig(
            frame_corruption_rate=FAULT_FRAME_RATE,
            proxy_crash_rate=crash_rate,
            quorum_fraction=FAULT_QUORUM,
        )
        scenario = dc_replace(
            make_scenario("sync-full", SCENARIO_DROPOUT, dataset.num_clients),
            faults=faults,
        )
        config = SimulationConfig(
            rounds=FAULT_ROUNDS,
            local=LocalTrainingConfig(local_epochs=1, batch_size=64),
            seed=0,
            track_per_client_accuracy=False,
            scenario=scenario,
        )
        sim = FederatedSimulation(
            dataset,
            model_fn_for(dataset),
            config,
            defense=MixNNDefense(rng=rng_from_seed(stable_seed(0, "mixnn-proxy"))),
        )
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        result.fault_ledger.validate()
        timing = summarize_round_timing(result.rounds)
        ledger = result.fault_ledger
        rows.append(
            {
                "proxy_crash_rate": crash_rate,
                "frame_corruption_rate": FAULT_FRAME_RATE,
                "wall_seconds": wall,
                "rounds_per_wall_sec": FAULT_ROUNDS / wall,
                "merged_per_simulated_sec": timing.effective_throughput,
                "recovery_p50_s": timing.recovery_p50_seconds,
                "recovery_p99_s": timing.recovery_p99_seconds,
                "total_recovery_s": timing.total_recovery_seconds,
                "faults": ledger.injected,
                "retries": timing.total_retries,
                "failed_over": ledger.failed_over,
                "discarded": ledger.discarded,
                "retransmissions": ledger.retransmissions,
            }
        )
    return rows


#: scheduler micro-benchmark: backlog sizes to drain, and virtual seconds
#: between consecutive events (fixed density — backlog size, not event
#: crowding, is the variable under test)
SCHEDULER_BACKLOGS = (1_000, 10_000, 100_000)
SCHEDULER_SPACING = 0.01


def scheduler_ops_per_second(repeats: int) -> dict:
    """Heap vs calendar queue: schedule and pop cost as the backlog grows.

    Pre-builds ``backlog`` arrival events spread over a window that keeps
    the event density fixed at one per ``SCHEDULER_SPACING`` virtual
    seconds, then times the schedule phase (push everything) and the drain
    phase (pop everything, fully ordered) separately — events are built
    outside the timed region so dataclass construction cost doesn't mask the
    queue asymptotics.  The heap pays ``O(log n)`` percolation per pop, so
    its per-op cost grows with the backlog; the calendar queue's bucket
    occupancy is set by the density, not the backlog, so its pop cost stays
    flat from 10³ to 10⁵ pending events.
    """
    from repro.federated.events import ClientUpdateArrival, make_scheduler
    from repro.utils.rng import rng_from_seed

    sweep = {}
    for backlog in SCHEDULER_BACKLOGS:
        rng = rng_from_seed(0)
        times = rng.uniform(0.0, backlog * SCHEDULER_SPACING, size=backlog)
        events = [
            ClientUpdateArrival(time=float(t), client_id=i) for i, t in enumerate(times)
        ]
        row: dict = {}
        for backend in ("heap", "calendar"):
            schedule_best = pop_best = float("inf")
            for _ in range(repeats):
                scheduler = make_scheduler(backend)
                start = time.perf_counter()
                for event in events:
                    scheduler.schedule(event)
                mid = time.perf_counter()
                while len(scheduler):
                    scheduler.pop()
                end = time.perf_counter()
                schedule_best = min(schedule_best, mid - start)
                pop_best = min(pop_best, end - mid)
            row[backend] = {
                "schedule_ns_per_op": schedule_best / backlog * 1e9,
                "pop_ns_per_op": pop_best / backlog * 1e9,
                "ops_per_sec": 2 * backlog / (schedule_best + pop_best),
            }
        row["calendar_pop_speedup"] = (
            row["heap"]["pop_ns_per_op"] / row["calendar"]["pop_ns_per_op"]
        )
        sweep[str(backlog)] = row
    return sweep


#: population-scale sweep: (population size, clients trained per round).
#: The (10⁵, 10³) row is the memory-bound control for (10⁶, 10³): a 10×
#: population at the same cohort must not move the traced peak.
POPULATION_POINTS = (
    (100_000, 1_000),
    (1_000_000, 1_000),
    (1_000_000, 10_000),
)


def population_scale() -> list[dict]:
    """One full round of a million-client federation, memory-instrumented.

    Each row runs selection → latency draws → local training → event replay →
    aggregation over a :class:`~repro.data.population.SyntheticPopulation`
    with the lazy client plane and the calendar scheduler, and records the
    tracemalloc peak (allocation high-water mark of the round), the process
    RSS high-water mark, and the population's own materialization peak.  The
    claim under test: peak memory is bounded by the *cohort*, never the
    population — the 10⁶-row and the 10⁵-row at equal cohort size trace the
    same peak.  Deterministic, so a single run per point is exact.
    """
    import resource
    import tracemalloc

    from repro.data import SyntheticPopulation
    from repro.experiments.models import model_fn_for
    from repro.federated import (
        FederatedSimulation,
        LocalTrainingConfig,
        LogNormalLatency,
        ScenarioConfig,
        SimulationConfig,
    )

    rows = []
    for population_size, cohort in POPULATION_POINTS:
        dataset = SyntheticPopulation(population_size=population_size, seed=0)
        config = SimulationConfig(
            rounds=1,
            local=LocalTrainingConfig(local_epochs=1, batch_size=8),
            clients_per_round=cohort,
            seed=0,
            track_per_client_accuracy=False,
            retain_received_updates=False,
            scenario=ScenarioConfig(latency=LogNormalLatency(median=1.0, sigma=0.5)),
        )
        tracemalloc.start()
        start = time.perf_counter()
        sim = FederatedSimulation(dataset, model_fn_for(dataset), config)
        result = sim.run()
        wall = time.perf_counter() - start
        _, peak_traced = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            {
                "population_size": population_size,
                "clients_per_round": cohort,
                "wall_seconds": wall,
                "trained_clients_per_sec": cohort / wall,
                "peak_materialized": sim.population.peak_materialized,
                "peak_traced_mb": peak_traced / 1e6,
                # ru_maxrss is a process-lifetime high-water mark (kB on
                # Linux): monotonic across rows, reported for context only —
                # the bounded-memory claim is scored on the traced peak.
                "rss_high_water_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
                "merged_updates": result.rounds[-1].num_aggregated,
                "final_accuracy": result.rounds[-1].global_accuracy,
            }
        )
    return rows


BYZANTINE_ROUNDS = 4
BYZANTINE_ATTACK_SCALE = 100.0


def byzantine_robustness() -> list[dict]:
    """Attack penetration and filter quality per aggregation policy.

    One miniature federation per (rule × attacker-fraction) cell in the
    :data:`repro.experiments.extensions.BYZANTINE_RULES` ×
    :data:`repro.experiments.extensions.BYZANTINE_FRACTIONS` sweep under a
    sign-flip adversary (the same sweep the runner's ``byzantine`` command
    reports, so snapshots never drift from the experiment).  Reports attack
    success rate, main-task accuracy, filter precision/recall, and the
    measured cost of verifying the hash-chained round transcript.  Each
    run's adversary ledger is validated before its row is recorded.
    Deterministic, so a single run per cell is exact — no timing repeats.
    """
    from dataclasses import replace as dc_replace

    from repro.data import SyntheticMotionSense
    from repro.experiments.extensions import (
        BYZANTINE_FRACTIONS,
        BYZANTINE_RULES,
        make_scenario,
    )
    from repro.experiments.models import model_fn_for
    from repro.federated import (
        AdversaryConfig,
        FederatedSimulation,
        LocalTrainingConfig,
        SimulationConfig,
    )
    from repro.metrics.robustness import summarize_robustness

    rows = []
    baselines: dict[str, float] = {}
    for rule in BYZANTINE_RULES:
        for fraction in BYZANTINE_FRACTIONS:
            dataset = SyntheticMotionSense(
                seed=0,
                windows_per_activity=4,
                test_windows_per_activity=1,
                background_subjects_per_gender=2,
            )
            scenario = dc_replace(
                make_scenario("sync-full", 0.0, dataset.num_clients),
                adversary=AdversaryConfig(
                    fraction=fraction, kind="sign-flip", scale=BYZANTINE_ATTACK_SCALE
                ),
            )
            config = SimulationConfig(
                rounds=BYZANTINE_ROUNDS,
                local=LocalTrainingConfig(local_epochs=1, batch_size=64),
                seed=0,
                track_per_client_accuracy=False,
                scenario=scenario,
                aggregation=rule,
            )
            sim = FederatedSimulation(dataset, model_fn_for(dataset), config)
            start = time.perf_counter()
            result = sim.run()
            wall = time.perf_counter() - start
            summary = summarize_robustness(result, baseline_accuracy=baselines.get(rule))
            verify_start = time.perf_counter()
            result.transcript.verify()
            verify_seconds = time.perf_counter() - verify_start
            if fraction == 0.0:
                baselines[rule] = summary.final_accuracy
            rows.append(
                {
                    "rule": rule,
                    "attacker_fraction": fraction,
                    "attack": "sign-flip",
                    "wall_seconds": wall,
                    "final_accuracy": summary.final_accuracy,
                    "accuracy_drop": summary.accuracy_drop,
                    "injected": summary.injected,
                    "merged": summary.merged,
                    "filtered": summary.filtered,
                    "rejected": summary.rejected,
                    "attack_success_rate": summary.attack_success_rate,
                    "filter_precision": summary.filter_precision,
                    "filter_recall": summary.filter_recall,
                    "transcript_verify_seconds": verify_seconds,
                }
            )
    return rows


def collect(repeats: int) -> dict:
    from repro.experiments.system_perf import run_system_perf
    from repro.federated.update import aggregate_updates, aggregate_updates_reference
    from repro.mixnn.crypto import decrypt, encrypt, process_keypair, selftest
    from repro.mixnn.mixing import mix_updates
    from repro.mixnn.transport import pack_update, unpack_update
    from repro.utils import native
    from repro.utils.rng import rng_from_seed
    from repro.experiments.models import paper_cnn

    selftest()
    keypair = process_keypair()
    payload = b"\x42" * 1_048_576
    blob = encrypt(keypair.public, payload)

    model = paper_cnn((3, 8, 8), 10, rng_from_seed(0))
    updates = _make_updates(model, 16)
    packed = pack_update(updates[0], keypair.public)
    broadcast, references, gradsim_updates = make_gradsim_workload(model)

    results = {
        "native_ctr_available": native.available(),
        "encrypt_1mb_seconds": _best_of(lambda: encrypt(keypair.public, payload), repeats),
        "decrypt_1mb_seconds": _best_of(lambda: decrypt(keypair, blob), repeats),
        "pack_update_seconds": _best_of(lambda: pack_update(updates[0], keypair.public), repeats),
        "unpack_update_seconds": _best_of(
            lambda: unpack_update(decrypt(keypair, packed.ciphertext)), repeats
        ),
        "mix_16_updates_seconds": _best_of(lambda: mix_updates(updates, rng_from_seed(0)), repeats),
        "aggregate_16_updates_seconds": _best_of(lambda: aggregate_updates(updates), repeats),
        "aggregate_16_updates_reference_seconds": _best_of(
            lambda: aggregate_updates_reference(updates), repeats
        ),
        "gradsim_attack_seconds": _best_of(
            lambda: gradsim_attack_flat(broadcast, references, gradsim_updates), repeats
        ),
        "gradsim_attack_reference_seconds": _best_of(
            lambda: gradsim_attack_reference(broadcast, references, gradsim_updates), repeats
        ),
    }
    results["round_throughput"] = round_throughput(model, repeats)
    results["sharded_round_throughput"] = sharded_round_throughput()
    results["cohort_train_seconds"] = cohort_train_seconds(repeats)
    results["scenario_round_throughput"] = scenario_round_throughput(repeats)
    results["deadline_throughput_frontier"] = deadline_throughput_frontier()
    results["fault_recovery"] = fault_recovery()
    results["byzantine_robustness"] = byzantine_robustness()
    results["scheduler_ops_per_second"] = scheduler_ops_per_second(repeats)
    results["population_scale"] = population_scale()
    perf = run_system_perf()
    results["system_perf"] = {
        section: [row.__dict__ for row in rows] for section, rows in perf.items()
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=None, help="snapshot path (default: benchmarks/BENCH_<date>.json)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repeats")
    args = parser.parse_args(argv)

    date = _dt.date.today().isoformat()
    output = args.output
    if output is None:
        output = Path(__file__).parent / f"BENCH_{date}.json"
        if output.exists():
            # never clobber a recorded snapshot (it is the regression baseline)
            revision = _git_revision() or "local"
            output = Path(__file__).parent / f"BENCH_{date}_{revision}.json"
    snapshot = {
        "date": date,
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": collect(args.repeats),
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    for key, value in snapshot["results"].items():
        if isinstance(value, float):
            print(f"  {key}: {value*1e3:.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
