#!/usr/bin/env python
"""Record a perf snapshot so future PRs can track the trajectory.

Runs the crypto/transport/mixing micro-benchmarks and the §6.5 system-perf
pipeline measurement directly (no pytest involved), and writes the results to
``BENCH_<date>.json`` next to this script (override with ``--output``).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import subprocess
import sys
import time
from pathlib import Path


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=Path(__file__).parent,
        )
        return out.stdout.strip() or None
    except Exception:
        return None


def collect(repeats: int) -> dict:
    from repro.experiments.system_perf import run_system_perf
    from repro.federated.update import aggregate_updates
    from repro.mixnn.crypto import decrypt, encrypt, process_keypair, selftest
    from repro.mixnn.mixing import mix_updates
    from repro.mixnn.transport import pack_update, unpack_update
    from repro.utils import native
    from repro.utils.rng import rng_from_seed
    from repro.experiments.models import paper_cnn

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import make_updates

    selftest()
    keypair = process_keypair()
    payload = b"\x42" * 1_048_576
    blob = encrypt(keypair.public, payload)

    model = paper_cnn((3, 8, 8), 10, rng_from_seed(0))
    updates = make_updates(model, 16)
    packed = pack_update(updates[0], keypair.public)

    results = {
        "native_ctr_available": native.available(),
        "encrypt_1mb_seconds": _best_of(lambda: encrypt(keypair.public, payload), repeats),
        "decrypt_1mb_seconds": _best_of(lambda: decrypt(keypair, blob), repeats),
        "pack_update_seconds": _best_of(lambda: pack_update(updates[0], keypair.public), repeats),
        "unpack_update_seconds": _best_of(
            lambda: unpack_update(decrypt(keypair, packed.ciphertext)), repeats
        ),
        "mix_16_updates_seconds": _best_of(lambda: mix_updates(updates, rng_from_seed(0)), repeats),
        "aggregate_16_updates_seconds": _best_of(lambda: aggregate_updates(updates), repeats),
    }
    perf = run_system_perf()
    results["system_perf"] = {
        section: [row.__dict__ for row in rows] for section, rows in perf.items()
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=None, help="snapshot path (default: benchmarks/BENCH_<date>.json)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repeats")
    args = parser.parse_args(argv)

    date = _dt.date.today().isoformat()
    output = args.output or Path(__file__).parent / f"BENCH_{date}.json"
    snapshot = {
        "date": date,
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": collect(args.repeats),
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    for key, value in snapshot["results"].items():
        if isinstance(value, float):
            print(f"  {key}: {value*1e3:.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
