"""Five defenses, one table: where does MixNN sit in the design space?

The paper's introduction positions MixNN against two families of defenses:
perturbation (noisy gradients / DP — protects by destroying information, so
utility suffers) and cryptographic secure aggregation (protects without a
utility cost, but needs the server to run the protocol — which a *curious*
server has no incentive to do).  This example runs all five against the
active ∇Sim attacker on the MotionSense workload and prints utility (final
model accuracy), privacy (mean inference accuracy) and leakage above the
random-guess baseline.

Expected shape: classical FL leaks everything; noisy/DP trade some of both;
secure aggregation and MixNN both sit at (full utility, no leak) — but only
MixNN gets there without the server's cooperation.

Run:  python examples/defense_comparison.py   (a few minutes at CI scale)
"""

from repro.experiments.extensions import (
    render_defense_comparison,
    run_defense_comparison,
)


def main() -> None:
    rows = run_defense_comparison("motionsense", rounds=4)
    print("Active ∇Sim vs five defenses — MotionSense, 4 rounds\n")
    print(render_defense_comparison(rows))
    by_name = {row.defense: row for row in rows}
    print()
    print(f"classical FL leaks {by_name['classical-fl'].leakage:+.3f} above guess;")
    print(f"MixNN leaks {by_name['mixnn'].leakage:+.3f} while matching FL accuracy "
          f"({by_name['mixnn'].final_accuracy:.3f} vs {by_name['classical-fl'].final_accuracy:.3f}).")


if __name__ == "__main__":
    main()
