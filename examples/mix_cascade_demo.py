"""Mixnets in miniature: the §2.4 background, running.

MixNN's layer mixing is the neural-network analogue of a Chaum mix network:
batch, shuffle, forward, so arrivals cannot be linked to departures.  This
demo runs the repository's message-level mix cascade — the substrate a
deployment could tunnel proxy traffic through — and shows:

1. onion encryption (one layer per mix on the route);
2. batching and shuffling at each mix;
3. delivery order independent of submission order;
4. tampered messages dropped, not forwarded.

Run:  python examples/mix_cascade_demo.py
"""

from repro.mixnn import MixCascade
from repro.utils.rng import rng_from_seed


def main() -> None:
    cascade = MixCascade(num_mixes=3, batch_size=4, rng=rng_from_seed(1))
    print(f"cascade of {len(cascade.nodes)} mixes; route fingerprints:",
          [key.fingerprint()[:8] for key in cascade.route_keys])

    messages = [f"participant-{i} update".encode() for i in range(8)]
    wrapped = [cascade.wrap(m) for m in messages]
    print(f"onion size: {len(wrapped[0])} bytes for a {len(messages[0])}-byte payload "
          f"(3 encryption layers)")

    delivered = cascade.send_batch(wrapped + [b"tampered junk"])
    print("submission order:", [m.decode().split()[0] for m in messages])
    print("delivery order:  ", [m.decode().split()[0] for m in delivered])
    assert sorted(delivered) == sorted(messages)
    print(f"dropped (undecryptable): {cascade.dropped}")
    print("\nSame principle, different payload: MixNN batches and shuffles model")
    print("*layers* instead of messages — and the FedAvg aggregate is unchanged.")


if __name__ == "__main__":
    main()
