"""Systems tour of the MixNN proxy: attestation, encryption, mixing, §6.5 costs.

Walks the full §4.3 pipeline step by step on one round of updates:

1. the participant verifies the enclave's attestation quote;
2. updates are hybrid-encrypted to the enclave public key (tampering with a
   ciphertext is detected and rejected);
3. the proxy buffers k updates per layer, then emits mixed updates whose
   layer pieces come from different participants;
4. the enclave's simulated clock and EPC memory account reproduce the §6.5
   cost table, and the aggregate of the mixed batch equals the aggregate of
   the original batch bit-for-bit.

Run:  python examples/proxy_systems_demo.py
"""

import secrets

import numpy as np

from repro.experiments.models import paper_cnn
from repro.experiments.system_perf import render, run_system_perf
from repro.federated.update import ModelUpdate, aggregate_updates
from repro.mixnn import CryptoError, MixNNProxy, SGXEnclaveSim, decrypt
from repro.utils.rng import rng_from_seed


def build_updates(count: int, rng: np.random.Generator) -> list[ModelUpdate]:
    model = paper_cnn((3, 8, 8), 10, rng)
    base = model.state_dict()
    updates = []
    for sender in range(count):
        state = {
            name: value + 0.01 * rng.standard_normal(value.shape).astype(np.float32)
            for name, value in base.items()
        }
        updates.append(ModelUpdate(sender_id=sender, round_index=0, state=dict(state)))
    return updates


def main() -> None:
    rng = rng_from_seed(0)
    enclave = SGXEnclaveSim()
    proxy = MixNNProxy(enclave=enclave, k=8, rng=rng)

    # 1. Attestation: the participant checks the enclave before uploading.
    nonce = secrets.token_bytes(16)
    quote = enclave.quote(nonce)
    assert enclave.verify_quote(quote, "mixnn-proxy-v1")
    print(f"attested enclave {quote.measurement[:12]}… (key {quote.public_key_fingerprint})")

    # 2. Encrypt one round of updates; demonstrate tamper detection.
    updates = build_updates(8, rng)
    messages = [proxy.encrypt_for_proxy(update) for update in updates]
    tampered = bytearray(messages[0].ciphertext)
    tampered[-1] ^= 0x01
    try:
        decrypt(enclave.keypair, bytes(tampered))
    except CryptoError as error:
        print(f"tampered ciphertext rejected: {error}")

    # 3. Mix the round.
    emitted = proxy.process_round(messages)
    sources = emitted[0].metadata["unit_sources"]
    print(f"emitted {len(emitted)} mixed updates; first one's layer sources: {sources}")

    # 4. Aggregation equivalence + cost accounting.
    original = aggregate_updates(updates)
    mixed = aggregate_updates(emitted)
    drift = max(float(np.abs(original[name] - mixed[name]).max()) for name in original)
    print(f"aggregate drift after mixing: {drift:.2e} (float32 summation-order round-off only)")
    stats = enclave.stats()
    print(
        f"enclave clock {stats['clock_seconds']:.3f}s simulated, "
        f"peak EPC {stats['peak_bytes'] / 2**20:.2f} MB, page faults {stats['page_faults']}"
    )

    print("\n" + render(run_system_perf()))


if __name__ == "__main__":
    main()
