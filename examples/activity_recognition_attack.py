"""Gender inference from activity-recognition updates — and its mitigation.

Reproduces the paper's headline scenario in miniature (Figure 7,
MotionSense): a malicious aggregation server runs the *active* ∇Sim attack,
broadcasting a model crafted to be equidistant from a men-trained and a
women-trained reference model, then classifies every participant by the
direction of the gradient they send back.

The script prints the cumulative inference accuracy per round for classical
FL (expected: near-perfect gender inference), the noisy-gradient baseline
(expected: partial leak), and MixNN (expected: a coin flip).

Run:  python examples/activity_recognition_attack.py
"""

from repro.attacks import GradSimAttack
from repro.data import SyntheticMotionSense
from repro.defenses import GaussianNoiseDefense, MixNNDefense, NoDefense
from repro.experiments.config import params_for
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation
from repro.utils.rng import rng_from_seed

ROUNDS = 5


def attack_run(defense_factory) -> list[float]:
    dataset = SyntheticMotionSense(seed=0)
    params = params_for("motionsense")
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(42),
        mode="active",
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(rounds=ROUNDS),
        defense=defense_factory(),
        attack=attack,
    )
    return simulation.run().inference_curve()


def main() -> None:
    params = params_for("motionsense")
    print(f"Active ∇Sim, gender inference over {ROUNDS} rounds (random guess = 0.50)\n")
    for name, factory in [
        ("classical FL", lambda: NoDefense()),
        ("noisy gradient", lambda: GaussianNoiseDefense(sigma=params.noise_sigma)),
        ("MixNN", lambda: MixNNDefense(rng=rng_from_seed(7))),
    ]:
        curve = attack_run(factory)
        print(f"{name:>16}: " + "  ".join(f"{a:.3f}" for a in curve))
    print("\nMixNN keeps the malicious server at a coin flip; classical FL leaks the")
    print("gender of every participant within a round or two.")


if __name__ == "__main__":
    main()
