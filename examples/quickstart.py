"""Quickstart: protect a federated run with MixNN in ~20 lines.

Trains an activity-recognition model federatedly over the MotionSense-like
cohort three times — classical FL, MixNN, and the noisy-gradient baseline —
and prints the round-by-round global accuracy of each.  Expect the MixNN
column to match classical FL exactly (layer mixing does not change the
aggregate) and the noisy column to trail behind.

Run:  python examples/quickstart.py
"""

from repro.data import SyntheticMotionSense
from repro.defenses import GaussianNoiseDefense, MixNNDefense, NoDefense
from repro.experiments.config import params_for
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation
from repro.utils.rng import rng_from_seed


def main() -> None:
    params = params_for("motionsense")
    defenses = {
        "classical FL": lambda: NoDefense(),
        "MixNN": lambda: MixNNDefense(rng=rng_from_seed(7)),
        "noisy gradient": lambda: GaussianNoiseDefense(sigma=params.noise_sigma),
    }

    curves = {}
    for name, make_defense in defenses.items():
        dataset = SyntheticMotionSense(seed=0)
        simulation = FederatedSimulation(
            dataset,
            model_fn_for(dataset),
            params.simulation_config(rounds=6),
            defense=make_defense(),
        )
        curves[name] = simulation.run().accuracy_curve()
        print(f"{name:>16}: " + "  ".join(f"{a:.3f}" for a in curves[name]))

    assert curves["classical FL"] == curves["MixNN"], "mixing must not change the aggregate"
    print("\nMixNN matched classical FL on every round — no utility trade-off.")


if __name__ == "__main__":
    main()
