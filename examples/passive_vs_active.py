"""Passive vs active ∇Sim: how much does protocol abuse buy the server?

§5 defines both adversaries: the *passive* curious server merely observes the
honest flow; the *active* malicious server broadcasts a model crafted to be
equidistant from the per-gender reference models, which maximizes the
separation between the gradients participants send back.  The paper evaluates
the active worst case (Figure 7); this example (an extension) compares the
two modes head-to-head on classical FL.

Run:  python examples/passive_vs_active.py
"""

from repro.attacks import GradSimAttack
from repro.data import SyntheticMotionSense
from repro.experiments.config import params_for
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation
from repro.utils.rng import rng_from_seed

ROUNDS = 6


def run(mode: str) -> list[float]:
    dataset = SyntheticMotionSense(seed=0)
    params = params_for("motionsense")
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(42),
        mode=mode,
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset, model_fn, params.simulation_config(rounds=ROUNDS), attack=attack
    )
    return simulation.run().inference_curve()


def main() -> None:
    print(f"∇Sim on classical FL, {ROUNDS} rounds (random guess = 0.50)\n")
    for mode in ("passive", "active"):
        curve = run(mode)
        print(f"{mode:>8}: " + "  ".join(f"{a:.3f}" for a in curve))
    print("\nThe passive observer already leaks; actively steering the broadcast to the")
    print("midpoint of the reference models sharpens the fingerprint further and")
    print("stabilizes the inference across rounds.")


if __name__ == "__main__":
    main()
