"""CIFAR10 preference groups: inferring *what you like* from model updates.

The paper's CIFAR10 setup assigns each participant to one of three interest
groups (e.g. animals vs vehicles vs objects) and skews local data 80/20
toward the preferred categories.  The aggregation server never sees any
image — yet ∇Sim recovers the preference group from the update direction
alone, because a participant's class skew bends the classifier layers in a
recognizable way.

The script shows the three-way inference (random guess = 1/3) under classical
FL and under MixNN, plus the per-group breakdown of the FL predictions.

Run:  python examples/image_preferences_cifar10.py
"""

from collections import Counter

from repro.attacks import GradSimAttack
from repro.data import PREFERENCE_GROUPS, SyntheticCIFAR10
from repro.defenses import MixNNDefense, NoDefense
from repro.experiments.config import params_for
from repro.experiments.models import model_fn_for
from repro.federated import FederatedSimulation
from repro.utils.rng import rng_from_seed

ROUNDS = 4


def run(defense_factory):
    dataset = SyntheticCIFAR10(seed=0)
    params = params_for("cifar10")
    model_fn = model_fn_for(dataset)
    attack = GradSimAttack(
        background_clients=dataset.background_clients(),
        model_fn=model_fn,
        config=params.local_config(),
        rng=rng_from_seed(42),
        mode="active",
        attack_epochs=params.attack_epochs,
    )
    simulation = FederatedSimulation(
        dataset,
        model_fn,
        params.simulation_config(rounds=ROUNDS),
        defense=defense_factory(),
        attack=attack,
    )
    result = simulation.run()
    return dataset, attack, result


def main() -> None:
    print("Preference groups:", *(f"group {i}: classes {g}" for i, g in enumerate(PREFERENCE_GROUPS)))
    print(f"3-way inference over {ROUNDS} rounds; random guess = 0.33\n")

    for name, factory in [("classical FL", NoDefense), ("MixNN", lambda: MixNNDefense(rng=rng_from_seed(7)))]:
        dataset, attack, result = run(factory)
        curve = result.inference_curve()
        print(f"{name:>13}: " + "  ".join(f"{a:.3f}" for a in curve))
        if name == "classical FL":
            truth = {c.client_id: c.attribute for c in dataset.clients()}
            hits = Counter(
                (truth[p], predicted) for p, predicted in attack.predictions().items() if p in truth
            )
            print("              (true group, inferred group) counts:", dict(sorted(hits.items())))
    print("\nThe FL server pinpoints every participant's interests; MixNN reduces it to chance.")


if __name__ == "__main__":
    main()
