"""Hybrid encryption: round trips, tampering, key handling."""

import numpy as np
import pytest

from repro.mixnn.crypto import (
    CryptoError,
    decrypt,
    encrypt,
    generate_keypair,
    process_keypair,
    _is_probable_prime,
    _random_prime,
)


@pytest.fixture(scope="module")
def kp():
    return process_keypair()


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 65537, 2**127 - 1):
            assert _is_probable_prime(p)

    def test_known_composites(self):
        for c in (1, 4, 100, 65537 * 3, 561, 2**128):
            assert not _is_probable_prime(c)

    def test_random_prime_has_requested_size(self):
        p = _random_prime(128)
        assert p.bit_length() == 128
        assert _is_probable_prime(p)


class TestKeyGeneration:
    def test_modulus_size(self, kp):
        assert kp.public.n.bit_length() >= 1023

    def test_rsa_identity(self, kp):
        message = 123456789
        assert pow(pow(message, kp.public.e, kp.n), kp.d, kp.n) == message

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=128)

    def test_process_keypair_cached(self):
        assert process_keypair() is process_keypair()

    def test_fingerprint_stable_and_short(self, kp):
        assert kp.public.fingerprint() == kp.public.fingerprint()
        assert len(kp.public.fingerprint()) == 16


class TestRoundTrip:
    def test_empty_message(self, kp):
        assert decrypt(kp, encrypt(kp.public, b"")) == b""

    def test_short_message(self, kp):
        assert decrypt(kp, encrypt(kp.public, b"hello enclave")) == b"hello enclave"

    def test_large_binary_message(self, kp):
        payload = np.random.default_rng(0).integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        assert decrypt(kp, encrypt(kp.public, payload)) == payload

    def test_ciphertexts_are_randomized(self, kp):
        assert encrypt(kp.public, b"same") != encrypt(kp.public, b"same")

    def test_ciphertext_larger_than_plaintext(self, kp):
        blob = encrypt(kp.public, b"x" * 100)
        assert len(blob) > 100 + kp.public.modulus_bytes


class TestTampering:
    def test_body_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        blob[-1] ^= 0x01
        with pytest.raises(CryptoError, match="MAC"):
            decrypt(kp, bytes(blob))

    def test_kem_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        blob[10] ^= 0x01
        with pytest.raises(CryptoError):
            decrypt(kp, bytes(blob))

    def test_truncation_detected(self, kp):
        blob = encrypt(kp.public, b"secret payload")
        with pytest.raises(CryptoError):
            decrypt(kp, blob[: len(blob) // 2])

    def test_garbage_rejected(self, kp):
        with pytest.raises(CryptoError):
            decrypt(kp, b"\x00\x01garbage")

    def test_wrong_key_rejected(self, kp):
        other = generate_keypair(bits=512)
        blob = encrypt(kp.public, b"for the enclave only")
        with pytest.raises(CryptoError):
            decrypt(other, blob)
