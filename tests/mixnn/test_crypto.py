"""Hybrid encryption: round trips, tampering, key handling, fast-path equivalence."""

import numpy as np
import pytest

from repro.mixnn.crypto import (
    CryptoError,
    KeyPair,
    decrypt,
    encrypt,
    generate_keypair,
    process_keypair,
    selftest,
    stream_xor,
    _is_probable_prime,
    _keystream_bulk,
    _keystream_reference,
    _random_prime,
    _xor_bulk,
    _xor_reference,
    _NONCE_BYTES,
)
from repro.utils import native


@pytest.fixture(scope="module")
def kp():
    return process_keypair()


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 65537, 2**127 - 1):
            assert _is_probable_prime(p)

    def test_known_composites(self):
        for c in (1, 4, 100, 65537 * 3, 561, 2**128):
            assert not _is_probable_prime(c)

    def test_random_prime_has_requested_size(self):
        p = _random_prime(128)
        assert p.bit_length() == 128
        assert _is_probable_prime(p)


class TestKeyGeneration:
    def test_modulus_size(self, kp):
        assert kp.public.n.bit_length() >= 1023

    def test_rsa_identity(self, kp):
        message = 123456789
        assert pow(pow(message, kp.public.e, kp.n), kp.d, kp.n) == message

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=128)

    def test_process_keypair_cached(self):
        assert process_keypair() is process_keypair()

    def test_fingerprint_stable_and_short(self, kp):
        assert kp.public.fingerprint() == kp.public.fingerprint()
        assert len(kp.public.fingerprint()) == 16


class TestRoundTrip:
    def test_empty_message(self, kp):
        assert decrypt(kp, encrypt(kp.public, b"")) == b""

    def test_short_message(self, kp):
        assert decrypt(kp, encrypt(kp.public, b"hello enclave")) == b"hello enclave"

    def test_large_binary_message(self, kp):
        payload = np.random.default_rng(0).integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        assert decrypt(kp, encrypt(kp.public, payload)) == payload

    def test_ciphertexts_are_randomized(self, kp):
        assert encrypt(kp.public, b"same") != encrypt(kp.public, b"same")

    def test_ciphertext_larger_than_plaintext(self, kp):
        blob = encrypt(kp.public, b"x" * 100)
        assert len(blob) > 100 + kp.public.modulus_bytes


class TestLargePayloads:
    def test_one_megabyte_roundtrip(self, kp):
        payload = np.random.default_rng(1).integers(0, 256, 1024 * 1024, dtype=np.uint8).tobytes()
        assert decrypt(kp, encrypt(kp.public, payload)) == payload

    def test_unaligned_large_roundtrip(self, kp):
        # Not a multiple of the 32-byte keystream block.
        payload = b"\xab" * (1024 * 1024 + 17)
        assert decrypt(kp, encrypt(kp.public, payload)) == payload


class TestKeystreamEquivalence:
    """The vectorized DEM must produce the reference implementation's bytes."""

    def test_selftest_passes(self):
        assert selftest()

    @pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 64, 1000, 65_537])
    def test_bulk_keystream_matches_reference(self, length):
        key, nonce = b"\x01" * 32, b"\x02" * _NONCE_BYTES
        assert _keystream_bulk(key, nonce, length) == _keystream_reference(key, nonce, length)

    @pytest.mark.parametrize("length", [1, 33, 1000, 65_537])
    def test_stream_xor_matches_reference(self, length):
        key, nonce = b"\x03" * 32, b"\x04" * _NONCE_BYTES
        data = (b"payload!" * (length // 8 + 1))[:length]
        expected = _xor_reference(data, _keystream_reference(key, nonce, length))
        assert stream_xor(key, nonce, data) == expected

    def test_stream_xor_is_an_involution(self):
        key, nonce = b"\x05" * 32, b"\x06" * _NONCE_BYTES
        data = b"round and round" * 1000
        assert stream_xor(key, nonce, stream_xor(key, nonce, data)) == data

    def test_xor_bulk_matches_reference(self):
        data, stream = b"\x00\xff\x55" * 100, b"\xaa" * 300
        assert _xor_bulk(data, stream) == _xor_reference(data, stream)

    @pytest.mark.skipif(not native.available(), reason="native CTR helper unavailable")
    def test_native_path_matches_reference(self):
        key, nonce = b"\x07" * 32, b"\x08" * _NONCE_BYTES
        data = b"\x42" * 100_003
        expected = _xor_reference(data, _keystream_reference(key, nonce, len(data)))
        assert native.ctr_sha256_xor(key + nonce, data) == expected


class TestCRTDecryption:
    def test_private_op_matches_plain_pow(self, kp):
        message = 987654321123456789
        c = pow(message, kp.public.e, kp.n)
        assert kp.private_op(c) == pow(c, kp.d, kp.n) == message

    def test_keypair_without_factors_still_decrypts(self, kp):
        stripped = KeyPair(public=kp.public, d=kp.d)
        blob = encrypt(kp.public, b"no CRT hint available")
        assert decrypt(stripped, blob) == b"no CRT hint available"

    def test_generated_keypairs_carry_factors(self, kp):
        assert kp.p is not None and kp.q is not None
        assert kp.p * kp.q == kp.n


class TestTampering:
    def test_body_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        blob[-1] ^= 0x01
        with pytest.raises(CryptoError, match="MAC"):
            decrypt(kp, bytes(blob))

    def test_nonce_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        nonce_offset = 2 + kp.public.modulus_bytes
        blob[nonce_offset] ^= 0x01
        with pytest.raises(CryptoError, match="MAC"):
            decrypt(kp, bytes(blob))

    def test_mac_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        mac_offset = 2 + kp.public.modulus_bytes + _NONCE_BYTES
        blob[mac_offset] ^= 0x01
        with pytest.raises(CryptoError, match="MAC"):
            decrypt(kp, bytes(blob))

    def test_large_payload_tamper_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"\x00" * (1024 * 1024)))
        blob[len(blob) // 2] ^= 0x80
        with pytest.raises(CryptoError, match="MAC"):
            decrypt(kp, bytes(blob))

    def test_kem_flip_detected(self, kp):
        blob = bytearray(encrypt(kp.public, b"secret payload"))
        blob[10] ^= 0x01
        with pytest.raises(CryptoError):
            decrypt(kp, bytes(blob))

    def test_truncation_detected(self, kp):
        blob = encrypt(kp.public, b"secret payload")
        with pytest.raises(CryptoError):
            decrypt(kp, blob[: len(blob) // 2])

    def test_garbage_rejected(self, kp):
        with pytest.raises(CryptoError):
            decrypt(kp, b"\x00\x01garbage")

    def test_wrong_key_rejected(self, kp):
        other = generate_keypair(bits=512)
        blob = encrypt(kp.public, b"for the enclave only")
        with pytest.raises(CryptoError):
            decrypt(other, blob)
