"""Client-dropout robustness: rounds smaller than the proxy's list size.

The paper assumes L = C; a real deployment sees stragglers.  The proxy's
flush-at-round-end semantics must keep the equivalence guarantee even when
fewer than ``k`` updates arrive (lists never fill, nothing streams, flush
drains whatever is buffered).
"""

import numpy as np
import pytest

from repro.federated.update import aggregate_updates
from repro.mixnn.enclave import SGXEnclaveSim
from repro.mixnn.proxy import MixNNProxy
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


@pytest.fixture()
def underfilled_proxy(keypair):
    return MixNNProxy(
        enclave=SGXEnclaveSim(keypair=keypair, constant_time=False),
        k=8,
        rng=rng_from_seed(0),
    )


class TestUnderfilledRound:
    def test_no_emission_before_flush(self, underfilled_proxy, small_model):
        updates = make_updates(small_model, 5)  # 5 < k = 8
        for update in updates:
            assert underfilled_proxy.receive(underfilled_proxy.encrypt_for_proxy(update)) is None
        assert underfilled_proxy.pending() == 5

    def test_flush_emits_everything(self, underfilled_proxy, small_model):
        updates = make_updates(small_model, 5)
        emitted = underfilled_proxy.process_round(
            [underfilled_proxy.encrypt_for_proxy(u) for u in updates]
        )
        assert len(emitted) == 5
        assert sorted(m.apparent_id for m in emitted) == [u.sender_id for u in updates]

    def test_equivalence_holds_when_underfilled(self, underfilled_proxy, small_model):
        updates = make_updates(small_model, 5)
        emitted = underfilled_proxy.process_round(
            [underfilled_proxy.encrypt_for_proxy(u) for u in updates]
        )
        before = aggregate_updates(updates)
        after = aggregate_updates(emitted)
        for name in before:
            np.testing.assert_allclose(before[name], after[name], atol=1e-5)

    def test_varying_round_sizes_across_rounds(self, underfilled_proxy, small_model):
        """Cohort shrinks then grows; each round is self-contained."""
        for round_index, cohort in enumerate((6, 3, 8)):
            updates = make_updates(small_model, cohort, seed=round_index, round_index=round_index)
            emitted = underfilled_proxy.process_round(
                [underfilled_proxy.encrypt_for_proxy(u) for u in updates]
            )
            assert len(emitted) == cohort
            assert underfilled_proxy.pending() == 0

    def test_single_participant_round(self, underfilled_proxy, small_model):
        """Degenerate case: one participant gets its own update back."""
        updates = make_updates(small_model, 1)
        emitted = underfilled_proxy.process_round(
            [underfilled_proxy.encrypt_for_proxy(u) for u in updates]
        )
        assert len(emitted) == 1
        np.testing.assert_array_equal(emitted[0].flat(), updates[0].flat())
