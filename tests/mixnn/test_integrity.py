"""Envelope integrity: nonces, provenance digests, and replay rejection.

Marked ``byzantine`` alongside the adversary-plane tests::

    PYTHONPATH=src python -m pytest -m byzantine -q
"""

import hashlib

import pytest

from repro.mixnn.crypto import decrypt, encrypt
from repro.mixnn.proxy import MixNNProxy, ReplayError
from repro.mixnn.transport import (
    EncryptedUpdate,
    IntegrityError,
    envelope_nonce,
    pack_update,
    unpack_update,
)
from repro.nn.serialization import FrameError
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates

pytestmark = pytest.mark.byzantine


def build_proxy(enclave, k, seed=0):
    return MixNNProxy(enclave=enclave, k=k, rng=rng_from_seed(seed))


class TestEnvelopeNonce:
    def test_deterministic_and_fixed_length(self):
        assert envelope_nonce(3, 7) == envelope_nonce(3, 7)
        assert len(envelope_nonce(3, 7)) == 32
        assert len(envelope_nonce(123456, 9999)) == 32

    def test_scoped_to_sender_and_round(self):
        assert envelope_nonce(3, 7) != envelope_nonce(4, 7)
        assert envelope_nonce(3, 7) != envelope_nonce(3, 8)


class TestEnvelopeIntegrity:
    def test_unpack_carries_nonce_and_digest(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        restored = unpack_update(decrypt(enclave.keypair, message.ciphertext))
        assert restored.metadata["nonce"] == envelope_nonce(
            update.sender_id, update.round_index
        )
        assert len(restored.metadata["digest"]) == 64

    def test_digest_matches_the_body_bytes(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        plaintext = decrypt(enclave.keypair, message.ciphertext)
        restored = unpack_update(plaintext)
        header_len = int.from_bytes(plaintext[:4], "big")
        body = plaintext[4 + header_len :]
        assert restored.metadata["digest"] == hashlib.sha256(body).hexdigest()

    def test_tampered_body_raises_integrity_error(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        plaintext = bytearray(decrypt(enclave.keypair, message.ciphertext))
        # flip one bit deep inside the parameter payload, past the envelope
        plaintext[-10] ^= 0x01
        with pytest.raises(IntegrityError, match="digest mismatch"):
            unpack_update(bytes(plaintext))

    def test_integrity_error_is_a_frame_error(self):
        # the fault plane's corruption handling catches FrameError; a digest
        # mismatch must flow through the same retry path
        assert issubclass(IntegrityError, FrameError)

    def test_forged_nonce_rejected_at_the_proxy(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        plaintext = decrypt(enclave.keypair, message.ciphertext)
        # graft the envelope onto a different claimed sender: recompute the
        # body digest (it still matches) but keep the original nonce
        header_len = int.from_bytes(plaintext[:4], "big")
        header = plaintext[4 : 4 + header_len].decode()
        forged_header = header.replace('"sender_id": 0', '"sender_id": 5').encode()
        forged = (
            len(forged_header).to_bytes(4, "big")
            + forged_header
            + plaintext[4 + header_len :]
        )
        proxy = build_proxy(enclave, k=2)
        forged_message = EncryptedUpdate(
            ciphertext=encrypt(enclave.public_key, forged), transport_id=5
        )
        with pytest.raises(IntegrityError, match="nonce"):
            proxy.receive(forged_message)
        assert proxy.pending() == 0


class TestReplayRejection:
    def test_duplicate_ciphertext_raises_and_is_counted(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 2)
        messages = [proxy.encrypt_for_proxy(u) for u in updates]
        for message in messages:
            proxy.receive(message)
        with pytest.raises(ReplayError, match="replay"):
            proxy.receive(messages[0])
        assert proxy.stats.replays_rejected == 1
        # the duplicate buffered nothing: still the two originals pending
        assert proxy.pending() == 2
        assert proxy.stats.received == 2

    def test_replay_rejection_frees_enclave_memory(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        update = make_updates(small_model, 1)[0]
        message = proxy.encrypt_for_proxy(update)
        proxy.receive(message)
        resident_before = enclave.memory.used_bytes
        with pytest.raises(ReplayError):
            proxy.receive(message)
        assert enclave.memory.used_bytes == resident_before

    def test_stream_skips_replays_and_keeps_going(self, small_model, enclave):
        proxy = build_proxy(enclave, k=2)
        updates = make_updates(small_model, 2)
        messages = [proxy.encrypt_for_proxy(u) for u in updates]
        # a replayed first message sits between two legitimate ones
        emitted = proxy.stream([messages[0], messages[0], messages[1]])
        emitted.extend(proxy.flush())
        assert proxy.stats.replays_rejected == 1
        assert len(emitted) == 2

    def test_same_sender_next_round_is_not_a_replay(self, small_model, enclave):
        proxy = build_proxy(enclave, k=1)
        first = make_updates(small_model, 1)[0]
        proxy.process_round([proxy.encrypt_for_proxy(first)])
        second = make_updates(small_model, 1, round_index=1)[0]
        proxy.process_round([proxy.encrypt_for_proxy(second)])
        assert proxy.stats.replays_rejected == 0
        assert proxy.stats.received == 2

    def test_crash_clears_the_nonce_cache(self, small_model, enclave):
        # failover retransmissions re-send the same (sender, round) envelopes;
        # a restarted proxy must accept them or the failover path starves
        proxy = build_proxy(enclave, k=2)
        update = make_updates(small_model, 1)[0]
        message = proxy.encrypt_for_proxy(update)
        proxy.receive(message)
        proxy.crash()
        proxy.receive(message)
        assert proxy.stats.replays_rejected == 0


class TestChimeraProvenance:
    def test_chimeras_carry_unit_digests(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 3)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        digests = {
            u.metadata["digest"]: u.sender_id
            for u in (unpack_update(decrypt(enclave.keypair, proxy.encrypt_for_proxy(v).ciphertext)) for v in updates)
        }
        assert len(emitted) == 3
        for chimera in emitted:
            unit_digests = chimera.metadata["unit_digests"]
            assert len(unit_digests) == len(chimera.metadata["unit_sources"])
            for source, digest in zip(chimera.metadata["unit_sources"], unit_digests):
                # each layer's digest names the envelope of its true source
                assert digests[digest] == source
