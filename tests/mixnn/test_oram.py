"""Oblivious list storage: semantics and access-pattern uniformity."""

import pytest

from repro.mixnn.oram import ObliviousList


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ObliviousList(0)

    def test_insert_and_len(self):
        lst = ObliviousList(3)
        lst.insert("a")
        lst.insert("b")
        assert len(lst) == 2
        assert not lst.full
        lst.insert("c")
        assert lst.full

    def test_overflow(self):
        lst = ObliviousList(1)
        lst.insert("a")
        with pytest.raises(OverflowError):
            lst.insert("b")

    def test_take_returns_occupied_item(self):
        lst = ObliviousList(4)
        for item in "abc":
            lst.insert(item)
        assert lst.take(1) == "b"
        assert len(lst) == 2

    def test_take_out_of_range(self):
        lst = ObliviousList(2)
        lst.insert("a")
        with pytest.raises(IndexError):
            lst.take(1)

    def test_items_snapshot(self):
        lst = ObliviousList(3)
        lst.insert("x")
        lst.insert("y")
        assert lst.items() == ["x", "y"]

    def test_reuse_of_freed_slots(self):
        lst = ObliviousList(2)
        lst.insert("a")
        lst.insert("b")
        lst.take(0)
        lst.insert("c")
        assert sorted(lst.items()) == ["b", "c"]


class TestObliviousness:
    def test_every_operation_touches_all_slots(self):
        """Touch count depends only on operation count, never on indices."""
        capacity = 8

        def touches(indices):
            lst = ObliviousList(capacity)
            for i in range(capacity):
                lst.insert(i)
            for index in indices:
                lst.take(index)
            return lst.touch_count

        assert touches([0, 0, 0]) == touches([4, 2, 1]) == touches([7, 6, 5])

    def test_insert_touch_count_constant(self):
        lst = ObliviousList(5)
        counts = []
        for i in range(5):
            before = lst.touch_count
            lst.insert(i)
            counts.append(lst.touch_count - before)
        assert len(set(counts)) == 1
