"""Adversarial framing: RW01 and the transport envelope under truncation and
bit flips at every offset — every malformed frame dies with a typed
:class:`FrameError`, never a silent mis-parse, a numpy shape explosion, or a
hang.  Plus the mixnn-side fault machinery: per-item decrypt errors, proxy
crash accounting, and cascade failover.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.federated.faults import FaultConfig, FaultInjector, FaultLedger
from repro.federated.update import ModelUpdate
from repro.mixnn.crypto import CryptoError, decrypt
from repro.mixnn.enclave import UpdateDecryptError
from repro.mixnn.mixnet import MixCascade
from repro.mixnn.proxy import MixNNProxy
from repro.mixnn.transport import pack_update, unpack_update
from repro.nn.serialization import (
    FrameError,
    flat_from_bytes,
    state_from_bytes,
    state_to_bytes,
)
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates

pytestmark = pytest.mark.faults


def tiny_state():
    return OrderedDict(
        [
            ("layer.weight", np.arange(6, dtype=np.float32).reshape(2, 3)),
            ("layer.bias", np.asarray([1.0, 2.0], dtype=np.float32)),
        ]
    )


def tiny_update():
    return ModelUpdate(sender_id=3, round_index=1, state=tiny_state(), num_samples=10)


def structure_of(state):
    return [(name, tuple(array.shape)) for name, array in state.items()]


class TestRW01Truncation:
    def test_every_strict_prefix_raises_a_typed_error(self):
        blob = state_to_bytes(tiny_state())
        for cut in range(len(blob)):
            with pytest.raises(FrameError):
                state_from_bytes(blob[:cut])
            with pytest.raises(FrameError):
                flat_from_bytes(blob[:cut])
        # sanity: the untruncated blob still parses
        assert structure_of(state_from_bytes(blob)) == structure_of(tiny_state())

    def test_trailing_garbage_is_rejected(self):
        blob = state_to_bytes(tiny_state())
        with pytest.raises(FrameError, match="payload"):
            state_from_bytes(blob + b"\x00")
        with pytest.raises(FrameError, match="payload"):
            flat_from_bytes(blob + b"\xff" * 7)

    def test_foreign_magic_is_rejected(self):
        with pytest.raises(FrameError, match="encoding"):
            state_from_bytes(b"RW99" + b"\x00" * 64)
        with pytest.raises(FrameError):
            state_from_bytes(b"")

    def test_header_length_overrun_is_rejected(self):
        blob = bytearray(state_to_bytes(tiny_state()))
        blob[4:8] = (2**31).to_bytes(4, "big")
        with pytest.raises(FrameError, match="header length"):
            state_from_bytes(bytes(blob))


class TestRW01BitFlips:
    def test_structural_bytes_never_mis_parse(self):
        """Flip every bit of the magic, length field, and header.

        Each mutation must either raise :class:`FrameError` or (a flip
        inside a JSON string literal that happens to stay valid, e.g. a
        renamed parameter) still parse to the original shapes — the declared
        payload geometry cannot silently change, because the total-size check
        would catch it.
        """
        reference = tiny_state()
        blob = state_to_bytes(reference)
        header_end = 8 + int.from_bytes(blob[4:8], "big")
        shapes = [tuple(a.shape) for a in reference.values()]
        for position in range(header_end):
            for bit in range(8):
                mutated = bytearray(blob)
                mutated[position] ^= 1 << bit
                try:
                    state = state_from_bytes(bytes(mutated))
                except FrameError:
                    continue
                assert [tuple(a.shape) for a in state.values()] == shapes

    def test_payload_flips_change_values_not_structure(self):
        reference = tiny_state()
        blob = bytearray(state_to_bytes(reference))
        header_end = 8 + int.from_bytes(blob[4:8], "big")
        blob[header_end] ^= 0x80
        state = state_from_bytes(bytes(blob))
        assert structure_of(state) == structure_of(reference)
        assert not np.array_equal(state["layer.weight"], reference["layer.weight"])


class TestEnvelopeFraming:
    def test_every_strict_prefix_raises_a_typed_error(self, keypair):
        packed = pack_update(tiny_update(), keypair.public)
        plaintext = decrypt(keypair, packed.ciphertext)
        for cut in range(len(plaintext)):
            with pytest.raises(FrameError):
                unpack_update(plaintext[:cut])
        restored = unpack_update(plaintext)
        assert restored.sender_id == 3
        assert restored.round_index == 1
        assert structure_of(restored.state) == structure_of(tiny_state())

    def test_envelope_bit_flips_never_mis_parse(self, keypair):
        packed = pack_update(tiny_update(), keypair.public)
        plaintext = decrypt(keypair, packed.ciphertext)
        envelope_end = 4 + int.from_bytes(plaintext[:4], "big")
        shapes = structure_of(tiny_state())
        for position in range(envelope_end):
            for bit in range(8):
                mutated = bytearray(plaintext)
                mutated[position] ^= 1 << bit
                try:
                    update = unpack_update(bytes(mutated))
                except FrameError:
                    continue
                assert structure_of(update.state) == shapes

    def test_ciphertext_tamper_is_a_crypto_error_not_a_frame_error(self, keypair):
        packed = pack_update(tiny_update(), keypair.public)
        tampered = bytearray(packed.ciphertext)
        tampered[len(tampered) // 2] ^= 1
        with pytest.raises(CryptoError):
            decrypt(keypair, bytes(tampered))

    def test_injector_corruptions_are_always_typed_errors(self, keypair):
        """The fault plane's own corruption model can never sneak a frame by.

        A bit flip inside a JSON string literal may survive as a renamed
        field (name integrity is the MAC's job, not the framing's), but the
        declared payload geometry can never silently change.
        """
        packed = pack_update(tiny_update(), keypair.public)
        plaintext = decrypt(keypair, packed.ciphertext)
        injector = FaultInjector(0, FaultConfig())
        shapes = [shape for _, shape in structure_of(tiny_state())]
        for entity in range(64):
            mangled = injector.corrupt_frame(plaintext, entity, 0)
            try:
                update = unpack_update(mangled)
            except FrameError:
                continue
            assert [tuple(a.shape) for a in update.state.values()] == shapes


class TestDecryptManyFaultSurface:
    def test_collect_mode_returns_errors_in_slot(self, enclave, keypair, small_model):
        updates = make_updates(small_model, 3)
        messages = [pack_update(u, keypair.public) for u in updates]
        bad = bytearray(messages[1].ciphertext)
        bad[-1] ^= 1
        ciphertexts = [messages[0].ciphertext, bytes(bad), messages[2].ciphertext]
        results = enclave.decrypt_many(
            ciphertexts, ids=[u.sender_id for u in updates], on_error="collect"
        )
        assert isinstance(results[1], UpdateDecryptError)
        assert results[1].item_id == updates[1].sender_id
        assert results[1].index == 1
        for good_slot in (0, 2):
            assert isinstance(results[good_slot], bytes)

    def test_raise_mode_names_the_offending_client(self, enclave, keypair, small_model):
        update = make_updates(small_model, 1)[0]
        bad = bytearray(pack_update(update, keypair.public).ciphertext)
        bad[0] ^= 1
        with pytest.raises(UpdateDecryptError, match=str(update.sender_id)):
            enclave.decrypt_many([bytes(bad)], ids=[update.sender_id])

    def test_invalid_on_error_mode(self, enclave):
        with pytest.raises(ValueError, match="on_error"):
            enclave.decrypt_many([], on_error="ignore")


class TestProxyCrash:
    def test_full_round_crash_leaves_every_sender_intact(self, small_model):
        updates = make_updates(small_model, 5)
        proxy = MixNNProxy(k=len(updates), rng=rng_from_seed(0))
        proxy.stream([proxy.encrypt_for_proxy(u) for u in updates])
        intact, partial = proxy.crash()
        assert intact == sorted(u.sender_id for u in updates)
        assert partial == []
        assert proxy.pending() == 0
        assert proxy.stats.crashes == 1

    def test_streaming_crash_splits_intact_and_partial(self, small_model):
        updates = make_updates(small_model, 6)
        proxy = MixNNProxy(k=2, rng=rng_from_seed(0))
        emitted = proxy.stream([proxy.encrypt_for_proxy(u) for u in updates])
        assert emitted  # k=2 forces emissions mid-stream
        intact, partial = proxy.crash()
        assert set(intact).isdisjoint(partial)
        # fully-emitted senders are neither: nothing of theirs is buffered
        assert len(intact) + len(partial) <= len(updates)

    def test_proxy_is_usable_after_a_crash(self, small_model):
        updates = make_updates(small_model, 4)
        proxy = MixNNProxy(k=4, rng=rng_from_seed(0))
        proxy.stream([proxy.encrypt_for_proxy(u) for u in updates[:2]])
        proxy.crash()
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert len(emitted) == len(updates)

    def test_poisoned_ciphertext_is_skipped_not_fatal(self, small_model):
        updates = make_updates(small_model, 3)
        proxy = MixNNProxy(k=3, rng=rng_from_seed(0))
        messages = [proxy.encrypt_for_proxy(u) for u in updates]
        from dataclasses import replace

        bad = bytearray(messages[0].ciphertext)
        bad[-1] ^= 1
        messages[0] = replace(messages[0], ciphertext=bytes(bad))
        emitted = proxy.process_round(messages)
        assert proxy.stats.decrypt_failures == 1
        assert len(emitted) == len(updates) - 1


class ScriptedInjector:
    """Duck-typed injector whose crash schedule is written by the test."""

    def __init__(self, crashes):
        self.crashes = set(crashes)  # {(hop, attempt), ...}

    def mix_node_crash(self, hop, round_index, attempt):
        return (hop, attempt) in self.crashes

    def backoff(self, kind, entity, round_index, attempt):
        return 1.0


class TestCascadeFailover:
    def test_crash_free_delivery_matches_send_batch_semantics(self):
        cascade = MixCascade(num_mixes=3, batch_size=2, rng=rng_from_seed(0))
        payloads = [b"alpha", b"bravo", b"charlie"]
        injector = FaultInjector(0, FaultConfig())
        delivered = cascade.send_batch_with_failover(payloads, injector)
        assert sorted(delivered) == sorted(payloads)

    def test_crashed_node_is_routed_around(self):
        cascade = MixCascade(num_mixes=3, batch_size=2, rng=rng_from_seed(0))
        payloads = [b"alpha", b"bravo"]
        ledger = FaultLedger()
        delivered = cascade.send_batch_with_failover(
            payloads, ScriptedInjector({(1, 0)}), round_index=2, ledger=ledger
        )
        assert sorted(delivered) == sorted(payloads)
        assert ledger.failed_over == 1
        assert ledger.entries[0].kind == "mixnode-crash"
        assert ledger.entries[0].round_index == 2
        assert ledger.retransmissions == len(payloads)
        ledger.validate()

    def test_every_node_crashing_is_fatal(self):
        cascade = MixCascade(num_mixes=2, batch_size=2, rng=rng_from_seed(0))
        injector = ScriptedInjector({(0, 0), (0, 1), (1, 0), (1, 1)})
        with pytest.raises(RuntimeError, match="no surviving"):
            cascade.send_batch_with_failover([b"x"], injector)
