"""Property-based verification of the §4.2 utility-equivalence theorem.

The theorem: if the mixing matrix assigns every (participant, layer) pair to
exactly one emitted update, the column-mean aggregate of the mixed batch
equals the aggregate of the original batch.  Hypothesis generates random
cohort sizes, model schemas and parameter values; the property must hold for
every granularity.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.update import ModelUpdate, aggregate_updates
from repro.mixnn.mixing import mix_updates, mixing_matrix, is_valid_mixing_matrix
from repro.utils.rng import rng_from_seed


@st.composite
def update_batches(draw):
    """A random federated round: schema + per-participant values."""
    num_clients = draw(st.integers(min_value=1, max_value=8))
    num_layers = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = rng_from_seed(seed)
    shapes = []
    for layer in range(num_layers):
        rows = draw(st.integers(min_value=1, max_value=4))
        cols = draw(st.integers(min_value=1, max_value=4))
        shapes.append((f"layer{layer}.weight", (rows, cols)))
        shapes.append((f"layer{layer}.bias", (rows,)))
    updates = []
    for sender in range(num_clients):
        state = OrderedDict(
            (name, rng.standard_normal(shape).astype(np.float32)) for name, shape in shapes
        )
        updates.append(ModelUpdate(sender_id=sender, round_index=0, state=state))
    return updates, seed


class TestUtilityEquivalence:
    @given(update_batches(), st.sampled_from(["model", "layer", "parameter"]))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_invariant_under_mixing(self, batch, granularity):
        updates, seed = batch
        mixed = mix_updates(updates, rng_from_seed(seed + 1), granularity=granularity)
        original = aggregate_updates(updates)
        after = aggregate_updates(mixed)
        for name in original:
            np.testing.assert_allclose(original[name], after[name], atol=1e-5)

    @given(update_batches())
    @settings(max_examples=40, deadline=None)
    def test_every_piece_forwarded_exactly_once(self, batch):
        updates, seed = batch
        mixed = mix_updates(updates, rng_from_seed(seed + 2))
        num_units = len(mixed[0].metadata["unit_sources"])
        for unit in range(num_units):
            sources = sorted(m.metadata["unit_sources"][unit] for m in mixed)
            assert sources == [u.sender_id for u in updates]

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_matrices_always_valid(self, num_updates, num_units, seed):
        matrix = mixing_matrix(num_updates, num_units, rng_from_seed(seed))
        assert is_valid_mixing_matrix(matrix, num_updates)

    @given(update_batches())
    @settings(max_examples=30, deadline=None)
    def test_mixing_is_lossless_as_a_multiset(self, batch):
        """The multiset of per-layer values is preserved exactly."""
        updates, seed = batch
        mixed = mix_updates(updates, rng_from_seed(seed + 3))
        for name in updates[0].state:
            before = sorted(float(u.state[name].sum()) for u in updates)
            after = sorted(float(m.state[name].sum()) for m in mixed)
            np.testing.assert_allclose(before, after, atol=1e-6)
