"""Property-based tests of the hybrid encryption and sealing layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mixnn.crypto import decrypt, encrypt, process_keypair
from repro.mixnn.enclave import SGXEnclaveSim

KP = process_keypair()
ENCLAVE = SGXEnclaveSim(keypair=KP)


class TestEncryptionProperties:
    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_any_payload(self, payload):
        assert decrypt(KP, encrypt(KP.public, payload)) == payload

    @given(st.binary(min_size=1, max_size=512))
    @settings(max_examples=20, deadline=None)
    def test_ciphertext_never_contains_plaintext(self, payload):
        if len(payload) < 4:
            return  # short substrings occur by chance
        assert payload not in encrypt(KP.public, payload)

    @given(st.binary(min_size=0, max_size=1024))
    @settings(max_examples=20, deadline=None)
    def test_ciphertext_length_is_payload_plus_constant(self, payload):
        blob = encrypt(KP.public, payload)
        overhead = len(blob) - len(payload)
        # 2-byte length + KEM + nonce + MAC; constant for a fixed key.
        assert overhead == 2 + KP.public.modulus_bytes + 16 + 32


class TestSealingProperties:
    @given(st.binary(min_size=0, max_size=2048))
    @settings(max_examples=30, deadline=None)
    def test_seal_unseal_round_trip(self, payload):
        assert ENCLAVE.unseal(ENCLAVE.seal(payload)) == payload

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=20, deadline=None)
    def test_sealed_blobs_are_randomized(self, payload):
        assert ENCLAVE.seal(payload) != ENCLAVE.seal(payload)
