"""Layer-mixing core: matrices, granularities, identity bookkeeping."""

import numpy as np
import pytest

from repro.federated.update import aggregate_updates
from repro.mixnn.mixing import (
    Granularity,
    is_valid_mixing_matrix,
    mix_updates,
    mixing_matrix,
)
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


class TestMixingMatrix:
    def test_every_column_is_a_permutation(self):
        matrix = mixing_matrix(7, 5, rng_from_seed(0))
        assert matrix.shape == (7, 5)
        assert is_valid_mixing_matrix(matrix, 7)

    def test_validation_of_sizes(self):
        with pytest.raises(ValueError):
            mixing_matrix(0, 3, rng_from_seed(0))
        with pytest.raises(ValueError):
            mixing_matrix(3, 0, rng_from_seed(0))

    def test_invalid_matrices_rejected(self):
        assert not is_valid_mixing_matrix(np.array([[0, 0], [1, 0]]), 2)  # ok col 2? col1=[0,1] ok, col0=[0,0] dup
        assert not is_valid_mixing_matrix(np.zeros((2,)), 2)  # wrong ndim
        assert not is_valid_mixing_matrix(np.array([[0], [1]]), 3)  # wrong rows

    def test_deterministic_per_seed(self):
        a = mixing_matrix(6, 4, rng_from_seed(5))
        b = mixing_matrix(6, 4, rng_from_seed(5))
        np.testing.assert_array_equal(a, b)


class TestMixUpdates:
    def test_output_count_matches_input(self, small_model):
        updates = make_updates(small_model, 6)
        mixed = mix_updates(updates, rng_from_seed(0))
        assert len(mixed) == 6

    def test_each_layer_piece_used_exactly_once(self, small_model):
        updates = make_updates(small_model, 5)
        mixed = mix_updates(updates, rng_from_seed(1))
        layers = list(updates[0].layers)
        for layer_index, layer in enumerate(layers):
            sources = [m.metadata["unit_sources"][layer_index] for m in mixed]
            assert sorted(sources) == [u.sender_id for u in updates]

    def test_aggregation_preserved(self, small_model):
        updates = make_updates(small_model, 6)
        mixed = mix_updates(updates, rng_from_seed(2))
        original = aggregate_updates(updates)
        after = aggregate_updates(mixed)
        for name in original:
            np.testing.assert_allclose(original[name], after[name], atol=1e-6)

    def test_apparent_ids_are_slot_senders(self, small_model):
        updates = make_updates(small_model, 4)
        mixed = mix_updates(updates, rng_from_seed(3))
        assert [m.apparent_id for m in mixed] == [u.sender_id for u in updates]
        assert all(m.sender_id == -1 for m in mixed)

    def test_layer_values_come_from_declared_source(self, small_model):
        updates = make_updates(small_model, 4)
        by_sender = {u.sender_id: u for u in updates}
        mixed = mix_updates(updates, rng_from_seed(4))
        for emitted in mixed:
            layers = list(emitted.layers.items())
            for (layer, names), source in zip(layers, emitted.metadata["unit_sources"]):
                for name in names:
                    np.testing.assert_array_equal(emitted.state[name], by_sender[source].state[name])

    def test_model_granularity_keeps_whole_updates(self, small_model):
        updates = make_updates(small_model, 5)
        mixed = mix_updates(updates, rng_from_seed(5), granularity="model")
        for emitted in mixed:
            assert len(set(emitted.metadata["unit_sources"])) == 1

    def test_parameter_granularity_has_one_unit_per_tensor(self, small_model):
        updates = make_updates(small_model, 3)
        mixed = mix_updates(updates, rng_from_seed(6), granularity="parameter")
        assert len(mixed[0].metadata["unit_sources"]) == len(updates[0].state)

    def test_unknown_granularity(self, small_model):
        updates = make_updates(small_model, 3)
        with pytest.raises(ValueError, match="granularity"):
            mix_updates(updates, rng_from_seed(0), granularity="neuron")
        assert "layer" in Granularity

    def test_explicit_matrix_respected(self, small_model):
        updates = make_updates(small_model, 3)
        num_layers = len(updates[0].layers)
        identity = np.tile(np.arange(3)[:, None], (1, num_layers))
        mixed = mix_updates(updates, rng_from_seed(0), matrix=identity)
        for original, emitted in zip(updates, mixed):
            np.testing.assert_array_equal(original.flat(), emitted.flat())

    def test_invalid_matrix_rejected(self, small_model):
        updates = make_updates(small_model, 3)
        num_layers = len(updates[0].layers)
        bad = np.zeros((3, num_layers), dtype=int)
        with pytest.raises(ValueError, match="permutation"):
            mix_updates(updates, rng_from_seed(0), matrix=bad)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            mix_updates([], rng_from_seed(0))

    def test_schema_mismatch_rejected(self, small_model):
        updates = make_updates(small_model, 2)
        updates[1].state.pop(list(updates[1].state)[-1])
        with pytest.raises(KeyError):
            mix_updates(updates, rng_from_seed(0))

    def test_preserves_schema_order(self, small_model):
        updates = make_updates(small_model, 4)
        mixed = mix_updates(updates, rng_from_seed(7))
        assert mixed[0].parameter_names == updates[0].parameter_names
