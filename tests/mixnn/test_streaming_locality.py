"""The streaming window's locality property (k-list ablation, DESIGN.md §6).

With a small ``k``, the proxy's layer lists act as a sliding window over
arrival order: an emitted update's layer pieces can only come from the last
few arrivals, so mixed layers correlate temporally with the apparent sender.
With ``k`` equal to the round size (the paper's L = C evaluation setting) the
selection is uniform over the whole cohort.  These tests pin down both ends.
"""

import numpy as np
import pytest

from repro.mixnn.enclave import SGXEnclaveSim
from repro.mixnn.proxy import MixNNProxy
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


def source_distance_stats(model, keypair, k: int, cohort: int = 16, seed: int = 0):
    """Mean |arrival index of layer source − arrival index of apparent sender|."""
    proxy = MixNNProxy(
        enclave=SGXEnclaveSim(keypair=keypair, constant_time=False),
        k=k,
        rng=rng_from_seed(seed),
    )
    updates = make_updates(model, cohort, seed=seed)
    emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
    arrival_index = {u.sender_id: i for i, u in enumerate(updates)}
    distances = []
    for message in emitted:
        apparent = arrival_index[message.apparent_id]
        for source in message.metadata["unit_sources"]:
            distances.append(abs(arrival_index[source] - apparent))
    return float(np.mean(distances))


class TestStreamingLocality:
    def test_small_window_correlates_with_arrival_order(self, small_model, keypair):
        """k=2 keeps sources within a couple of arrivals of the sender."""
        near = source_distance_stats(small_model, keypair, k=2)
        assert near < 4.0

    def test_full_round_buffering_decorrelates(self, small_model, keypair):
        """k=cohort draws sources uniformly: mean distance ≈ cohort/3."""
        far = source_distance_stats(small_model, keypair, k=16)
        # Uniform |i - j| over 16 slots has mean ≈ 5.3.
        assert far > 4.0

    def test_monotone_in_k(self, small_model, keypair):
        distances = [source_distance_stats(small_model, keypair, k=k) for k in (2, 6, 16)]
        assert distances[0] < distances[-1]

    @pytest.mark.parametrize("k", [2, 5, 16])
    def test_equivalence_holds_at_every_k(self, small_model, keypair, k):
        """Locality affects privacy, never the aggregate (§4.2 is k-independent)."""
        from repro.federated.update import aggregate_updates

        proxy = MixNNProxy(
            enclave=SGXEnclaveSim(keypair=keypair, constant_time=False),
            k=k,
            rng=rng_from_seed(1),
        )
        updates = make_updates(small_model, 16, seed=1)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        before = aggregate_updates(updates)
        after = aggregate_updates(emitted)
        for name in before:
            np.testing.assert_allclose(before[name], after[name], atol=1e-5)
