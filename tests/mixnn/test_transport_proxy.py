"""Wire format and the streaming MixNN proxy."""

import numpy as np
import pytest

from repro.federated.update import aggregate_updates
from repro.mixnn.proxy import MixNNProxy
from repro.mixnn.transport import pack_update, unpack_update, update_nbytes
from repro.mixnn.crypto import decrypt
from repro.utils.rng import rng_from_seed

from ..conftest import make_updates


class TestTransport:
    def test_pack_unpack_round_trip(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        plaintext = decrypt(enclave.keypair, message.ciphertext)
        restored = unpack_update(plaintext)
        assert restored.sender_id == update.sender_id
        assert restored.round_index == update.round_index
        assert restored.num_samples == update.num_samples
        np.testing.assert_array_equal(restored.flat(), update.flat())

    def test_transport_id_outside_ciphertext(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        message = pack_update(update, enclave.public_key)
        assert message.transport_id == update.sender_id
        assert message.nbytes == len(message.ciphertext)

    def test_update_nbytes_counts_float32_payload(self, small_model):
        update = make_updates(small_model, 1)[0]
        expected = sum(v.nbytes for v in update.state.values())
        assert update_nbytes(update) == expected

    def test_staleness_rides_inside_the_ciphertext(self, small_model, enclave):
        update = make_updates(small_model, 1)[0]
        update.metadata["staleness"] = 3
        message = pack_update(update, enclave.public_key)
        restored = unpack_update(decrypt(enclave.keypair, message.ciphertext))
        assert restored.metadata["staleness"] == 3

    def test_fresh_update_wire_bytes_unchanged(self, small_model, enclave):
        """staleness=0 is omitted from the envelope: the synchronous flow's
        plaintext framing is byte-identical to the pre-passthrough format."""
        update = make_updates(small_model, 1)[0]
        fresh = pack_update(update, enclave.public_key)
        update.metadata["staleness"] = 0
        tagged = pack_update(update, enclave.public_key)
        assert len(decrypt(enclave.keypair, fresh.ciphertext)) == len(
            decrypt(enclave.keypair, tagged.ciphertext)
        )
        restored = unpack_update(decrypt(enclave.keypair, tagged.ciphertext))
        assert "staleness" not in restored.metadata


def build_proxy(enclave, k, seed=0):
    return MixNNProxy(enclave=enclave, k=k, rng=rng_from_seed(seed))


class TestProxyWarmup:
    def test_k_validation(self, enclave):
        with pytest.raises(ValueError):
            MixNNProxy(enclave=enclave, k=0)

    def test_first_k_arrivals_emit_nothing(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 3)
        for update in updates:
            assert proxy.receive(proxy.encrypt_for_proxy(update)) is None
        assert proxy.pending() == 3

    def test_arrival_after_warmup_emits(self, small_model, enclave):
        proxy = build_proxy(enclave, k=2)
        updates = make_updates(small_model, 3)
        assert proxy.receive(proxy.encrypt_for_proxy(updates[0])) is None
        assert proxy.receive(proxy.encrypt_for_proxy(updates[1])) is None
        emitted = proxy.receive(proxy.encrypt_for_proxy(updates[2]))
        assert emitted is not None
        assert emitted.metadata["mixed"]


class TestProxyRound:
    def test_round_emits_one_update_per_participant(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 7)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert len(emitted) == 7
        assert sorted(m.apparent_id for m in emitted) == [u.sender_id for u in updates]

    def test_aggregation_equivalence_through_full_pipeline(self, small_model, enclave):
        proxy = build_proxy(enclave, k=4)
        updates = make_updates(small_model, 6)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        original = aggregate_updates(updates)
        mixed = aggregate_updates(emitted)
        for name in original:
            np.testing.assert_allclose(original[name], mixed[name], atol=1e-5)

    def test_every_layer_piece_forwarded_once(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 6)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        num_units = len(emitted[0].metadata["unit_sources"])
        for unit in range(num_units):
            sources = sorted(m.metadata["unit_sources"][unit] for m in emitted)
            assert sources == [u.sender_id for u in updates]

    def test_sender_identity_hidden(self, small_model, enclave):
        proxy = build_proxy(enclave, k=2)
        updates = make_updates(small_model, 4)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert all(m.sender_id == -1 for m in emitted)

    def test_two_rounds_reuse_proxy(self, small_model, enclave):
        proxy = build_proxy(enclave, k=2)
        for round_index in (0, 1):
            updates = make_updates(small_model, 4, seed=round_index, round_index=round_index)
            emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
            assert len(emitted) == 4
            assert proxy.pending() == 0
            assert all(m.round_index == round_index for m in emitted)

    def test_schema_change_rejected(self, small_model, enclave):
        from repro.experiments.models import paper_cnn

        proxy = build_proxy(enclave, k=2)
        updates = make_updates(small_model, 2)
        for update in updates:
            proxy.receive(proxy.encrypt_for_proxy(update))
        other_model = paper_cnn((3, 8, 8), 10, rng_from_seed(1), conv_layers=3)
        alien = make_updates(other_model, 1)[0]
        # a fresh sender, so the replay guard lets the schema check speak
        alien.sender_id = 7
        with pytest.raises(KeyError, match="schema"):
            proxy.receive(proxy.encrypt_for_proxy(alien))

    def test_stats_track_counts_and_bytes(self, small_model, enclave):
        proxy = build_proxy(enclave, k=2)
        updates = make_updates(small_model, 5)
        proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert proxy.stats.received == 5
        assert proxy.stats.emitted == 5
        assert proxy.stats.flushes == 1
        assert proxy.stats.bytes_in > proxy.stats.bytes_out > 0

    def test_memory_returns_to_zero_after_flush(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        updates = make_updates(small_model, 5)
        proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert enclave.memory.used_bytes == 0

    def test_repr(self, small_model, enclave):
        proxy = build_proxy(enclave, k=3)
        assert "k=3" in repr(proxy)


class TestProxyDecryptionPool:
    def test_pooled_round_identical_to_sequential(self, small_model, keypair):
        """Concurrent decryption must not change what the proxy emits."""
        from repro.mixnn.enclave import SGXEnclaveSim

        def run(max_workers):
            enclave = SGXEnclaveSim(keypair=keypair)
            proxy = MixNNProxy(enclave=enclave, k=3, rng=rng_from_seed(0), max_workers=max_workers)
            updates = make_updates(small_model, 6)
            return proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])

        sequential = run(1)
        pooled = run(4)
        assert [m.apparent_id for m in sequential] == [m.apparent_id for m in pooled]
        assert [m.metadata["unit_sources"] for m in sequential] == [
            m.metadata["unit_sources"] for m in pooled
        ]
        for a, b in zip(sequential, pooled):
            for name in a.state:
                np.testing.assert_array_equal(a.state[name], b.state[name])

    def test_decrypt_many_matches_single_decrypts(self, small_model, keypair):
        from repro.mixnn.crypto import encrypt
        from repro.mixnn.enclave import SGXEnclaveSim

        enclave = SGXEnclaveSim(keypair=keypair)
        payloads = [bytes([i]) * (1000 + i) for i in range(5)]
        ciphertexts = [encrypt(enclave.public_key, p) for p in payloads]
        assert enclave.decrypt_many(ciphertexts, max_workers=4) == payloads

    def test_decrypt_many_propagates_tampering(self, keypair):
        from repro.mixnn.crypto import CryptoError, encrypt
        from repro.mixnn.enclave import SGXEnclaveSim

        enclave = SGXEnclaveSim(keypair=keypair)
        good = encrypt(enclave.public_key, b"fine")
        bad = bytearray(encrypt(enclave.public_key, b"tampered"))
        bad[-1] ^= 0x01
        with pytest.raises(CryptoError):
            enclave.decrypt_many([good, bytes(bad)], max_workers=4)


class TestProxyGranularity:
    def test_model_granularity_round(self, small_model, enclave):
        proxy = MixNNProxy(enclave=enclave, k=2, rng=rng_from_seed(0), granularity="model")
        updates = make_updates(small_model, 4)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        for message in emitted:
            assert len(set(message.metadata["unit_sources"])) == 1

    def test_parameter_granularity_round(self, small_model, enclave):
        proxy = MixNNProxy(enclave=enclave, k=2, rng=rng_from_seed(0), granularity="parameter")
        updates = make_updates(small_model, 4)
        emitted = proxy.process_round([proxy.encrypt_for_proxy(u) for u in updates])
        assert len(emitted[0].metadata["unit_sources"]) == len(updates[0].state)
