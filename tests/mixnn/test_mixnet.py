"""Chaum mix cascade: onion routing, batching, unlinkability."""

import numpy as np
import pytest

from repro.mixnn.crypto import decrypt, generate_keypair
from repro.mixnn.mixnet import MixCascade, MixNode, onion_encrypt
from repro.utils.rng import rng_from_seed


@pytest.fixture(scope="module")
def small_keypairs():
    """512-bit keys keep the cascade tests fast."""
    return [generate_keypair(bits=512) for _ in range(3)]


@pytest.fixture()
def cascade(small_keypairs):
    return MixCascade(num_mixes=3, batch_size=2, rng=rng_from_seed(0), keypairs=small_keypairs)


class TestOnionEncrypt:
    def test_layers_peel_in_route_order(self, small_keypairs):
        keys = [kp.public for kp in small_keypairs]
        blob = onion_encrypt(b"inner payload", keys)
        for kp in small_keypairs:
            blob = decrypt(kp, blob)
        assert blob == b"inner payload"

    def test_each_layer_grows_the_blob(self, small_keypairs):
        keys = [kp.public for kp in small_keypairs]
        one = onion_encrypt(b"m", keys[:1])
        three = onion_encrypt(b"m", keys)
        assert len(three) > len(one)


class TestMixNode:
    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            MixNode(batch_size=0)

    def test_buffers_until_batch_full(self, small_keypairs):
        node = MixNode(keypair=small_keypairs[0], batch_size=3, rng=rng_from_seed(0))
        from repro.mixnn.crypto import encrypt

        assert node.receive(encrypt(node.public_key, b"a")) == []
        assert node.receive(encrypt(node.public_key, b"b")) == []
        batch = node.receive(encrypt(node.public_key, b"c"))
        assert sorted(batch) == [b"a", b"b", b"c"]
        assert node.pending == 0

    def test_undecryptable_message_dropped(self, small_keypairs):
        node = MixNode(keypair=small_keypairs[0], batch_size=1, rng=rng_from_seed(0))
        assert node.receive(b"not-a-ciphertext") == []
        assert node.dropped == 1

    def test_flush_empties_buffer(self, small_keypairs):
        from repro.mixnn.crypto import encrypt

        node = MixNode(keypair=small_keypairs[0], batch_size=10, rng=rng_from_seed(0))
        node.receive(encrypt(node.public_key, b"x"))
        assert node.flush() == [b"x"]
        assert node.pending == 0


class TestMixCascade:
    def test_construction_validation(self, small_keypairs):
        with pytest.raises(ValueError):
            MixCascade(num_mixes=0)
        with pytest.raises(ValueError):
            MixCascade(num_mixes=2, keypairs=small_keypairs)

    def test_end_to_end_delivery(self, cascade):
        messages = [f"update-{i}".encode() for i in range(6)]
        wrapped = [cascade.wrap(m) for m in messages]
        delivered = cascade.send_batch(wrapped)
        assert sorted(delivered) == sorted(messages)
        assert cascade.dropped == 0

    def test_delivery_order_is_shuffled(self, small_keypairs):
        """Across seeds, output order must not track input order."""
        messages = [f"msg-{i}".encode() for i in range(8)]
        matches = []
        for seed in range(6):
            cascade = MixCascade(
                num_mixes=3, batch_size=4, rng=rng_from_seed(seed), keypairs=small_keypairs
            )
            delivered = cascade.send_batch([cascade.wrap(m) for m in messages])
            matches.append(delivered == messages)
        assert not all(matches)

    def test_garbage_dropped_not_crashing(self, cascade):
        delivered = cascade.send_batch([b"garbage", cascade.wrap(b"real")])
        assert delivered == [b"real"]
        assert cascade.dropped == 1

    def test_route_keys_exposed_for_senders(self, cascade):
        assert len(cascade.route_keys) == 3
