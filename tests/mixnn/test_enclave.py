"""SGX enclave simulator: attestation, sealing, memory, cost model."""

import numpy as np
import pytest

from repro.mixnn.crypto import encrypt
from repro.mixnn.enclave import (
    EPC_RESERVED_BYTES,
    EPC_USABLE_BYTES,
    EnclaveCostModel,
    EnclaveError,
    SGXEnclaveSim,
)


class TestAttestation:
    def test_quote_verifies_for_correct_identity(self, enclave):
        quote = enclave.quote(b"nonce-1")
        assert enclave.verify_quote(quote, "mixnn-proxy-v1")

    def test_quote_fails_for_wrong_identity(self, enclave):
        quote = enclave.quote(b"nonce-2")
        assert not enclave.verify_quote(quote, "evil-proxy")

    def test_forged_signature_rejected(self, enclave):
        quote = enclave.quote(b"nonce-3")
        forged = type(quote)(
            measurement=quote.measurement,
            public_key_fingerprint=quote.public_key_fingerprint,
            nonce=quote.nonce,
            signature=b"\x00" * 32,
        )
        assert not enclave.verify_quote(forged, "mixnn-proxy-v1")

    def test_quote_binds_public_key(self, enclave):
        quote = enclave.quote(b"nonce-4")
        assert quote.public_key_fingerprint == enclave.public_key.fingerprint()

    def test_attestation_charges_time(self, enclave):
        before = enclave.clock_seconds
        enclave.quote(b"n")
        assert enclave.clock_seconds > before


class TestSealing:
    def test_round_trip(self, enclave):
        blob = enclave.seal(b"model weights outside EPC")
        assert enclave.unseal(blob) == b"model weights outside EPC"

    def test_sealed_blob_is_not_plaintext(self, enclave):
        blob = enclave.seal(b"supersecret")
        assert b"supersecret" not in blob

    def test_tampered_blob_rejected(self, enclave):
        blob = bytearray(enclave.seal(b"data"))
        blob[-1] ^= 0x01
        with pytest.raises(EnclaveError):
            enclave.unseal(bytes(blob))

    def test_sealing_is_per_platform(self, keypair):
        a = SGXEnclaveSim(keypair=keypair)
        b = SGXEnclaveSim(keypair=keypair)
        with pytest.raises(EnclaveError):
            b.unseal(a.seal(b"bound to platform A"))


class TestMemoryAccounting:
    def test_epc_constants_match_paper(self):
        assert EPC_RESERVED_BYTES == 128 * 2**20
        assert EPC_USABLE_BYTES == 96 * 2**20

    def test_allocate_free_cycle(self, enclave):
        enclave.allocate(1000)
        assert enclave.memory.used_bytes == 1000
        enclave.free(400)
        assert enclave.memory.used_bytes == 600
        assert enclave.memory.peak_bytes == 1000

    def test_free_clamps_at_zero(self, enclave):
        enclave.allocate(10)
        enclave.free(100)
        assert enclave.memory.used_bytes == 0

    def test_overflow_triggers_paging(self, keypair):
        enclave = SGXEnclaveSim(keypair=keypair, epc_budget_bytes=1000)
        before = enclave.clock_seconds
        enclave.allocate(2000)
        assert enclave.memory.page_faults == 1
        assert enclave.memory.sealed_out_bytes == 1000
        assert enclave.clock_seconds > before

    def test_negative_sizes_rejected(self, enclave):
        with pytest.raises(ValueError):
            enclave.allocate(-1)
        with pytest.raises(ValueError):
            enclave.free(-1)

    def test_stats_snapshot(self, enclave):
        enclave.allocate(123)
        stats = enclave.stats()
        assert stats["used_bytes"] == 123
        assert set(stats) == {"clock_seconds", "used_bytes", "peak_bytes", "page_faults", "sealed_out_bytes"}


class TestCostModel:
    def test_paper_calibration_two_conv(self):
        model = EnclaveCostModel()
        nbytes = int(26.9 * 2**20)
        assert model.decrypt_cost(nbytes) == pytest.approx(0.17, abs=0.01)
        assert model.store_cost(nbytes) == pytest.approx(0.02, abs=0.005)

    def test_paper_calibration_three_conv(self):
        model = EnclaveCostModel()
        nbytes = int(51.3 * 2**20)
        total = model.decrypt_cost(nbytes) + model.store_cost(nbytes)
        assert total == pytest.approx(0.22, abs=0.01)

    def test_cost_grows_with_size(self):
        model = EnclaveCostModel()
        assert model.decrypt_cost(10 * 2**20) < model.decrypt_cost(100 * 2**20)

    def test_mixing_cost_constant_per_update(self):
        assert EnclaveCostModel().mix_seconds_per_update == pytest.approx(0.03)


class TestDecryptUpdate:
    def test_decrypts_and_charges(self, enclave):
        blob = encrypt(enclave.public_key, b"payload-bytes")
        before = enclave.clock_seconds
        assert enclave.decrypt_update(blob) == b"payload-bytes"
        assert enclave.clock_seconds > before
        assert enclave.memory.used_bytes == len(b"payload-bytes")

    def test_constant_time_pads_to_worst_case(self, keypair):
        enclave = SGXEnclaveSim(keypair=keypair, constant_time=True)
        big = encrypt(enclave.public_key, b"x" * 50_000)
        small = encrypt(enclave.public_key, b"y" * 10)
        enclave.decrypt_update(big)
        t_after_big = enclave.clock_seconds
        enclave.decrypt_update(small)
        cost_small = enclave.clock_seconds - t_after_big
        assert cost_small == pytest.approx(t_after_big, rel=0.05)

    def test_variable_time_mode_charges_actuals(self, keypair):
        enclave = SGXEnclaveSim(keypair=keypair, constant_time=False)
        big = encrypt(enclave.public_key, b"x" * 500_000)
        small = encrypt(enclave.public_key, b"y" * 10)
        enclave.decrypt_update(big)
        t_big = enclave.clock_seconds
        enclave.decrypt_update(small)
        assert enclave.clock_seconds - t_big < t_big

    def test_failed_decrypt_still_charges(self, enclave):
        from repro.mixnn.crypto import CryptoError

        blob = bytearray(encrypt(enclave.public_key, b"data"))
        blob[-1] ^= 1
        before = enclave.clock_seconds
        with pytest.raises(CryptoError):
            enclave.decrypt_update(bytes(blob))
        assert enclave.clock_seconds > before
