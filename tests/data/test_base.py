"""Dataset containers, loaders and splits."""

import numpy as np
import pytest

from repro.data.base import ArrayDataset, ClientDataset, DataLoader, train_test_split
from repro.utils.rng import rng_from_seed


@pytest.fixture()
def dataset():
    rng = rng_from_seed(0)
    return ArrayDataset(rng.standard_normal((30, 4)), rng.integers(0, 3, 30))


class TestArrayDataset:
    def test_coerces_dtypes(self, dataset):
        assert dataset.features.dtype == np.float32
        assert dataset.labels.dtype == np.int64

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features[1], dataset.features[2])

    def test_concat(self, dataset):
        merged = dataset.concat(dataset)
        assert len(merged) == 60

    def test_len(self, dataset):
        assert len(dataset) == 30


class TestClientDataset:
    def test_fields_and_repr(self, dataset):
        client = ClientDataset(client_id=3, train=dataset, test=dataset, attribute=1)
        assert client.num_train == 30
        assert "id=3" in repr(client)
        assert "attribute=1" in repr(client)

    def test_metadata_defaults_empty(self, dataset):
        client = ClientDataset(client_id=0, train=dataset, test=dataset, attribute=0)
        assert client.metadata == {}


class TestDataLoader:
    def test_batches_cover_everything(self, dataset):
        loader = DataLoader(dataset, batch_size=7, rng=rng_from_seed(1))
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 30

    def test_len_with_and_without_drop_last(self, dataset):
        assert len(DataLoader(dataset, 7, rng_from_seed(0))) == 5
        assert len(DataLoader(dataset, 7, rng_from_seed(0), drop_last=True)) == 4

    def test_drop_last_truncates(self, dataset):
        loader = DataLoader(dataset, batch_size=7, rng=rng_from_seed(1), drop_last=True)
        batches = list(loader)
        assert all(len(labels) == 7 for _, labels in batches)

    def test_shuffle_changes_order_not_content(self, dataset):
        loader = DataLoader(dataset, batch_size=30, rng=rng_from_seed(2))
        (_, labels_a), = list(loader)
        (_, labels_b), = list(loader)
        assert not np.array_equal(labels_a, labels_b) or len(set(labels_a.tolist())) == 1
        assert sorted(labels_a.tolist()) == sorted(dataset.labels.tolist())

    def test_no_shuffle_preserves_order(self, dataset):
        loader = DataLoader(dataset, batch_size=30, rng=rng_from_seed(2), shuffle=False)
        (_, labels), = list(loader)
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_rejects_bad_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, 0, rng_from_seed(0))

    def test_batch_larger_than_dataset(self, dataset):
        loader = DataLoader(dataset, batch_size=100, rng=rng_from_seed(0))
        batches = list(loader)
        assert len(batches) == 1
        assert len(batches[0][1]) == 30


class TestTrainTestSplit:
    def test_paper_fraction(self, dataset):
        train, test = train_test_split(dataset, 1 / 6, rng_from_seed(0))
        assert len(train) + len(test) == len(dataset)
        assert len(test) == pytest.approx(5, abs=2)

    def test_stratified_keeps_all_labels(self):
        labels = np.repeat([0, 1, 2], 12)
        data = ArrayDataset(np.zeros((36, 2)), labels)
        _, test = train_test_split(data, 0.25, rng_from_seed(0))
        assert set(test.labels.tolist()) == {0, 1, 2}

    def test_unstratified(self, dataset):
        train, test = train_test_split(dataset, 0.2, rng_from_seed(0), stratify=False)
        assert len(test) == 6
        assert len(train) == 24

    def test_rejects_bad_fraction(self, dataset):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(dataset, bad, rng_from_seed(0))
