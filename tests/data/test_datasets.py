"""The four dataset simulators: cohort structure, skew, attribute signals."""

import numpy as np
import pytest

from repro.data import (
    ACTIVITIES,
    PREFERENCE_GROUPS,
    DATASETS,
    SyntheticCIFAR10,
    SyntheticLFW,
    SyntheticMobiAct,
    SyntheticMotionSense,
    make_dataset,
)


class TestRegistry:
    def test_four_paper_datasets(self):
        assert set(DATASETS) == {"cifar10", "motionsense", "mobiact", "lfw"}

    def test_make_dataset(self):
        assert isinstance(make_dataset("cifar10", seed=1), SyntheticCIFAR10)

    def test_make_dataset_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("mnist")


class TestCIFAR10Structure:
    def test_paper_cohort(self, tiny_cifar10):
        assert tiny_cifar10.num_clients == 20
        counts = np.bincount(tiny_cifar10.attributes())
        np.testing.assert_array_equal(counts, [6, 6, 8])

    def test_preference_groups_disjoint_and_cover(self):
        flat = [c for group in PREFERENCE_GROUPS for c in group]
        assert sorted(flat) == list(range(10))

    def test_preference_skew(self, tiny_cifar10):
        for client in tiny_cifar10.clients():
            preferred = set(client.metadata["preferred_classes"])
            share = np.isin(client.train.labels, list(preferred)).mean()
            assert share > 0.6  # 80 % nominal, sampled

    def test_input_shape(self, tiny_cifar10):
        client = tiny_cifar10.clients()[0]
        assert client.train.features.shape[1:] == tiny_cifar10.input_shape

    def test_random_guess_is_max_group_share(self, tiny_cifar10):
        assert tiny_cifar10.random_guess_accuracy == pytest.approx(8 / 20)

    def test_global_test_balanced(self, tiny_cifar10):
        labels = tiny_cifar10.global_test().labels
        counts = np.bincount(labels, minlength=10)
        assert counts.min() == counts.max()


class TestMotionStructure:
    def test_motionsense_cohort(self, tiny_motionsense):
        assert tiny_motionsense.num_clients == 24
        counts = np.bincount(tiny_motionsense.attributes())
        np.testing.assert_array_equal(counts, [12, 12])

    def test_mobiact_cohort(self, tiny_mobiact):
        assert tiny_mobiact.num_clients == 58
        counts = np.bincount(tiny_mobiact.attributes())
        np.testing.assert_array_equal(counts, [38, 20])

    def test_six_activities(self, tiny_motionsense):
        assert len(ACTIVITIES) == 6
        labels = tiny_motionsense.clients()[0].train.labels
        assert set(labels.tolist()) == set(range(6))

    def test_window_shape(self, tiny_motionsense):
        assert tiny_motionsense.input_shape == (1, 6, 16)

    def test_gender_shifts_amplitude(self):
        """Male windows carry more energy than female ones per activity."""
        dataset = SyntheticMotionSense(seed=0, windows_per_activity=6)
        energies = {0: [], 1: []}
        for client in dataset.clients():
            active = client.train.features[client.train.labels == 3]  # jogging
            energies[client.attribute].append(float(np.std(active)))
        assert np.mean(energies[0]) > np.mean(energies[1])

    def test_activities_are_separable(self, tiny_motionsense):
        """Sitting windows carry much less temporal variation than jogging."""

        def temporal_std(windows):
            centered = windows - windows.mean(axis=-1, keepdims=True)
            return float(np.std(centered))

        client = tiny_motionsense.clients()[0]
        jog = client.train.features[client.train.labels == 3]
        sit = client.train.features[client.train.labels == 4]
        assert temporal_std(jog) > 1.5 * temporal_std(sit)


class TestLFWStructure:
    def test_cohort(self, tiny_lfw):
        assert tiny_lfw.num_clients == 20
        counts = np.bincount(tiny_lfw.attributes())
        np.testing.assert_array_equal(counts, [10, 10])

    def test_smile_task_binary(self, tiny_lfw):
        labels = np.concatenate([c.train.labels for c in tiny_lfw.clients()])
        assert set(labels.tolist()) <= {0, 1}

    def test_participant_images_share_gender_statistics(self, tiny_lfw):
        """Within a participant, images are consistent; across genders they differ."""
        by_gender = {0: [], 1: []}
        for client in tiny_lfw.clients():
            by_gender[client.attribute].append(float(client.train.features.mean()))
        assert abs(np.mean(by_gender[0]) - np.mean(by_gender[1])) > 0.02

    def test_smile_changes_mouth_region_only_slightly(self, tiny_lfw):
        client = tiny_lfw.clients()[0]
        smiles = client.train.features[client.train.labels == 1]
        neutral = client.train.features[client.train.labels == 0]
        if len(smiles) and len(neutral):
            diff = np.abs(smiles.mean(axis=0) - neutral.mean(axis=0))
            assert diff.max() > 0.05  # the mouth feature exists


class TestFederatedInterface:
    @pytest.fixture(params=["tiny_cifar10", "tiny_motionsense", "tiny_mobiact", "tiny_lfw"])
    def dataset(self, request):
        return request.getfixturevalue(request.param)

    def test_background_disjoint_from_participants(self, dataset):
        participant_ids = {c.client_id for c in dataset.clients()}
        background_ids = {c.client_id for c in dataset.background_clients()}
        assert participant_ids.isdisjoint(background_ids)

    def test_background_covers_all_attribute_classes(self, dataset):
        attrs = {c.attribute for c in dataset.background_clients()}
        assert attrs == set(range(dataset.num_attribute_classes))

    def test_caching(self, dataset):
        assert dataset.clients() is dataset.clients()
        assert dataset.global_test() is dataset.global_test()

    def test_deterministic_per_seed(self, dataset):
        rebuilt = type(dataset)(seed=dataset.seed, **_shrink_kwargs(dataset))
        a = dataset.clients()[0].train.features
        b = rebuilt.clients()[0].train.features
        np.testing.assert_array_equal(a, b)

    def test_repr(self, dataset):
        assert dataset.attribute_name in repr(dataset)


def _shrink_kwargs(dataset) -> dict:
    """Re-construct the tiny-fixture kwargs for determinism checks."""
    if isinstance(dataset, SyntheticCIFAR10):
        return dict(samples_per_client=24, test_samples_per_client=6, background_clients_per_group=2)
    if isinstance(dataset, (SyntheticMotionSense, SyntheticMobiAct)):
        per = 4 if isinstance(dataset, SyntheticMotionSense) else 3
        return dict(windows_per_activity=per, test_windows_per_activity=1, background_subjects_per_gender=2)
    if isinstance(dataset, SyntheticLFW):
        return dict(samples_per_client=16, test_samples_per_client=4, background_subjects_per_gender=2)
    raise TypeError(type(dataset))
