"""Background-knowledge subsets, k-fold splits, pooling."""

import numpy as np
import pytest

from repro.data.base import ArrayDataset, ClientDataset
from repro.data.partition import (
    background_subset,
    clients_by_attribute,
    k_fold_clients,
    merge_clients,
)
from repro.utils.rng import rng_from_seed


def make_clients(count: int, attribute_classes: int = 2) -> list[ClientDataset]:
    rng = rng_from_seed(0)
    out = []
    for i in range(count):
        data = ArrayDataset(rng.standard_normal((6, 3)), rng.integers(0, 2, 6))
        out.append(ClientDataset(client_id=i, train=data, test=data, attribute=i % attribute_classes))
    return out


class TestBackgroundSubset:
    def test_full_ratio_keeps_everyone(self):
        clients = make_clients(10)
        assert len(background_subset(clients, 1.0, rng_from_seed(0))) == 10

    def test_half_ratio(self):
        clients = make_clients(10)
        subset = background_subset(clients, 0.5, rng_from_seed(0))
        # 5 users per class; round(2.5) banker's-rounds to 2 per class.
        assert len(subset) == 4
        assert {c.attribute for c in subset} == {0, 1}

    def test_every_class_retained_at_tiny_ratio(self):
        clients = make_clients(10, attribute_classes=3)
        subset = background_subset(clients, 0.05, rng_from_seed(0))
        assert {c.attribute for c in subset} == {0, 1, 2}

    def test_output_sorted_by_id(self):
        clients = make_clients(8)
        subset = background_subset(clients, 0.6, rng_from_seed(1))
        ids = [c.client_id for c in subset]
        assert ids == sorted(ids)

    def test_rejects_bad_ratio(self):
        clients = make_clients(4)
        for bad in (0.0, 1.5, -1.0):
            with pytest.raises(ValueError):
                background_subset(clients, bad, rng_from_seed(0))


class TestKFold:
    def test_paper_five_fold(self):
        clients = make_clients(20)
        folds = k_fold_clients(clients, 5, rng_from_seed(0))
        assert len(folds) == 5
        for train, test in folds:
            assert len(train) == 16 and len(test) == 4

    def test_folds_partition_the_cohort(self):
        clients = make_clients(10)
        folds = k_fold_clients(clients, 5, rng_from_seed(0))
        held = [c.client_id for _, test in folds for c in test]
        assert sorted(held) == list(range(10))

    def test_train_test_disjoint(self):
        clients = make_clients(9)
        for train, test in k_fold_clients(clients, 3, rng_from_seed(0)):
            assert {c.client_id for c in train}.isdisjoint({c.client_id for c in test})

    def test_validation(self):
        clients = make_clients(4)
        with pytest.raises(ValueError):
            k_fold_clients(clients, 1, rng_from_seed(0))
        with pytest.raises(ValueError):
            k_fold_clients(clients, 5, rng_from_seed(0))


class TestMergeAndGroup:
    def test_merge_pools_training_data(self):
        clients = make_clients(3)
        merged = merge_clients(clients)
        assert len(merged) == 18

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_clients([])

    def test_group_by_attribute(self):
        clients = make_clients(7, attribute_classes=3)
        grouped = clients_by_attribute(clients)
        assert sorted(grouped) == [0, 1, 2]
        assert sum(len(v) for v in grouped.values()) == 7
        for attribute, members in grouped.items():
            assert all(c.attribute == attribute for c in members)
